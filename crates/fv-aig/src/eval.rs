//! Direct AIG evaluation, used as the testing oracle for the bit-vector
//! layer and for replaying counterexample traces.

use crate::aig::{Aig, AigLit, Node, NodeId};

/// Evaluates an AIG under a concrete input/state assignment.
///
/// # Examples
///
/// ```
/// use fv_aig::{Aig, AigEvaluator};
/// let mut g = Aig::new();
/// let a = g.input();
/// let b = g.input();
/// let y = g.and(a, b);
/// let ev = AigEvaluator::combinational(&g, &[true, false]);
/// assert!(!ev.lit(y));
/// ```
#[derive(Debug)]
pub struct AigEvaluator {
    values: Vec<bool>,
}

impl AigEvaluator {
    /// Evaluates with the given input values and all latches at their
    /// initial values.
    pub fn combinational(g: &Aig, inputs: &[bool]) -> AigEvaluator {
        let latch_vals: Vec<bool> = g.latches().iter().map(|l| l.init).collect();
        AigEvaluator::with_state(g, inputs, &latch_vals)
    }

    /// Evaluates with explicit input and latch values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `latches` are shorter than the AIG requires.
    pub fn with_state(g: &Aig, inputs: &[bool], latches: &[bool]) -> AigEvaluator {
        let mut values = vec![false; g.num_nodes()];
        for (i, node) in g.nodes.iter().enumerate() {
            values[i] = match *node {
                Node::False => false,
                Node::Input(k) => inputs[k as usize],
                Node::Latch(k) => latches[k as usize],
                Node::And(a, b) => {
                    let va = values[a.node().0 as usize] ^ a.is_inverted();
                    let vb = values[b.node().0 as usize] ^ b.is_inverted();
                    va && vb
                }
            };
        }
        AigEvaluator { values }
    }

    /// Value of a node.
    pub fn node(&self, id: NodeId) -> bool {
        self.values[id.0 as usize]
    }

    /// Value of a literal.
    pub fn lit(&self, l: AigLit) -> bool {
        self.values[l.node().0 as usize] ^ l.is_inverted()
    }

    /// Computes the next latch state vector from this evaluation.
    pub fn next_state(&self, g: &Aig) -> Vec<bool> {
        g.latches().iter().map(|l| self.lit(l.next)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVec;

    #[test]
    fn sequential_counter_steps() {
        // 2-bit counter built from latches.
        let mut g = Aig::new();
        let (l0, q0) = g.add_latch(false);
        let (l1, q1) = g.add_latch(false);
        let n0 = !q0;
        let n1 = g.xor(q1, q0);
        g.set_latch_next(l0, n0);
        g.set_latch_next(l1, n1);

        let mut state = vec![false, false];
        let mut seen = Vec::new();
        for _ in 0..5 {
            let ev = AigEvaluator::with_state(&g, &[], &state);
            seen.push((ev.lit(q0), ev.lit(q1)));
            state = ev.next_state(&g);
        }
        assert_eq!(
            seen,
            vec![
                (false, false),
                (true, false),
                (false, true),
                (true, true),
                (false, false)
            ]
        );
    }

    #[test]
    fn constants_evaluate() {
        let g = Aig::new();
        let ev = AigEvaluator::combinational(&g, &[]);
        assert!(!ev.lit(AigLit::FALSE));
        assert!(ev.lit(AigLit::TRUE));
    }

    #[test]
    fn bitvec_constant_reads_back() {
        let mut g = Aig::new();
        let c = BitVec::constant(8, 0xA5);
        let _ = g.input();
        let ev = AigEvaluator::combinational(&g, &[false]);
        let got: u32 = c
            .bits()
            .iter()
            .enumerate()
            .map(|(i, &b)| (ev.lit(b) as u32) << i)
            .sum();
        assert_eq!(got, 0xA5);
    }
}
