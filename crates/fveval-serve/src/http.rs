//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! Just enough of the protocol for the service: one request per
//! connection (`Connection: close`), `Content-Length` bodies, no
//! chunked encoding, bounded header and body sizes. Both the server
//! and the [`crate::Client`] use these helpers, so the two ends can
//! never disagree about framing.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Largest accepted header block.
const MAX_HEAD: usize = 16 * 1024;
/// Largest accepted body.
const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed request: method, path, query string, and raw body.
#[derive(Debug)]
pub struct Request {
    /// `GET` / `POST` / ….
    pub method: String,
    /// The request target without its query, e.g. `/v1/jobs/3`.
    pub path: String,
    /// The query string after `?` (without the `?`), empty when none —
    /// e.g. `wait_ms=500` for `/v1/jobs/3?wait_ms=500`.
    pub query: String,
    /// The raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Looks up one query parameter (`k=v` pairs joined by `&`).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == name).then_some(v)
        })
    }
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads the head (start line + headers) up to the blank line, then
/// any `Content-Length` body. Returns the start line, the lowercased
/// headers, and the body.
fn read_message(stream: &mut TcpStream) -> std::io::Result<(String, Vec<String>, Vec<u8>)> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(invalid("header block too large"));
        }
        match stream.read(&mut byte)? {
            0 if head.is_empty() => {
                // A connection that closes without sending anything is
                // a liveness probe or acceptor wake-up, not an error —
                // give it a distinct kind so callers can stay quiet.
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before any request",
                ));
            }
            0 => return Err(invalid("connection closed mid-header")),
            _ => head.push(byte[0]),
        }
    }
    let text = String::from_utf8(head).map_err(|_| invalid("non-UTF-8 header"))?;
    let mut lines = text.split("\r\n");
    let start = lines.next().unwrap_or_default().to_string();
    let headers: Vec<String> = lines
        .filter(|l| !l.is_empty())
        .map(|l| l.to_ascii_lowercase())
        .collect();
    let length = headers
        .iter()
        .find_map(|h| h.strip_prefix("content-length:"))
        .map(|v| v.trim().parse::<usize>())
        .transpose()
        .map_err(|_| invalid("bad content-length"))?
        .unwrap_or(0);
    if length > MAX_BODY {
        return Err(invalid("body too large"));
    }
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    Ok((start, headers, body))
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// Returns `InvalidData` on malformed framing and propagates transport
/// errors (including read timeouts).
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let (start, _headers, body) = read_message(stream)?;
    parse_request_line(&start, body)
}

fn parse_request_line(start: &str, body: Vec<u8>) -> std::io::Result<Request> {
    let mut parts = start.split_whitespace();
    let method = parts.next().ok_or_else(|| invalid("empty request line"))?;
    let target = parts
        .next()
        .ok_or_else(|| invalid("missing request path"))?;
    let version = parts.next().unwrap_or_default();
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        body,
    })
}

/// Attempts to parse one complete request from the front of `buf` —
/// the non-blocking half of [`read_request`], for an event loop that
/// accumulates bytes as they arrive. Returns `None` while the request
/// is still incomplete, or `Some((request, consumed))` where
/// `consumed` is how many bytes of `buf` the request occupied.
///
/// # Errors
///
/// Returns `InvalidData` on malformed framing or a head/body beyond
/// the size bounds — the connection should be answered `400` and
/// closed.
pub fn try_parse_request(buf: &[u8]) -> std::io::Result<Option<(Request, usize)>> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        if buf.len() >= MAX_HEAD {
            return Err(invalid("header block too large"));
        }
        return Ok(None);
    };
    if head_end + 4 > MAX_HEAD {
        return Err(invalid("header block too large"));
    }
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| invalid("non-UTF-8 header"))?;
    let mut lines = head.split("\r\n");
    let start = lines.next().unwrap_or_default().to_string();
    let length = lines
        .filter_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length").then_some(value)
        })
        .last()
        .map(|v| v.trim().parse::<usize>())
        .transpose()
        .map_err(|_| invalid("bad content-length"))?
        .unwrap_or(0);
    if length > MAX_BODY {
        return Err(invalid("body too large"));
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + length {
        return Ok(None);
    }
    let body = buf[body_start..body_start + length].to_vec();
    Ok(Some((
        parse_request_line(&start, body)?,
        body_start + length,
    )))
}

/// Renders one `application/json` response as wire bytes, with
/// optional extra headers (e.g. `("Retry-After", "1")` on a `429`) —
/// the event loop's counterpart to [`write_response`].
pub fn response_bytes(
    status: u16,
    reason: &str,
    body: &str,
    extra_headers: &[(&str, String)],
) -> Vec<u8> {
    response_bytes_typed(status, reason, "application/json", body, extra_headers)
}

/// [`response_bytes`] with an explicit `Content-Type` — for the few
/// non-JSON surfaces (the Prometheus `/metrics` text exposition).
pub fn response_bytes_typed(
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    extra_headers: &[(&str, String)],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Writes one `application/json` response and flushes the stream.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Writes one request (the client side of [`read_request`]).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\n\
         Host: fveval-serve\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads one response; returns `(status, body)`.
///
/// # Errors
///
/// Returns `InvalidData` on malformed framing and propagates transport
/// errors.
pub fn read_response(stream: &mut TcpStream) -> std::io::Result<(u16, String)> {
    let (start, _headers, body) = read_message(stream)?;
    let status = start
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid("bad status line"))?;
    let body = String::from_utf8(body).map_err(|_| invalid("non-UTF-8 body"))?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_parse_waits_for_the_full_request() {
        let wire = b"POST /v1/eval HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        // Every strict prefix is incomplete, never an error.
        for cut in 0..wire.len() {
            assert!(try_parse_request(&wire[..cut]).unwrap().is_none(), "{cut}");
        }
        let (request, consumed) = try_parse_request(wire).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/eval");
        assert_eq!(request.body, b"hello");
        // Trailing bytes beyond the request are not consumed.
        let mut padded = wire.to_vec();
        padded.extend_from_slice(b"EXTRA");
        let (_, consumed) = try_parse_request(&padded).unwrap().unwrap();
        assert_eq!(consumed, wire.len());
    }

    #[test]
    fn query_strings_split_off_the_path() {
        let wire = b"GET /v1/jobs/3?wait_ms=500&x=1 HTTP/1.1\r\n\r\n";
        let (request, _) = try_parse_request(wire).unwrap().unwrap();
        assert_eq!(request.path, "/v1/jobs/3");
        assert_eq!(request.query, "wait_ms=500&x=1");
        assert_eq!(request.query_param("wait_ms"), Some("500"));
        assert_eq!(request.query_param("x"), Some("1"));
        assert_eq!(request.query_param("absent"), None);
        let bare = try_parse_request(b"GET /v1/stats HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap()
            .0;
        assert_eq!(bare.path, "/v1/stats");
        assert_eq!(bare.query, "");
    }

    #[test]
    fn oversized_and_malformed_heads_are_errors() {
        let oversized = vec![b'A'; MAX_HEAD + 1];
        assert!(try_parse_request(&oversized).is_err());
        let bad_version = b"GET / SPDY/9\r\n\r\n";
        assert!(try_parse_request(bad_version).is_err());
        let bad_length = b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert!(try_parse_request(bad_length).is_err());
    }

    #[test]
    fn response_bytes_carry_extra_headers() {
        let bytes = response_bytes(
            429,
            "Too Many Requests",
            "{}",
            &[("Retry-After", "1".to_string())],
        );
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
