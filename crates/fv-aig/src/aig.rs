//! The and-inverter graph core.

use std::collections::HashMap;

/// Index of a node in an [`Aig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a latch in an [`Aig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatchId(pub(crate) u32);

impl LatchId {
    /// Dense index of the latch.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A (possibly inverted) reference to an AIG node.
///
/// Encoded as `node << 1 | inverted`, following the AIGER convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false.
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    #[inline]
    pub(crate) fn new(node: NodeId, inverted: bool) -> AigLit {
        AigLit((node.0 << 1) | inverted as u32)
    }

    /// The node this literal points at.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// `true` if the edge is inverted.
    #[inline]
    pub fn is_inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// `true` if this is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Builds a constant literal from a boolean.
    #[inline]
    pub fn constant(b: bool) -> AigLit {
        if b {
            AigLit::TRUE
        } else {
            AigLit::FALSE
        }
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;
    #[inline]
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Node {
    /// Constant false (node 0 only).
    False,
    /// Primary input, by dense input index.
    Input(u32),
    /// Latch output, by dense latch index.
    Latch(u32),
    /// And gate over two literals.
    And(AigLit, AigLit),
}

/// A state element of the sequential AIG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latch {
    /// The node that reads the latch's current value.
    pub output: NodeId,
    /// Next-state function; defaults to constant false until set.
    pub next: AigLit,
    /// Initial (reset) value.
    pub init: bool,
}

/// A sequential and-inverter graph with structural hashing.
///
/// Node 0 is the constant-false node. Combinational logic is built with
/// [`Aig::and`] and friends (two-level constant folding plus structural
/// hashing keep the graph reduced); state is added with [`Aig::add_latch`]
/// and closed with [`Aig::set_latch_next`].
#[derive(Debug, Clone, Default)]
pub struct Aig {
    pub(crate) nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    latches: Vec<Latch>,
    strash: HashMap<(AigLit, AigLit), NodeId>,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![Node::False],
            inputs: Vec::new(),
            latches: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Number of nodes, including the constant.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Number of and gates.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(..)))
            .count()
    }

    /// The latch table.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// The primary-input nodes, in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Dense input index of a node, if it is a primary input.
    pub fn input_index(&self, id: NodeId) -> Option<u32> {
        match self.node(id) {
            Node::Input(k) => Some(k),
            _ => None,
        }
    }

    /// Creates a fresh primary input and returns its literal.
    pub fn input(&mut self) -> AigLit {
        let idx = self.inputs.len() as u32;
        let id = self.push(Node::Input(idx));
        self.inputs.push(id);
        AigLit::new(id, false)
    }

    /// Creates a latch with the given initial value; its `next` function
    /// must be provided later via [`Aig::set_latch_next`].
    pub fn add_latch(&mut self, init: bool) -> (LatchId, AigLit) {
        let idx = self.latches.len() as u32;
        let id = self.push(Node::Latch(idx));
        self.latches.push(Latch {
            output: id,
            next: AigLit::FALSE,
            init,
        });
        (LatchId(idx), AigLit::new(id, false))
    }

    /// Sets the next-state function of a latch.
    pub fn set_latch_next(&mut self, latch: LatchId, next: AigLit) {
        self.latches[latch.index()].next = next;
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// And of two literals, with constant folding and structural hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant folding and trivial cases.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        // Canonical operand order for hashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            return AigLit::new(id, false);
        }
        let id = self.push(Node::And(a, b));
        self.strash.insert((a, b), id);
        AigLit::new(id, false)
    }

    /// Or of two literals.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// Exclusive or of two literals.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// Logical equivalence (XNOR).
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// Implication `a -> b`.
    pub fn implies(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.or(!a, b)
    }

    /// Multiplexer: `if sel { t } else { e }`.
    pub fn mux(&mut self, sel: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let on_t = self.and(sel, t);
        let on_e = self.and(!sel, e);
        self.or(on_t, on_e)
    }

    /// Conjunction over an iterator of literals.
    pub fn and_all<I: IntoIterator<Item = AigLit>>(&mut self, lits: I) -> AigLit {
        lits.into_iter()
            .fold(AigLit::TRUE, |acc, l| self.and(acc, l))
    }

    /// Disjunction over an iterator of literals.
    pub fn or_all<I: IntoIterator<Item = AigLit>>(&mut self, lits: I) -> AigLit {
        lits.into_iter()
            .fold(AigLit::FALSE, |acc, l| self.or(acc, l))
    }

    pub(crate) fn node(&self, id: NodeId) -> Node {
        self.nodes[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.input();
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(AigLit::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.or(a, !a), AigLit::TRUE);
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let n1 = g.and(a, b);
        let n2 = g.and(b, a);
        assert_eq!(n1, n2, "commuted operands share a node");
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn xor_of_self_is_false() {
        let mut g = Aig::new();
        let a = g.input();
        assert_eq!(g.xor(a, a), AigLit::FALSE);
        assert_eq!(g.xnor(a, a), AigLit::TRUE);
    }

    #[test]
    fn latch_round_trip() {
        let mut g = Aig::new();
        let (l, q) = g.add_latch(true);
        let next = !q;
        g.set_latch_next(l, next);
        assert_eq!(g.num_latches(), 1);
        assert!(g.latches()[0].init);
        assert_eq!(g.latches()[0].next, next);
    }

    #[test]
    fn and_all_or_all() {
        let mut g = Aig::new();
        let xs: Vec<AigLit> = (0..4).map(|_| g.input()).collect();
        let all = g.and_all(xs.iter().copied());
        let any = g.or_all(xs.iter().copied());
        assert_ne!(all, AigLit::FALSE);
        assert_ne!(any, AigLit::TRUE);
        assert_eq!(g.and_all(std::iter::empty()), AigLit::TRUE);
        assert_eq!(g.or_all(std::iter::empty()), AigLit::FALSE);
    }

    #[test]
    fn mux_folds_on_constant_select() {
        let mut g = Aig::new();
        let t = g.input();
        let e = g.input();
        assert_eq!(g.mux(AigLit::TRUE, t, e), t);
        assert_eq!(g.mux(AigLit::FALSE, t, e), e);
    }
}
