//! Abstract syntax trees for the SystemVerilog subset and the
//! SystemVerilog Assertion (SVA) property layer used across FVEval.
//!
//! The tree is shared by the parser (`sv-parser`), the elaborator
//! (`sv-synth`), the property compiler (`fv-core`), the dataset
//! generators (`fveval-data`), and the simulated-model transforms
//! (`fveval-llm`). A pretty-printer renders trees back to concrete
//! syntax; `print → parse → print` is a fixpoint (tested by property
//! tests in `sv-parser`).

mod expr;
mod intern;
mod module;
mod printer;
mod property;

pub use expr::{BinaryOp, Expr, Literal, SysFunc, UnaryOp};
pub use intern::{fnv1a, Interner, Symbol, SymbolHasher, SymbolMap, FNV1A_SEED};
pub use module::{
    Assign, EdgeKind, EventExpr, Instance, LValue, Module, ModuleItem, NetDecl, NetKind, ParamDecl,
    PortDecl, PortDir, Range, SourceFile, Stmt,
};
pub use printer::{print_assertion, print_expr, print_module, print_property, print_seq};
pub use property::{Assertion, ClockSpec, DelayBound, PropExpr, SeqExpr};
