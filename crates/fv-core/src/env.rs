//! Trace environments: where assertion signals get their per-cycle
//! values from.

use crate::error::EncodeError;
use crate::table::SignalTable;
use fv_aig::{Aig, BitVec};
use std::collections::HashMap;
use sv_synth::{AtomKind, FrameExpander, FrameValues};

/// Supplies per-cycle signal values to the monitor encoder.
pub trait TraceEnv {
    /// Reads signal `name` at `cycle` (negative cycles are the sampled
    /// pre-history used by `$past`/`$rose`).
    ///
    /// # Errors
    ///
    /// [`EncodeError::UnknownSignal`] when the name is not in scope.
    fn read(&mut self, g: &mut Aig, name: &str, cycle: i32) -> Result<BitVec, EncodeError>;

    /// Constant binding (testbench parameters), if `name` is one.
    fn constant(&self, name: &str) -> Option<(u32, u128)> {
        let _ = name;
        None
    }
}

/// Free-trace environment: every `(signal, cycle)` pair is a fresh
/// vector of AIG inputs. This is the assertion-equivalence setting —
/// testbench signals are unconstrained.
///
/// When shared across an [`crate::EquivSession`]'s candidates, the
/// environment additionally tracks which slots the *current* check
/// read ([`FreeTraceEnv::reset_touched`]), so counterexample traces
/// report only the signals that check depends on — matching what a
/// fresh single-check environment would contain.
#[derive(Debug)]
pub struct FreeTraceEnv<'a> {
    table: &'a SignalTable,
    /// `(signal, cycle)` to `(bits, index into the log)`.
    slots: HashMap<(String, i32), (BitVec, usize)>,
    /// Allocation log for counterexample decoding.
    log: Vec<(String, i32, BitVec)>,
    /// Per-log-entry flag: read since the last
    /// [`FreeTraceEnv::reset_touched`].
    touched: Vec<bool>,
}

impl<'a> FreeTraceEnv<'a> {
    /// Creates an environment over the given signal table.
    pub fn new(table: &'a SignalTable) -> FreeTraceEnv<'a> {
        FreeTraceEnv {
            table,
            slots: HashMap::new(),
            log: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// The allocation log: `(signal, cycle, bits)` in creation order.
    pub fn log(&self) -> &[(String, i32, BitVec)] {
        &self.log
    }

    /// Clears the per-check touched marks; subsequent reads mark their
    /// slots again. A session calls this before each candidate.
    pub fn reset_touched(&mut self) {
        self.touched.iter_mut().for_each(|t| *t = false);
    }

    /// The log entries read since the last
    /// [`FreeTraceEnv::reset_touched`] — the slots the current check's
    /// monitors actually depend on.
    pub fn touched_log(&self) -> impl Iterator<Item = &(String, i32, BitVec)> {
        self.log
            .iter()
            .zip(&self.touched)
            .filter_map(|(entry, &touched)| touched.then_some(entry))
    }

    /// Log indices currently marked touched. A session snapshots these
    /// after compiling a reference so a later cache hit can restore
    /// them via [`FreeTraceEnv::mark_touched`].
    pub fn touched_indices(&self) -> Vec<usize> {
        self.touched
            .iter()
            .enumerate()
            .filter_map(|(i, &t)| t.then_some(i))
            .collect()
    }

    /// Re-marks previously snapshotted slots as touched (a cached
    /// encoding performs no reads, but its trace slots are still part
    /// of any counterexample built on it).
    pub fn mark_touched(&mut self, indices: &[usize]) {
        for &i in indices {
            self.touched[i] = true;
        }
    }
}

impl TraceEnv for FreeTraceEnv<'_> {
    fn read(&mut self, g: &mut Aig, name: &str, cycle: i32) -> Result<BitVec, EncodeError> {
        if let Some((bv, idx)) = self.slots.get(&(name.to_string(), cycle)) {
            self.touched[*idx] = true;
            return Ok(bv.clone());
        }
        let width = self
            .table
            .width(name)
            .ok_or_else(|| EncodeError::UnknownSignal(name.to_string()))?;
        let bv = BitVec::input(g, width as usize);
        self.slots
            .insert((name.to_string(), cycle), (bv.clone(), self.log.len()));
        self.log.push((name.to_string(), cycle, bv.clone()));
        self.touched.push(true);
        Ok(bv)
    }

    fn constant(&self, name: &str) -> Option<(u32, u128)> {
        self.table.constant(name)
    }
}

/// Design-trace environment: signals resolve against unrolled time
/// frames of an elaborated netlist. Used by the Design2SVA prover; a
/// [`crate::ProofSession`] keeps one alive per design so the frames
/// amortize across every candidate assertion.
pub struct DesignTraceEnv<'a> {
    expander: FrameExpander<'a>,
    frames: Vec<FrameValues>,
    /// Extra constant bindings (testbench parameters such as `S0`).
    consts: HashMap<String, (u32, u128)>,
    /// Forced input values by atom name (e.g. `reset_` pinned to 1).
    forced: HashMap<String, u128>,
    /// Free initial state (k-induction) instead of reset constants.
    free_initial: bool,
    /// Input allocation log per frame, for counterexample decoding.
    input_log: Vec<(String, u32, BitVec)>,
    /// Frames read since the last
    /// [`DesignTraceEnv::reset_touched_frames`] (count, i.e. highest
    /// frame index read + 1). Lets a session report how much of the
    /// shared unrolling each candidate actually revisited, and trim its
    /// counterexamples to the frames that candidate uses.
    touched_frames: u32,
    /// Frame-0 register bits allocated in free-initial mode, paired
    /// with the reset value each bit would have: `(bit, init)`. BMC on
    /// a shared free-state unrolling pins these through a solver
    /// selector group instead of baking constants into the AIG.
    initial_bits: Vec<(fv_aig::AigLit, bool)>,
    /// Whether any read referenced a negative (pre-anchor) cycle.
    negative_read: bool,
}

impl<'a> DesignTraceEnv<'a> {
    /// Creates an environment over `expander`'s netlist, taking
    /// ownership of the expander (its topological order is computed
    /// once per design and reused for every frame).
    pub fn new(expander: FrameExpander<'a>) -> DesignTraceEnv<'a> {
        // Standard formal setup: reset deasserted throughout.
        let reset = expander.netlist().reset_name.clone();
        let mut env = DesignTraceEnv {
            expander,
            frames: Vec::new(),
            consts: HashMap::new(),
            forced: HashMap::new(),
            free_initial: false,
            input_log: Vec::new(),
            touched_frames: 0,
            initial_bits: Vec::new(),
            negative_read: false,
        };
        if let Some(rst) = reset {
            env.forced.insert(rst, u128::MAX);
        }
        env
    }

    /// Starts from a fully unconstrained state (k-induction step case).
    pub fn with_free_initial_state(mut self) -> Self {
        self.free_initial = true;
        self
    }

    /// Adds a constant binding visible to assertions.
    pub fn bind_const(&mut self, name: impl Into<String>, width: u32, value: u128) {
        self.consts.insert(name.into(), (width, value));
    }

    /// Ensures frames `0..=cycle` exist.
    pub fn ensure_frames(&mut self, g: &mut Aig, cycle: u32) {
        while self.frames.len() <= cycle as usize {
            let state = if let Some(prev) = self.frames.last() {
                prev.reg_next.clone()
            } else if self.free_initial {
                self.expander
                    .netlist()
                    .regs()
                    .map(|(id, def)| {
                        let bv = BitVec::input(g, def.width as usize);
                        if let AtomKind::Reg { init, .. } = def.kind {
                            for (i, &bit) in bv.bits().iter().enumerate() {
                                self.initial_bits.push((bit, (init >> i) & 1 == 1));
                            }
                        }
                        (id, bv)
                    })
                    .collect()
            } else {
                self.expander.initial_state()
            };
            let frame_idx = self.frames.len() as u32;
            let forced = self.forced.clone();
            let mut log = Vec::new();
            let frame = self.expander.expand(g, &state, &mut |g, id, w| {
                let name = self.expander.netlist().atom(id).name.clone();
                if let Some(&v) = forced.get(&name) {
                    BitVec::constant(w as usize, v)
                } else {
                    let bv = BitVec::input(g, w as usize);
                    log.push((name, frame_idx, bv.clone()));
                    bv
                }
            });
            self.input_log.extend(log);
            self.frames.push(frame);
        }
    }

    /// Number of frames expanded so far.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// The input allocation log: `(signal, frame, bits)`.
    pub fn input_log(&self) -> &[(String, u32, BitVec)] {
        &self.input_log
    }

    /// Clears the per-check frame high-water mark; subsequent reads
    /// raise it again. A session calls this before each candidate.
    pub fn reset_touched_frames(&mut self) {
        self.touched_frames = 0;
    }

    /// Frames read since the last
    /// [`DesignTraceEnv::reset_touched_frames`] (highest frame index
    /// read + 1; `0` if none).
    pub fn touched_frames(&self) -> u32 {
        self.touched_frames
    }

    /// Frame-0 register bits allocated in free-initial mode, paired
    /// with each bit's reset value. Empty until frame 0 exists (and in
    /// reset-constant mode, always).
    pub fn initial_state_bits(&self) -> &[(fv_aig::AigLit, bool)] {
        &self.initial_bits
    }

    /// Whether any read so far referenced a negative (pre-anchor)
    /// cycle. Such reads clamp to frame 0, which is only sound for
    /// monitors anchored at the initial state — engines that anchor a
    /// check at arbitrary reachable states (PDR) must refuse designs
    /// where this fired.
    pub fn saw_negative_read(&self) -> bool {
        self.negative_read
    }

    /// The next-state bits computed by frame `frame`, flattened in the
    /// same deterministic order as [`DesignTraceEnv::initial_state_bits`]
    /// (netlist register order, LSB first). Panics if the frame does
    /// not exist yet.
    pub fn reg_next_bits(&self, frame: usize) -> Vec<fv_aig::AigLit> {
        let fv = &self.frames[frame];
        let mut out = Vec::new();
        for (id, _) in self.expander.netlist().regs() {
            out.extend(fv.reg_next[&id].bits().iter().copied());
        }
        out
    }
}

impl TraceEnv for DesignTraceEnv<'_> {
    fn read(&mut self, g: &mut Aig, name: &str, cycle: i32) -> Result<BitVec, EncodeError> {
        if let Some(&(w, v)) = self.consts.get(name) {
            return Ok(BitVec::constant(w as usize, v));
        }
        // Pre-history clamps to the reset state (documented).
        if cycle < 0 {
            self.negative_read = true;
        }
        let cycle = cycle.max(0) as u32;
        self.touched_frames = self.touched_frames.max(cycle + 1);
        let binding = self
            .expander
            .netlist()
            .net(name)
            .ok_or_else(|| EncodeError::UnknownSignal(name.to_string()))?
            .clone();
        self.ensure_frames(g, cycle);
        Ok(self.frames[cycle as usize].read_net(&binding))
    }

    fn constant(&self, name: &str) -> Option<(u32, u128)> {
        self.consts.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_env_is_stable_per_slot() {
        let table: SignalTable = [("a", 4u32)].into_iter().collect();
        let mut env = FreeTraceEnv::new(&table);
        let mut g = Aig::new();
        let x1 = env.read(&mut g, "a", 0).unwrap();
        let x2 = env.read(&mut g, "a", 0).unwrap();
        assert_eq!(x1, x2, "same slot reuses inputs");
        let y = env.read(&mut g, "a", 1).unwrap();
        assert_ne!(x1, y, "different cycles get fresh inputs");
        assert_eq!(env.log().len(), 2);
    }

    #[test]
    fn free_env_rejects_unknown() {
        let table = SignalTable::new();
        let mut env = FreeTraceEnv::new(&table);
        let mut g = Aig::new();
        assert_eq!(
            env.read(&mut g, "ghost", 0),
            Err(EncodeError::UnknownSignal("ghost".into()))
        );
    }

    #[test]
    fn negative_cycles_allocate_prehistory() {
        let table: SignalTable = [("a", 1u32)].into_iter().collect();
        let mut env = FreeTraceEnv::new(&table);
        let mut g = Aig::new();
        let pre = env.read(&mut g, "a", -1).unwrap();
        let now = env.read(&mut g, "a", 0).unwrap();
        assert_ne!(pre, now);
    }
}
