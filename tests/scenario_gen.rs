//! End-to-end coverage of the scenario generator subsystem: generated
//! suites run through `EvalEngine` and the incremental prover with all
//! golden verdicts confirmed, and every (design, assertion, verdict)
//! triple is self-consistent across random seeds (proptest).

use fveval_repro::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// A backend that answers every task with its hidden golden solution:
/// Design2SVA tasks get a provable golden, NL tasks the reference
/// itself. Every verdict the engine produces for it must be a pass.
struct Oracle;

impl Backend for Oracle {
    fn name(&self) -> &str {
        "oracle"
    }

    fn generate(&self, req: &Request) -> String {
        match req.task.as_ref() {
            TaskSpec::Design2sva { case } => {
                case.golden[req.sample_idx as usize % case.golden.len()].clone()
            }
            task => task
                .reference_text()
                .expect("NL tasks carry a reference")
                .to_string(),
        }
    }
}

#[test]
fn generated_suite_runs_through_engine_with_goldens_confirmed() {
    let set = generated_task_set(&SuiteConfig {
        per_family: 1,
        seed: 0xE2E,
        ..Default::default()
    })
    .unwrap();
    assert_eq!(
        set.suite.scenarios.len(),
        generators().iter().filter(|g| g.in_default_suite()).count(),
        "one scenario per default-suite family"
    );
    let tasks = generated_task_specs(&set);
    let engine = EvalEngine::with_jobs(2);
    let evals = engine.run(&Oracle, &tasks, &InferenceConfig::greedy(), 2);
    assert_eq!(evals.len(), tasks.len());
    for (task, eval) in tasks.iter().zip(&evals) {
        for sample in &eval.samples {
            assert!(
                sample.syntax && sample.func,
                "{}: golden response must pass, got {sample:?}",
                task.id()
            );
        }
    }
    // Scoring the design tasks drives the incremental prover; the NL
    // tasks drive the equivalence engine. Both must have done real work.
    let prover = engine.prover_stats();
    assert!(prover.queries() > 0, "prover reached: {prover:?}");
}

#[test]
fn generated_tasks_are_jobs_invariant() {
    let set = generated_task_set(&SuiteConfig {
        families: vec!["arbiter".into(), "crc".into()],
        per_family: 2,
        seed: 77,
        ..Default::default()
    })
    .unwrap();
    let tasks = generated_task_specs(&set);
    let models = profiles();
    let backends: Vec<&dyn Backend> = models[..2].iter().map(|m| m as &dyn Backend).collect();
    let cfg = InferenceConfig::sampling();
    let seq = EvalEngine::with_jobs(1).run_matrix(&backends, &tasks, &cfg, 3);
    let par = EvalEngine::with_jobs(4).run_matrix(&backends, &tasks, &cfg, 3);
    assert_eq!(seq, par, "byte-identical for any --jobs");
}

#[test]
fn simulated_models_score_sanely_on_generated_designs() {
    // The calibrated models must neither ace nor zero a generated
    // Design2SVA sweep: provable picks pass, plausible-wrong picks
    // fail functionally, malformed picks fail syntax.
    let set = generated_task_set(&SuiteConfig {
        per_family: 1,
        seed: 5,
        ..Default::default()
    })
    .unwrap();
    let tasks: Vec<Arc<TaskSpec>> = design_task_specs(&set.designs);
    let engine = EvalEngine::with_jobs(2);
    let models = profiles();
    let best = &models[0];
    let evals = engine.run(best, &tasks, &InferenceConfig::sampling(), 8);
    let samples: Vec<_> = evals.iter().flat_map(|c| c.samples.iter()).collect();
    let syntax = samples.iter().filter(|s| s.syntax).count();
    let func = samples.iter().filter(|s| s.func).count();
    assert!(syntax > 0, "some responses are well-formed");
    assert!(func > 0, "golden picks prove");
    assert!(func < samples.len(), "not every sample proves");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Triple self-consistency across seeds: for every family and a
    /// random (depth, width, seed), the prover's verdict matches each
    /// candidate's golden verdict and counterexample traces replay on
    /// the `sv_synth` simulator (both checked by `validate_scenario`).
    #[test]
    fn generated_triples_are_self_consistent(
        seed in 0u64..2000,
        depth in 1u32..10,
        width in 2u32..20,
    ) {
        for gen in generators() {
            let scenario = gen.generate(&GenParams { depth, width, seed });
            let report = validate_scenario(&scenario, ProveConfig::default())
                .unwrap_or_else(|e| panic!("{e}"));
            prop_assert!(
                report.is_clean(),
                "{}: {:?}",
                scenario.id,
                report.problems
            );
            prop_assert_eq!(
                report.confirmed as usize,
                scenario.candidates.len(),
                "every candidate confirmed"
            );
        }
    }

    /// Suite generation is deterministic and unique-id'd for any seed.
    #[test]
    fn suite_generation_deterministic(seed in 0u64..500) {
        let cfg = SuiteConfig { per_family: 2, seed, ..Default::default() };
        let a = generate_suite(&cfg);
        let b = generate_suite(&cfg);
        prop_assert_eq!(&a, &b);
        let mut ids: Vec<&str> = a.scenarios.iter().map(|s| s.id.as_str()).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "unique ids");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Session determinism on the structurally new families: a
    /// hierarchy scenario (instance inlining) and a protocol scenario
    /// (request/response handshake) evaluated through one long-lived
    /// `ProofSession` must produce verdicts identical to fresh
    /// one-shot `prove_with_stats` calls — proof depth and earliest
    /// violating anchor included.
    #[test]
    fn proof_sessions_match_one_shot_on_hierarchy_and_protocol(
        family_idx in 0usize..2,
        seed in 0u64..64,
    ) {
        let family = ["hier", "axi"][family_idx];
        let suite = generate_suite(&SuiteConfig {
            families: vec![family.to_string()],
            per_family: 1,
            seed,
            ..Default::default()
        });
        for scenario in &suite.scenarios {
            let bound = bind_scenario(scenario).unwrap();
            let mut session =
                ProofSession::open(&bound.netlist, &bound.consts, ProveConfig::default())
                    .unwrap();
            for candidate in &scenario.candidates {
                let assertion = parse_assertion_str(&candidate.sva).unwrap();
                let (fresh, _) = prove_with_stats(
                    &bound.netlist,
                    &assertion,
                    &bound.consts,
                    ProveConfig::default(),
                )
                .unwrap();
                let (via_session, _) = session.check(&assertion).unwrap();
                match (&fresh, &via_session) {
                    (ProveResult::Proven { k: k1 }, ProveResult::Proven { k: k2 }) => {
                        prop_assert_eq!(k1, k2, "{}", &candidate.sva);
                    }
                    (ProveResult::Falsified { cex: c1 }, ProveResult::Falsified { cex: c2 }) => {
                        prop_assert_eq!(c1.anchor, c2.anchor, "{}", &candidate.sva);
                    }
                    (ProveResult::Undetermined, ProveResult::Undetermined) => {}
                    (fresh, via) => prop_assert!(
                        false,
                        "{} ({} seed {}): fresh {:?} != session {:?}",
                        &candidate.sva, family, seed, fresh, via
                    ),
                }
            }
        }
    }
}

#[test]
fn mutated_suites_flow_through_the_engine_and_oracle_passes() {
    // Mutants ride the same three task-set views as family-authored
    // candidates; an oracle answering every NL task with its reference
    // must pass on mutant-derived cases too (the reference *is* the
    // mutant), and the mutation tag must survive into the case.
    let set = generated_task_set(&SuiteConfig {
        families: vec!["fifo".into(), "regfile".into()],
        per_family: 1,
        seed: 0x5EED,
        mutations: 2,
        ..Default::default()
    })
    .unwrap();
    let tagged = set.human.iter().filter(|c| c.mutation.is_some()).count();
    assert!(tagged > 0, "mutants reach the human-style view");
    assert_eq!(
        set.machine
            .iter()
            .filter(|(_, c)| c.mutation.is_some())
            .count(),
        tagged,
        "machine-style view carries the same mutation tags"
    );
    let tasks = generated_task_specs(&set);
    let engine = EvalEngine::with_jobs(2);
    let evals = engine.run(&Oracle, &tasks, &InferenceConfig::greedy(), 1);
    for (task, eval) in tasks.iter().zip(&evals) {
        for sample in &eval.samples {
            assert!(
                sample.syntax && sample.func,
                "{}: oracle must pass, got {sample:?}",
                task.id()
            );
        }
    }
}
