//! Tokenizer for the SystemVerilog subset.

use crate::ParseError;

/// Keywords recognized by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Logic,
    Genvar,
    Parameter,
    Localparam,
    Assign,
    Always,
    AlwaysFf,
    AlwaysComb,
    Begin,
    End,
    If,
    Else,
    Case,
    Endcase,
    Default,
    For,
    Generate,
    Endgenerate,
    Posedge,
    Negedge,
    Assert,
    Assume,
    Cover,
    Property,
    Disable,
    Iff,
    Strong,
    Weak,
    SEventually,
    SUntil,
    Until,
    Nexttime,
    Throughout,
    Not,
    And,
    Or,
    Initial,
    Int,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "module" => Kw::Module,
        "endmodule" => Kw::Endmodule,
        "input" => Kw::Input,
        "output" => Kw::Output,
        "inout" => Kw::Inout,
        "wire" => Kw::Wire,
        "reg" => Kw::Reg,
        "logic" => Kw::Logic,
        "genvar" => Kw::Genvar,
        "parameter" => Kw::Parameter,
        "localparam" => Kw::Localparam,
        "assign" => Kw::Assign,
        "always" => Kw::Always,
        "always_ff" => Kw::AlwaysFf,
        "always_comb" => Kw::AlwaysComb,
        "begin" => Kw::Begin,
        "end" => Kw::End,
        "if" => Kw::If,
        "else" => Kw::Else,
        "case" => Kw::Case,
        "endcase" => Kw::Endcase,
        "default" => Kw::Default,
        "for" => Kw::For,
        "generate" => Kw::Generate,
        "endgenerate" => Kw::Endgenerate,
        "posedge" => Kw::Posedge,
        "negedge" => Kw::Negedge,
        "assert" => Kw::Assert,
        "assume" => Kw::Assume,
        "cover" => Kw::Cover,
        "property" => Kw::Property,
        "disable" => Kw::Disable,
        "iff" => Kw::Iff,
        "strong" => Kw::Strong,
        "weak" => Kw::Weak,
        "s_eventually" => Kw::SEventually,
        "s_until" => Kw::SUntil,
        "until" => Kw::Until,
        "nexttime" => Kw::Nexttime,
        "throughout" => Kw::Throughout,
        "not" => Kw::Not,
        "and" => Kw::And,
        "or" => Kw::Or,
        "initial" => Kw::Initial,
        "int" => Kw::Int,
        _ => return None,
    })
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Punct {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Colon,
    Comma,
    Dot,
    Hash,
    DoubleHash,
    At,
    Question,
    Dollar,
    // Operators
    Bang,
    Tilde,
    Amp,
    Pipe,
    Caret,
    TildeAmp,
    TildePipe,
    TildeCaret,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Shl,
    Shr,
    AShl,
    AShr,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    CaseEq,
    CaseNeq,
    AmpAmp,
    PipePipe,
    Assign,
    OverlapImpl,
    NonOverlapImpl,
    PlusPlus,
    MinusMinus,
}

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// `$name` system identifier (name excludes the `$`).
    SysIdent(String),
    /// Integer literal, possibly sized and based.
    Number {
        /// Bit width if written.
        width: Option<u32>,
        /// Base char (`b`/`o`/`d`/`h`) if based.
        base: Option<char>,
        /// Value (2-state).
        value: u128,
    },
    /// `'0` / `'1` fill literal.
    Fill(bool),
    /// Keyword.
    Keyword(Kw),
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Line (1-based).
    pub line: usize,
    /// Column (1-based).
    pub col: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.col, msg)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let (l, c) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(ParseError::new(l, c, "unterminated block comment"));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number_body(&mut self, radix: u32) -> Result<u128, ParseError> {
        let mut value: u128 = 0;
        let mut any = false;
        loop {
            let c = self.peek();
            if c == b'_' {
                self.bump();
                continue;
            }
            let d = (c as char).to_digit(radix.clamp(10, 16));
            let d = match d {
                Some(d) if (c as char).is_ascii_hexdigit() || c.is_ascii_digit() => {
                    if d >= radix {
                        if any {
                            break;
                        }
                        return Err(
                            self.err(format!("digit '{}' invalid for base {radix}", c as char))
                        );
                    }
                    d
                }
                _ => break,
            };
            any = true;
            self.bump();
            value = value
                .checked_mul(u128::from(radix))
                .and_then(|v| v.checked_add(u128::from(d)))
                .ok_or_else(|| self.err("integer literal overflows 128 bits"))?;
        }
        if !any {
            return Err(self.err("expected digits"));
        }
        Ok(value)
    }

    /// Lexes the `'<base><digits>` or `'0`/`'1` part; `width` was already
    /// consumed by the caller (or None).
    fn lex_based(&mut self, width: Option<u32>) -> Result<Tok, ParseError> {
        debug_assert_eq!(self.peek(), b'\'');
        self.bump(); // '
        let c = self.peek().to_ascii_lowercase();
        match c {
            b'b' | b'o' | b'd' | b'h' => {
                self.bump();
                let radix = match c {
                    b'b' => 2,
                    b'o' => 8,
                    b'd' => 10,
                    _ => 16,
                };
                let value = self.lex_number_body(radix)?;
                Ok(Tok::Number {
                    width,
                    base: Some(c as char),
                    value,
                })
            }
            b'0' | b'1' if width.is_none() && !self.peek2().is_ascii_alphanumeric() => {
                let v = self.bump() == b'1';
                Ok(Tok::Fill(v))
            }
            _ => Err(self.err("malformed based literal")),
        }
    }

    fn next_token(&mut self) -> Result<Spanned, ParseError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let mk = |tok| Spanned { tok, line, col };
        if self.pos >= self.src.len() {
            return Ok(mk(Tok::Eof));
        }
        let c = self.peek();
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                self.bump();
            }
            let s = std::str::from_utf8(&self.src[start..self.pos])
                .map_err(|_| self.err("non-utf8 identifier"))?;
            return Ok(mk(match keyword(s) {
                Some(k) => Tok::Keyword(k),
                None => Tok::Ident(s.to_string()),
            }));
        }
        // System identifiers: `$name`, or a bare `$` (unbounded marker).
        if c == b'$' {
            self.bump();
            if self.peek().is_ascii_alphabetic() || self.peek() == b'_' {
                let start = self.pos;
                while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                    self.bump();
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("non-utf8 identifier"))?;
                return Ok(mk(Tok::SysIdent(s.to_string())));
            }
            return Ok(mk(Tok::Punct(Punct::Dollar)));
        }
        // Numbers: `123`, `8'hFF`, `123_456`.
        if c.is_ascii_digit() {
            let value = self.lex_number_body(10)?;
            if self.peek() == b'\''
                && matches!(self.peek2().to_ascii_lowercase(), b'b' | b'o' | b'd' | b'h')
            {
                let width =
                    u32::try_from(value).map_err(|_| self.err("literal width too large"))?;
                return Ok(mk(self.lex_based(Some(width))?));
            }
            return Ok(mk(Tok::Number {
                width: None,
                base: None,
                value,
            }));
        }
        // `'...` literals.
        if c == b'\'' {
            return Ok(mk(self.lex_based(None)?));
        }
        // Operators — longest match first.
        let tok = {
            let (a, b, d) = (c, self.peek2(), self.peek3());
            macro_rules! take {
                ($n:expr, $p:expr) => {{
                    for _ in 0..$n {
                        self.bump();
                    }
                    Tok::Punct($p)
                }};
            }
            match (a, b, d) {
                (b'<', b'<', b'<') => take!(3, Punct::AShl),
                (b'>', b'>', b'>') => take!(3, Punct::AShr),
                (b'=', b'=', b'=') => take!(3, Punct::CaseEq),
                (b'!', b'=', b'=') => take!(3, Punct::CaseNeq),
                (b'|', b'-', b'>') => take!(3, Punct::OverlapImpl),
                (b'|', b'=', b'>') => take!(3, Punct::NonOverlapImpl),
                (b'<', b'<', _) => take!(2, Punct::Shl),
                (b'>', b'>', _) => take!(2, Punct::Shr),
                (b'=', b'=', _) => take!(2, Punct::EqEq),
                (b'!', b'=', _) => take!(2, Punct::NotEq),
                (b'<', b'=', _) => take!(2, Punct::Le),
                (b'>', b'=', _) => take!(2, Punct::Ge),
                (b'&', b'&', _) => take!(2, Punct::AmpAmp),
                (b'|', b'|', _) => take!(2, Punct::PipePipe),
                (b'~', b'&', _) => take!(2, Punct::TildeAmp),
                (b'~', b'|', _) => take!(2, Punct::TildePipe),
                (b'~', b'^', _) => take!(2, Punct::TildeCaret),
                (b'^', b'~', _) => take!(2, Punct::TildeCaret),
                (b'#', b'#', _) => take!(2, Punct::DoubleHash),
                (b'+', b'+', _) => take!(2, Punct::PlusPlus),
                (b'-', b'-', _) => take!(2, Punct::MinusMinus),
                (b'(', ..) => take!(1, Punct::LParen),
                (b')', ..) => take!(1, Punct::RParen),
                (b'[', ..) => take!(1, Punct::LBracket),
                (b']', ..) => take!(1, Punct::RBracket),
                (b'{', ..) => take!(1, Punct::LBrace),
                (b'}', ..) => take!(1, Punct::RBrace),
                (b';', ..) => take!(1, Punct::Semi),
                (b':', ..) => take!(1, Punct::Colon),
                (b',', ..) => take!(1, Punct::Comma),
                (b'.', ..) => take!(1, Punct::Dot),
                (b'#', ..) => take!(1, Punct::Hash),
                (b'@', ..) => take!(1, Punct::At),
                (b'?', ..) => take!(1, Punct::Question),
                (b'!', ..) => take!(1, Punct::Bang),
                (b'~', ..) => take!(1, Punct::Tilde),
                (b'&', ..) => take!(1, Punct::Amp),
                (b'|', ..) => take!(1, Punct::Pipe),
                (b'^', ..) => take!(1, Punct::Caret),
                (b'+', ..) => take!(1, Punct::Plus),
                (b'-', ..) => take!(1, Punct::Minus),
                (b'*', ..) => take!(1, Punct::Star),
                (b'/', ..) => take!(1, Punct::Slash),
                (b'%', ..) => take!(1, Punct::Percent),
                (b'<', ..) => take!(1, Punct::Lt),
                (b'>', ..) => take!(1, Punct::Gt),
                (b'=', ..) => take!(1, Punct::Assign),
                _ => {
                    return Err(self.err(format!("unexpected character '{}'", c as char)));
                }
            }
        };
        Ok(mk(tok))
    }
}

/// Tokenizes preprocessed source text.
///
/// # Errors
///
/// Returns [`ParseError`] on unknown characters, malformed literals, or
/// unterminated comments.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        let t = lx.next_token()?;
        let eof = t.tok == Tok::Eof;
        out.push(t);
        if eof {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn literals() {
        assert_eq!(
            toks("123"),
            vec![
                Tok::Number {
                    width: None,
                    base: None,
                    value: 123
                },
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("8'hFF"),
            vec![
                Tok::Number {
                    width: Some(8),
                    base: Some('h'),
                    value: 255
                },
                Tok::Eof
            ]
        );
        assert_eq!(
            toks("'d0"),
            vec![
                Tok::Number {
                    width: None,
                    base: Some('d'),
                    value: 0
                },
                Tok::Eof
            ]
        );
        assert_eq!(toks("'1"), vec![Tok::Fill(true), Tok::Eof]);
        assert_eq!(toks("'0"), vec![Tok::Fill(false), Tok::Eof]);
        assert_eq!(
            toks("2'b1_0"),
            vec![
                Tok::Number {
                    width: Some(2),
                    base: Some('b'),
                    value: 2
                },
                Tok::Eof
            ]
        );
    }

    #[test]
    fn longest_match_operators() {
        assert_eq!(
            toks("<<< << < <= === == = |-> |=> || |"),
            vec![
                Tok::Punct(Punct::AShl),
                Tok::Punct(Punct::Shl),
                Tok::Punct(Punct::Lt),
                Tok::Punct(Punct::Le),
                Tok::Punct(Punct::CaseEq),
                Tok::Punct(Punct::EqEq),
                Tok::Punct(Punct::Assign),
                Tok::Punct(Punct::OverlapImpl),
                Tok::Punct(Punct::NonOverlapImpl),
                Tok::Punct(Punct::PipePipe),
                Tok::Punct(Punct::Pipe),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line\n /* block\n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn sys_idents_and_dollar() {
        assert_eq!(
            toks("$countones(x) ##[0:$]"),
            vec![
                Tok::SysIdent("countones".into()),
                Tok::Punct(Punct::LParen),
                Tok::Ident("x".into()),
                Tok::Punct(Punct::RParen),
                Tok::Punct(Punct::DoubleHash),
                Tok::Punct(Punct::LBracket),
                Tok::Number {
                    width: None,
                    base: None,
                    value: 0
                },
                Tok::Punct(Punct::Colon),
                Tok::Punct(Punct::Dollar),
                Tok::Punct(Punct::RBracket),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(
            toks("module mymodule"),
            vec![
                Tok::Keyword(Kw::Module),
                Tok::Ident("mymodule".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn xnor_both_spellings() {
        assert_eq!(
            toks("~^ ^~"),
            vec![
                Tok::Punct(Punct::TildeCaret),
                Tok::Punct(Punct::TildeCaret),
                Tok::Eof
            ]
        );
    }
}
