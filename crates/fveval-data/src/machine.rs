//! NL2SVA-Machine: the synthetic benchmark generation pipeline.
//!
//! Reproduces the paper's four-stage flow: (1) random SVA assertion
//! sampling over symbolic signals, (2) natural-language description
//! generation (a seeded template naturalizer substitutes the paper's
//! gpt-4o), (3) a critic validating the description against the formal
//! logic with a regenerate-on-reject loop (substituting gpt-4-turbo),
//! and (4) the resulting curated case list (300 by default).

use fv_core::SignalTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sv_ast::{
    print_assertion, Assertion, BinaryOp, ClockSpec, DelayBound, Expr, Literal, PropExpr, SeqExpr,
    SysFunc, UnaryOp,
};

/// One generated (NL, SVA) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineCase {
    /// Unique id, e.g. `nl2sva_machine_0017`.
    pub id: String,
    /// Naturalized description of the assertion.
    pub question: String,
    /// The reference assertion (ground truth).
    pub reference: Assertion,
    /// The reference rendered as concrete SVA.
    pub reference_text: String,
    /// Number of critic-rejected description drafts before acceptance.
    pub retries: u32,
    /// The OP-Tree mutation operator tag when the reference was derived
    /// by the `fveval-gen` mutation layer; `None` for generated-corpus
    /// and family-authored cases.
    pub mutation: Option<String>,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineGenConfig {
    /// Number of cases to produce (paper: 300).
    pub count: usize,
    /// RNG seed (all output is deterministic under it).
    pub seed: u64,
    /// Probability that a description draft is corrupted, exercising
    /// the critic's reject/retry loop.
    pub corruption_rate: f64,
}

impl Default for MachineGenConfig {
    fn default() -> MachineGenConfig {
        MachineGenConfig {
            count: 300,
            seed: 0xF5E7A1,
            corruption_rate: 0.15,
        }
    }
}

/// The symbolic signal table shared by all machine cases
/// (`sig_A ..= sig_J` with fixed widths).
pub fn machine_signal_table() -> SignalTable {
    signal_widths().iter().map(|&(n, w)| (n, w)).collect()
}

fn signal_widths() -> &'static [(&'static str, u32)] {
    &[
        ("sig_A", 1),
        ("sig_B", 4),
        ("sig_C", 4),
        ("sig_D", 1),
        ("sig_E", 8),
        ("sig_F", 1),
        ("sig_G", 4),
        ("sig_H", 4),
        ("sig_I", 1),
        ("sig_J", 1),
    ]
}

fn bool_signals() -> Vec<&'static str> {
    signal_widths()
        .iter()
        .filter(|&&(_, w)| w == 1)
        .map(|&(n, _)| n)
        .collect()
}

fn vec_signals() -> Vec<(&'static str, u32)> {
    signal_widths()
        .iter()
        .filter(|&&(_, w)| w > 1)
        .copied()
        .collect()
}

// ---------------------------------------------------------------------
// Stage 1: random assertion sampling
// ---------------------------------------------------------------------

/// A boolean atom with its canonical description, kept paired so the
/// naturalizer and critic agree on phrasing.
#[derive(Debug, Clone)]
struct DescribedExpr {
    expr: Expr,
    /// Canonical description (used by the critic).
    canon: String,
    /// Varied description (what the "LLM naturalizer" writes).
    varied: String,
}

fn gen_atom(rng: &mut StdRng) -> DescribedExpr {
    let choice = rng.gen_range(0..8);
    match choice {
        0 => {
            let s = pick(rng, &bool_signals());
            DescribedExpr {
                expr: Expr::ident(s),
                canon: format!("{s} is high"),
                varied: pick(
                    rng,
                    &[
                        format!("{s} is high"),
                        format!("{s} is true"),
                        format!("{s} is asserted"),
                    ],
                ),
            }
        }
        1 => {
            let s = pick(rng, &bool_signals());
            DescribedExpr {
                expr: Expr::ident(s).lnot(),
                canon: format!("{s} is low"),
                varied: pick(
                    rng,
                    &[
                        format!("{s} is low"),
                        format!("{s} is not high"),
                        format!("{s} is deasserted"),
                    ],
                ),
            }
        }
        2 => {
            let (s, _) = pick(rng, &vec_signals());
            DescribedExpr {
                expr: Expr::Unary(UnaryOp::RedAnd, Box::new(Expr::ident(s))),
                canon: format!("all bits of {s} are 1"),
                varied: pick(
                    rng,
                    &[
                        format!("all bits of {s} are 1"),
                        format!("every bit of {s} is set"),
                    ],
                ),
            }
        }
        3 => {
            let (s, _) = pick(rng, &vec_signals());
            DescribedExpr {
                expr: Expr::Unary(UnaryOp::RedOr, Box::new(Expr::ident(s))),
                canon: format!("{s} contains at least one 1 bit"),
                varied: pick(
                    rng,
                    &[
                        format!("{s} contains at least one '1' bit"),
                        format!("at least one bit of {s} is set"),
                    ],
                ),
            }
        }
        4 => {
            let (s, _) = pick(rng, &vec_signals());
            DescribedExpr {
                expr: Expr::Unary(UnaryOp::RedXor, Box::new(Expr::ident(s))),
                canon: format!("{s} has an odd number of bits set to 1"),
                varied: pick(
                    rng,
                    &[
                        format!("{s} has an odd number of bits set to '1'"),
                        format!("{s} has odd parity"),
                    ],
                ),
            }
        }
        5 => {
            let (s, w) = pick(rng, &vec_signals());
            let k = rng.gen_range(1..(1u128 << w.min(4)));
            DescribedExpr {
                expr: Expr::bin(
                    BinaryOp::Lt,
                    Expr::ident(s),
                    Expr::Literal(Literal::tick_d(k)),
                ),
                canon: format!("{s} is less than {k}"),
                varied: pick(
                    rng,
                    &[
                        format!("{s} is less than {k}"),
                        format!("the value of {s} is below {k}"),
                    ],
                ),
            }
        }
        6 => {
            let (s1, _) = pick(rng, &vec_signals());
            let mut s2 = pick(rng, &vec_signals()).0;
            while s2 == s1 {
                s2 = pick(rng, &vec_signals()).0;
            }
            let eq = rng.gen_bool(0.5);
            DescribedExpr {
                expr: Expr::bin(
                    if eq { BinaryOp::Eq } else { BinaryOp::Neq },
                    Expr::ident(s1),
                    Expr::ident(s2),
                ),
                canon: format!("{s1} is {}equal to {s2}", if eq { "" } else { "not " }),
                varied: if eq {
                    pick(
                        rng,
                        &[
                            format!("{s1} equals {s2}"),
                            format!("{s1} is equal to {s2}"),
                        ],
                    )
                } else {
                    pick(
                        rng,
                        &[
                            format!("{s1} is not equal to {s2}"),
                            format!("{s1} differs from {s2}"),
                        ],
                    )
                },
            }
        }
        _ => {
            let (s, _) = pick(rng, &vec_signals());
            let k = rng.gen_range(1..=3u128);
            DescribedExpr {
                expr: Expr::bin(
                    BinaryOp::Eq,
                    Expr::SysCall(SysFunc::Countones, vec![Expr::ident(s)]),
                    Expr::Literal(Literal::tick_d(k)),
                ),
                canon: format!("{s} has exactly {k} bits set"),
                varied: pick(
                    rng,
                    &[
                        format!("{s} has exactly {k} bits set"),
                        format!("exactly {k} bits of {s} are 1"),
                    ],
                ),
            }
        }
    }
}

fn gen_bool(rng: &mut StdRng, depth: u32) -> DescribedExpr {
    if depth == 0 || rng.gen_bool(0.45) {
        return gen_atom(rng);
    }
    let a = gen_bool(rng, depth - 1);
    let b = gen_bool(rng, depth - 1);
    if rng.gen_bool(0.5) {
        DescribedExpr {
            expr: a.expr.land(b.expr),
            canon: format!("both {} and {}", a.canon, b.canon),
            varied: pick(
                rng,
                &[
                    format!("both {} and {}", a.varied, b.varied),
                    format!("{} and {}", a.varied, b.varied),
                ],
            ),
        }
    } else {
        DescribedExpr {
            expr: a.expr.lor(b.expr),
            canon: format!("either {} or {}", a.canon, b.canon),
            varied: pick(
                rng,
                &[
                    format!("either {} or {}", a.varied, b.varied),
                    format!("{} or {}", a.varied, b.varied),
                ],
            ),
        }
    }
}

/// A sampled assertion plus its canonical/varied descriptions.
#[derive(Debug, Clone)]
struct DescribedAssertion {
    assertion: Assertion,
    canon: String,
    varied: String,
}

fn gen_assertion(rng: &mut StdRng) -> DescribedAssertion {
    let template = rng.gen_range(0..6);
    let clock = ClockSpec::posedge("clk");
    match template {
        // Immediate boolean property.
        0 => {
            let e = gen_bool(rng, 2);
            DescribedAssertion {
                assertion: Assertion::new(clock, PropExpr::expr(e.expr)),
                canon: format!("{} .", e.canon),
                varied: format!("{}.", e.varied),
            }
        }
        // Same-cycle implication.
        1 => {
            let a = gen_bool(rng, 1);
            let b = gen_bool(rng, 1);
            DescribedAssertion {
                assertion: Assertion::new(
                    clock,
                    PropExpr::implies(SeqExpr::Expr(a.expr), PropExpr::expr(b.expr)),
                ),
                canon: format!("if {} , then {} in the same cycle .", a.canon, b.canon),
                varied: pick(
                    rng,
                    &[
                        format!("If {}, then {} in the same cycle.", a.varied, b.varied),
                        format!("Whenever {}, {} at that same cycle.", a.varied, b.varied),
                    ],
                ),
            }
        }
        // Next-cycle implication (|=>).
        2 => {
            let a = gen_bool(rng, 1);
            let b = gen_bool(rng, 1);
            DescribedAssertion {
                assertion: Assertion::new(
                    clock,
                    PropExpr::Implication {
                        ante: SeqExpr::Expr(a.expr),
                        non_overlap: true,
                        cons: Box::new(PropExpr::expr(b.expr)),
                    },
                ),
                canon: format!("if {} , then on the next cycle {} .", a.canon, b.canon),
                varied: pick(
                    rng,
                    &[
                        format!("If {}, then on the next clock edge {}.", a.varied, b.varied),
                        format!("When {}, {} must hold one cycle later.", a.varied, b.varied),
                    ],
                ),
            }
        }
        // Fixed delay.
        3 => {
            let a = gen_bool(rng, 1);
            let b = gen_bool(rng, 1);
            let n = rng.gen_range(2..=5u32);
            DescribedAssertion {
                assertion: Assertion::new(
                    clock,
                    PropExpr::implies(
                        SeqExpr::Expr(a.expr),
                        PropExpr::Seq(SeqExpr::Delay {
                            lhs: None,
                            lo: n,
                            hi: DelayBound::Finite(n),
                            rhs: Box::new(SeqExpr::Expr(b.expr)),
                        }),
                    ),
                ),
                canon: format!("if {} , then {n} cycles later {} .", a.canon, b.canon),
                varied: pick(
                    rng,
                    &[
                        format!(
                            "If {}, then {n} clock cycles later, {}.",
                            a.varied, b.varied
                        ),
                        format!("{} must hold {n} cycles after {}.", b.varied, a.varied),
                    ],
                ),
            }
        }
        // Bounded window.
        4 => {
            let a = gen_bool(rng, 1);
            let b = gen_bool(rng, 1);
            let lo = rng.gen_range(1..=2u32);
            let hi = lo + rng.gen_range(1..=3u32);
            DescribedAssertion {
                assertion: Assertion::new(
                    clock,
                    PropExpr::implies(
                        SeqExpr::Expr(a.expr),
                        PropExpr::Seq(SeqExpr::Delay {
                            lhs: None,
                            lo,
                            hi: DelayBound::Finite(hi),
                            rhs: Box::new(SeqExpr::Expr(b.expr)),
                        }),
                    ),
                ),
                canon: format!(
                    "if {} , then within {lo} to {hi} cycles {} .",
                    a.canon, b.canon
                ),
                varied: pick(
                    rng,
                    &[
                        format!(
                            "If {}, then {} must hold within {lo} to {hi} cycles.",
                            a.varied, b.varied
                        ),
                        format!(
                            "When {}, {} follows between {lo} and {hi} cycles later.",
                            a.varied, b.varied
                        ),
                    ],
                ),
            }
        }
        // Strong eventuality.
        _ => {
            let a = gen_bool(rng, 1);
            let b = gen_bool(rng, 1);
            DescribedAssertion {
                assertion: Assertion::new(
                    clock,
                    PropExpr::implies(
                        SeqExpr::Expr(a.expr),
                        PropExpr::SEventually(Box::new(PropExpr::expr(b.expr))),
                    ),
                ),
                canon: format!("if {} , then eventually {} .", a.canon, b.canon),
                varied: pick(
                    rng,
                    &[
                        format!(
                            "If {}, then {} must eventually be true.",
                            a.varied, b.varied
                        ),
                        format!("Once {}, {} eventually holds.", a.varied, b.varied),
                    ],
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stage 2/3: naturalization with a critic loop
// ---------------------------------------------------------------------

/// The critic compares the description's number tokens and keyword
/// skeleton against the canonical rendering of the formal logic.
fn critic_accepts(canon: &str, description: &str) -> bool {
    let numbers = |s: &str| -> Vec<u64> {
        let mut out = Vec::new();
        let mut cur = String::new();
        for ch in s.chars() {
            if ch.is_ascii_digit() {
                cur.push(ch);
            } else if !cur.is_empty() {
                out.push(cur.parse().unwrap_or(0));
                cur.clear();
            }
        }
        if !cur.is_empty() {
            out.push(cur.parse().unwrap_or(0));
        }
        out.sort_unstable();
        out
    };
    if numbers(canon) != numbers(description) {
        return false;
    }
    // Signal mentions must match exactly.
    let signals = |s: &str| -> Vec<&str> {
        let mut v: Vec<&str> = signal_widths()
            .iter()
            .map(|&(n, _)| n)
            .filter(|n| s.contains(n))
            .collect();
        v.sort_unstable();
        v
    };
    if signals(canon) != signals(description) {
        return false;
    }
    // Negation and parity keywords must be preserved.
    for kw in ["odd", "not ", "low", "less than"] {
        if canon.contains(kw) != (description.to_lowercase().contains(kw)) {
            return false;
        }
    }
    true
}

/// Injects a description error (what a sloppy naturalizer might do).
fn corrupt(rng: &mut StdRng, description: &str) -> String {
    let mut s = description.to_string();
    match rng.gen_range(0..3) {
        0 => {
            // Perturb the first number.
            if let Some(pos) = s.find(|c: char| c.is_ascii_digit()) {
                let d = s.as_bytes()[pos] - b'0';
                let nd = (d + 1) % 10;
                s.replace_range(pos..pos + 1, &nd.to_string());
                return s;
            }
        }
        1 if s.contains("odd") => {
            return s.replace("odd", "even");
        }
        _ => {}
    }
    // Fallback corruption: drop the trailing clause.
    match s.rfind(',') {
        Some(p) => format!("{}.", &s[..p]),
        None => format!("{s} always"),
    }
}

// ---------------------------------------------------------------------
// Stage 4: dataset assembly
// ---------------------------------------------------------------------

/// Runs the full generation pipeline.
pub fn generate_machine_cases(cfg: MachineGenConfig) -> Vec<MachineCase> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cases = Vec::with_capacity(cfg.count);
    for i in 0..cfg.count {
        let spec = gen_assertion(&mut rng);
        // Naturalize with the critic loop: a corrupted draft is caught
        // by the critic and regenerated (bounded retries).
        let mut retries = 0;
        let mut description = spec.varied.clone();
        loop {
            let draft = if rng.gen_bool(cfg.corruption_rate) {
                corrupt(&mut rng, &description)
            } else {
                description.clone()
            };
            if critic_accepts(&spec.canon, &draft) {
                description = draft;
                break;
            }
            retries += 1;
            if retries > 4 {
                // Fall back to the canonical phrasing (always accepted).
                description = spec.canon.clone();
                break;
            }
        }
        cases.push(MachineCase {
            id: format!("nl2sva_machine_{i:04}"),
            question: format!("Create a SVA assertion that checks: {description}"),
            reference_text: print_assertion(&spec.assertion),
            reference: spec.assertion,
            retries,
            mutation: None,
        });
    }
    cases
}

fn pick<T: Clone>(rng: &mut StdRng, options: &[T]) -> T {
    options[rng.gen_range(0..options.len())].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_core::{check_equivalence, EquivConfig, Equivalence};
    use sv_parser::parse_assertion_str;

    #[test]
    fn default_config_produces_300() {
        let cases = generate_machine_cases(MachineGenConfig::default());
        assert_eq!(cases.len(), 300);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_machine_cases(MachineGenConfig {
            count: 25,
            ..Default::default()
        });
        let b = generate_machine_cases(MachineGenConfig {
            count: 25,
            ..Default::default()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_machine_cases(MachineGenConfig {
            count: 25,
            seed: 1,
            ..Default::default()
        });
        let b = generate_machine_cases(MachineGenConfig {
            count: 25,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn all_references_reparse_and_self_equiv() {
        let table = machine_signal_table();
        let cases = generate_machine_cases(MachineGenConfig {
            count: 60,
            ..Default::default()
        });
        for c in cases {
            let parsed = parse_assertion_str(&c.reference_text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", c.id, c.reference_text));
            assert_eq!(parsed, c.reference, "{} round trip", c.id);
            let out = check_equivalence(&parsed, &c.reference, &table, EquivConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", c.id));
            assert_eq!(out.verdict, Equivalence::Equivalent, "{}", c.id);
        }
    }

    #[test]
    fn critic_catches_number_corruption() {
        assert!(critic_accepts(
            "if sig_A is high , then 3 cycles later sig_F is high .",
            "If sig_A is high, then 3 clock cycles later, sig_F is true."
        ));
        assert!(!critic_accepts(
            "if sig_A is high , then 3 cycles later sig_F is high .",
            "If sig_A is high, then 4 clock cycles later, sig_F is true."
        ));
        assert!(!critic_accepts(
            "sig_G has an odd number of bits set to 1 .",
            "sig_G has an even number of bits set to 1."
        ));
        assert!(!critic_accepts("sig_A is high .", "sig_B is high."));
    }

    #[test]
    fn corruption_rate_exercises_retries() {
        let cases = generate_machine_cases(MachineGenConfig {
            count: 200,
            seed: 7,
            corruption_rate: 0.5,
        });
        let retried = cases.iter().filter(|c| c.retries > 0).count();
        assert!(retried > 20, "critic loop exercised, got {retried}");
    }

    #[test]
    fn template_variety_present() {
        let cases = generate_machine_cases(MachineGenConfig {
            count: 120,
            ..Default::default()
        });
        let with_delay = cases
            .iter()
            .filter(|c| c.reference_text.contains("##"))
            .count();
        let with_eventually = cases
            .iter()
            .filter(|c| c.reference_text.contains("s_eventually"))
            .count();
        let immediate = cases
            .iter()
            .filter(|c| !c.reference_text.contains("|->") && !c.reference_text.contains("|=>"))
            .count();
        assert!(with_delay > 10);
        assert!(with_eventually > 5);
        assert!(immediate > 5);
    }
}
