//! Tseitin encoding of AIG cones into a [`fv_sat::Solver`].

use crate::aig::{Aig, AigLit, Node, NodeId};
use fv_sat::{Lit, Solver, Var};
use std::collections::HashMap;

/// Emits AIG cones into CNF with memoization.
///
/// Each emitter instance owns one node-to-variable map, which is what the
/// BMC unroller exploits: one emitter per time frame gives every frame its
/// own copy of the combinational logic, while latch variables are stitched
/// between frames by the caller.
///
/// # Examples
///
/// ```
/// use fv_aig::{Aig, CnfEmitter};
/// use fv_sat::Solver;
///
/// let mut g = Aig::new();
/// let a = g.input();
/// let b = g.input();
/// let y = g.and(a, b);
/// let mut solver = Solver::new();
/// let mut em = CnfEmitter::new();
/// let ylit = em.emit(&g, y, &mut solver);
/// solver.add_clause([ylit]);
/// assert!(solver.solve().is_sat());
/// ```
#[derive(Debug, Default)]
pub struct CnfEmitter {
    map: HashMap<NodeId, Var>,
}

impl CnfEmitter {
    /// Creates an emitter with an empty node map.
    pub fn new() -> CnfEmitter {
        CnfEmitter::default()
    }

    /// Returns the solver literal for an AIG literal, emitting the cone of
    /// logic beneath it (once per emitter).
    pub fn emit(&mut self, g: &Aig, lit: AigLit, solver: &mut Solver) -> Lit {
        if lit == AigLit::FALSE || lit == AigLit::TRUE {
            // Materialize a constant variable pinned by a unit clause.
            let v = solver.new_var();
            solver.add_clause([Lit::pos(v)]);
            return if lit == AigLit::TRUE {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            };
        }
        let var = self.emit_node(g, lit.node(), solver);
        Lit::new(var, lit.is_inverted())
    }

    /// Returns the solver variable already assigned to a node, if any.
    pub fn lookup(&self, id: NodeId) -> Option<Var> {
        self.map.get(&id).copied()
    }

    /// Pre-binds a node to an existing solver variable (used to stitch
    /// latch outputs across BMC frames).
    pub fn bind(&mut self, id: NodeId, var: Var) {
        self.map.insert(id, var);
    }

    fn emit_node(&mut self, g: &Aig, id: NodeId, solver: &mut Solver) -> Var {
        if let Some(&v) = self.map.get(&id) {
            return v;
        }
        // Iterative DFS to avoid recursion depth limits on deep cones.
        let mut stack = vec![(id, false)];
        while let Some((n, expanded)) = stack.pop() {
            if self.map.contains_key(&n) {
                continue;
            }
            match g.node(n) {
                Node::False => {
                    let v = solver.new_var();
                    solver.add_clause([Lit::neg(v)]);
                    self.map.insert(n, v);
                }
                Node::Input(_) | Node::Latch(_) => {
                    let v = solver.new_var();
                    self.map.insert(n, v);
                }
                Node::And(a, b) => {
                    if expanded {
                        let va = self.map[&a.node()];
                        let vb = self.map[&b.node()];
                        let la = Lit::new(va, a.is_inverted());
                        let lb = Lit::new(vb, b.is_inverted());
                        let v = solver.new_var();
                        let lv = Lit::pos(v);
                        // v <-> la & lb
                        solver.add_clause([!lv, la]);
                        solver.add_clause([!lv, lb]);
                        solver.add_clause([lv, !la, !lb]);
                        self.map.insert(n, v);
                    } else {
                        stack.push((n, true));
                        stack.push((a.node(), false));
                        stack.push((b.node(), false));
                    }
                }
            }
        }
        self.map[&id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitted_and_behaves() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let y = g.and(a, b);

        let mut s = Solver::new();
        let mut em = CnfEmitter::new();
        let ly = em.emit(&g, y, &mut s);
        let la = em.emit(&g, a, &mut s);
        let lb = em.emit(&g, b, &mut s);

        // y & !a is UNSAT.
        assert!(s.solve_with(&[ly, !la]).is_unsat());
        // y & a & b is SAT.
        assert!(s.solve_with(&[ly, la, lb]).is_sat());
        // !y with a=b=1 is UNSAT.
        assert!(s.solve_with(&[!ly, la, lb]).is_unsat());
    }

    #[test]
    fn xor_equivalence_via_sat() {
        // Prove (a^b)^b == a by UNSAT of difference.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let t = g.xor(a, b);
        let back = g.xor(t, b);
        let diff = g.xor(back, a);

        let mut s = Solver::new();
        let mut em = CnfEmitter::new();
        let ld = em.emit(&g, diff, &mut s);
        assert!(s.solve_with(&[ld]).is_unsat());
    }

    #[test]
    fn constants_emit_as_pinned_vars() {
        let g = Aig::new();
        let mut s = Solver::new();
        let mut em = CnfEmitter::new();
        let lt = em.emit(&g, AigLit::TRUE, &mut s);
        let lf = em.emit(&g, AigLit::FALSE, &mut s);
        assert!(s.solve_with(&[lt]).is_sat());
        assert!(s.solve_with(&[lf]).is_unsat());
    }

    #[test]
    fn bind_shares_variables() {
        let mut g = Aig::new();
        let a = g.input();
        let mut s = Solver::new();
        let shared = s.new_var();
        let mut em = CnfEmitter::new();
        em.bind(a.node(), shared);
        let la = em.emit(&g, a, &mut s);
        assert_eq!(la, Lit::pos(shared));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let mut g = Aig::new();
        let mut cur = g.input();
        for _ in 0..50_000 {
            let i = g.input();
            cur = g.and(cur, i);
        }
        let mut s = Solver::new();
        let mut em = CnfEmitter::new();
        let l = em.emit(&g, cur, &mut s);
        assert!(s.solve_with(&[l]).is_sat());
    }
}
