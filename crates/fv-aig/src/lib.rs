//! And-inverter graphs (AIGs) with structural hashing, a word-level
//! bit-vector construction layer, and Tseitin CNF emission.
//!
//! This crate is the circuit representation shared by the bit-blaster in
//! `sv-synth` and the bounded model checker / equivalence prover in
//! `fv-core`. Designs and property monitors are built as AIGs; SAT
//! queries are emitted through [`CnfEmitter`].
//!
//! # Examples
//!
//! ```
//! use fv_aig::{Aig, BitVec};
//!
//! let mut g = Aig::new();
//! let a = BitVec::input(&mut g, 4);
//! let b = BitVec::input(&mut g, 4);
//! let sum = a.add(&mut g, &b);
//! assert_eq!(sum.width(), 4);
//! ```

#![deny(missing_docs)]

mod aig;
mod bitvec;
mod cnf;
mod eval;
mod sim;

pub use aig::{Aig, AigLit, Latch, LatchId, NodeId};
pub use bitvec::BitVec;
pub use cnf::CnfEmitter;
pub use eval::AigEvaluator;
pub use sim::{BitSim, SimSlot, Ternary, TernarySim};
