//! The `design_session` group: compile-once / score-many Design2SVA at
//! Table-5 scale.
//!
//! The paper evaluates up to 10 samples × 8 models against each design,
//! so the same testbench is scored dozens of times. These benches pit
//! the pre-session architecture (re-elaborate the world and open a
//! fresh prover per response) against the `CompiledDesign` +
//! `ProofSession` spine (one elaboration, one shared unrolled formula
//! and solver per design) on identical response streams:
//!
//! - `fresh_per_sample_table5_scale` — the old per-response cost:
//!   `elaborate_with_extras` + `prove_with_stats` for every sample.
//! - `session_per_design_table5_scale` — `compile_design` once per
//!   design, every sample streamed through one
//!   `Design2svaRunner::open_session` session.
//! - `engine_multi_sample_table5_scale` — the full `EvalEngine` path
//!   (inference + sessions + caches) over the same work-list.

use criterion::{criterion_group, criterion_main, Criterion};
use fveval_core::{compile_design, design_task_specs, Design2svaRunner, EvalEngine};
use fveval_data::{fsm_sweep, pipeline_sweep, DesignCase};
use fveval_llm::{profiles, Backend, InferenceConfig, Request, TaskSpec};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

/// Samples per (model, design) — quick-mode Table 5.
const SAMPLES: u32 = 6;

/// Table-5-scale cases: both design categories.
fn cases() -> Vec<DesignCase> {
    let mut cases = pipeline_sweep(4, 0x5E55);
    cases.extend(fsm_sweep(4, 0x5E56));
    cases
}

/// Materializes every model response for one design, in the exact
/// stream order the engine scores them (models in roster order, sample
/// indices ascending).
fn responses_for(case: &DesignCase) -> Vec<String> {
    let task = Arc::new(TaskSpec::Design2sva { case: case.clone() });
    let cfg = InferenceConfig::sampling();
    let models = profiles();
    let mut responses = Vec::new();
    for model in models.iter().filter(|m| m.profile().supports_design2sva) {
        for sample_idx in 0..SAMPLES {
            responses.push(model.generate(&Request {
                task: Arc::clone(&task),
                cfg,
                sample_idx,
            }));
        }
    }
    responses
}

fn bench_design_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("design_session");
    g.sample_size(10).measurement_time(Duration::from_secs(20));

    let cases = cases();
    let streams: Vec<Vec<String>> = cases.iter().map(responses_for).collect();
    let runner = Design2svaRunner::new();

    // Sanity: both architectures agree on every verdict (also keeps
    // the compiler from eliding the work).
    for (case, stream) in cases.iter().zip(&streams) {
        let compiled = compile_design(case).unwrap();
        let mut session = runner.open_session(&compiled);
        for response in stream {
            assert_eq!(
                runner.evaluate_in_session(&mut session, response).0,
                runner.evaluate_response(&compiled, response),
                "session and one-shot verdicts must agree"
            );
        }
    }

    // Pre-session architecture: every sample re-elaborates and opens a
    // fresh prover (evaluate_response_stats compiles nothing, so the
    // per-response `compile_design` reproduces the old
    // elaborate-per-response cost exactly).
    g.bench_function("fresh_per_sample_table5_scale", |b| {
        b.iter(|| {
            let mut proven = 0usize;
            for (case, stream) in cases.iter().zip(&streams) {
                for response in stream {
                    let compiled = compile_design(case).unwrap();
                    if runner.evaluate_response(&compiled, response).func {
                        proven += 1;
                    }
                }
            }
            black_box(proven)
        })
    });

    // Compiled-design sessions: one elaboration + one proof context per
    // design, shared by the whole response stream.
    g.bench_function("session_per_design_table5_scale", |b| {
        b.iter(|| {
            let mut proven = 0usize;
            for (case, stream) in cases.iter().zip(&streams) {
                let compiled = compile_design(case).unwrap();
                let mut session = runner.open_session(&compiled);
                for response in stream {
                    if runner.evaluate_in_session(&mut session, response).0.func {
                        proven += 1;
                    }
                }
            }
            black_box(proven)
        })
    });

    // The full engine path over the same work-list (inference included;
    // a fresh engine per iteration so the verdict cache cannot hide the
    // scoring cost).
    let tasks = design_task_specs(&cases);
    let models = profiles();
    let backends: Vec<&dyn Backend> = models
        .iter()
        .filter(|m| m.profile().supports_design2sva)
        .map(|m| m as &dyn Backend)
        .collect();
    let cfg = InferenceConfig::sampling();
    g.bench_function("engine_multi_sample_table5_scale", |b| {
        b.iter(|| {
            let engine = EvalEngine::with_jobs(1);
            black_box(engine.run_matrix(&backends, &tasks, &cfg, SAMPLES))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_design_session);
criterion_main!(benches);
