//! Assertion-to-assertion formal equivalence — the reproduction of the
//! paper's custom Jasper equivalence-checking function.
//!
//! The check is layered for speed. Both assertions are compiled over
//! one shared symbolic trace into one structurally-hashed AIG, so the
//! two implication directions (`ref ∧ ¬cand`, `cand ∧ ¬ref`) share
//! every common subterm — syntactically equal assertions collapse to
//! the *same* AIG literal and both directions fold to constant false
//! before any solver exists. Directions that survive folding are
//! attacked with 64-way random simulation (a witness pattern decides a
//! direction SAT without a SAT call); only the remainder goes to the
//! CDCL solver, and both directions reuse a single [`Solver`] via
//! [`Solver::solve_with`] assumptions. [`ProverStats`] reports which
//! layer decided what.

use crate::cex::CexValue;
use crate::env::FreeTraceEnv;
use crate::error::EncodeError;
use crate::monitor::{encode_assertion, horizon_for};
use crate::rng::splitmix64;
use crate::stats::ProverStats;
use crate::table::SignalTable;
use fv_aig::{Aig, AigLit, BitSim, CnfEmitter};
use fv_sat::Solver;
use sv_ast::Assertion;

/// Random-simulation effort: rounds of 64 patterns each before falling
/// back to SAT.
const SIM_ROUNDS: usize = 4;

/// Configuration for the bounded equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivConfig {
    /// Extra cycles granted beyond the assertions' bounded depth when
    /// unbounded operators are present.
    pub slack: u32,
    /// Hard cap on the trace horizon.
    pub max_horizon: u32,
}

impl Default for EquivConfig {
    fn default() -> EquivConfig {
        EquivConfig {
            slack: 4,
            max_horizon: 64,
        }
    }
}

/// The four-way verdict of the equivalence prover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Equivalence {
    /// Logically equivalent on all traces (full functional match).
    Equivalent,
    /// The reference implies the candidate (candidate is weaker).
    RefImpliesCand,
    /// The candidate implies the reference (candidate is stronger).
    CandImpliesRef,
    /// Neither direction holds.
    Inequivalent,
}

impl Equivalence {
    /// The paper's strict *functional* metric.
    pub fn is_equivalent(self) -> bool {
        self == Equivalence::Equivalent
    }

    /// The paper's relaxed *partial functional* metric: full equivalence
    /// or a one-way implication.
    pub fn is_partial(self) -> bool {
        !matches!(self, Equivalence::Inequivalent)
    }
}

/// A distinguishing trace: per-cycle signal valuations where the two
/// assertions disagree.
///
/// # Trace format
///
/// One [`CexValue`] per `(signal, cycle)` observation, sorted by cycle
/// then signal name; negative cycles are the sampled pre-history used
/// by `$past`/`$rose`. `Display` renders one line per observation with
/// values as SystemVerilog sized literals at each signal's declared
/// width:
///
/// ```text
///   cycle  -1: rd_pop = 1'b0
///   cycle   0: wr_push = 1'b1
///   cycle   1: fifo_cnt = 8'h03
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCex {
    /// The observations, sorted by `(cycle, signal)`.
    pub values: Vec<CexValue>,
}

impl std::fmt::Display for TraceCex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        crate::cex::fmt_trace(&self.values, f)
    }
}

/// Outcome of [`check_equivalence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivOutcome {
    /// The verdict.
    pub verdict: Equivalence,
    /// Horizon (trace length in cycles) used for the check.
    pub horizon: u32,
    /// A distinguishing trace when the verdict is not `Equivalent`
    /// (a trace where exactly one assertion holds).
    pub cex: Option<TraceCex>,
    /// How the two implication queries were discharged.
    pub stats: ProverStats,
}

/// How one implication direction was decided.
enum DirVerdict {
    /// The difference is satisfiable: the implication does NOT hold.
    Sat(TraceCex),
    /// The difference is unsatisfiable: the implication holds.
    Unsat,
}

/// Proves bounded-trace equivalence between a `reference` and a
/// `candidate` assertion over free signals declared in `table`.
///
/// Mirrors the paper's evaluation exactly: the queries `ref ∧ ¬cand`
/// and `cand ∧ ¬ref` are decided (by folding, simulation, or SAT —
/// see the module docs); both UNSAT means [`Equivalence::Equivalent`],
/// one UNSAT means one-way implication (the *partial* metric), both SAT
/// means [`Equivalence::Inequivalent`].
///
/// # Errors
///
/// [`EncodeError`] when either assertion references unknown signals or
/// unsupported constructs — the harness scores these as tool/elaboration
/// failures, like Jasper would.
///
/// # Examples
///
/// ```
/// use fv_core::{check_equivalence, EquivConfig, Equivalence, SignalTable};
/// use sv_parser::parse_assertion_str;
///
/// let table: SignalTable = [("a", 1u32), ("b", 1)].into_iter().collect();
/// let r = parse_assertion_str("assert property (@(posedge clk) a |-> ##1 b);").unwrap();
/// let c = parse_assertion_str("assert property (@(posedge clk) a |=> b);").unwrap();
/// let out = check_equivalence(&r, &c, &table, EquivConfig::default()).unwrap();
/// assert_eq!(out.verdict, Equivalence::Equivalent);
/// ```
pub fn check_equivalence(
    reference: &Assertion,
    candidate: &Assertion,
    table: &SignalTable,
    cfg: EquivConfig,
) -> Result<EquivOutcome, EncodeError> {
    EquivSession::open(reference.clone(), table, cfg).check(candidate)
}

/// A long-lived equivalence context for one reference assertion: the
/// reference is compiled *once* onto a shared symbolic trace, and a
/// stream of candidate assertions is checked against it on the same
/// structurally-hashed graph, simulators, and SAT solver.
///
/// This is the NL2SVA counterpart of [`crate::ProofSession`]: when many
/// samples and models answer the same case, the reference encoding,
/// the trace slots it allocated, and the solver's learned clauses all
/// amortize across every candidate. Identical candidate texts (greedy
/// decoding across models often repeats them) strash to the same
/// literal, so their difference cones fold to constant false with zero
/// solver work.
///
/// Because the monitor horizon depends on the candidate, reference
/// encodings are cached *per horizon*; serving a cached one counts as a
/// [`ProverStats::unroll_reuse_hits`]. Verdicts are path-independent:
/// a session returns the same [`Equivalence`] for a candidate as a
/// fresh [`check_equivalence`] call.
///
/// # Examples
///
/// ```
/// use fv_core::{EquivConfig, EquivSession, Equivalence, SignalTable};
/// use sv_parser::parse_assertion_str;
///
/// let table: SignalTable = [("a", 1u32), ("b", 1)].into_iter().collect();
/// let r = parse_assertion_str("assert property (@(posedge clk) a |-> ##1 b);").unwrap();
/// let mut session = EquivSession::open(r, &table, EquivConfig::default());
/// let c = parse_assertion_str("assert property (@(posedge clk) a |=> b);").unwrap();
/// assert_eq!(
///     session.check(&c).unwrap().verdict,
///     Equivalence::Equivalent
/// );
/// let stats = session.stats();
/// assert_eq!((stats.sessions_opened, stats.session_checks), (1, 1));
/// ```
pub struct EquivSession<'a> {
    reference: Assertion,
    cfg: EquivConfig,
    g: Aig,
    env: FreeTraceEnv<'a>,
    /// Reference encodings by horizon (candidates set the horizon),
    /// each with the trace slots the encoding read — restored as
    /// "touched" on a cache hit so counterexamples still carry the
    /// reference's signals.
    ref_holds: std::collections::HashMap<u32, (AigLit, Vec<usize>)>,
    solver: Solver,
    em: CnfEmitter,
    solver_used: bool,
    /// `SIM_ROUNDS` persistent 64-way simulators, each with its own
    /// stream state; they extend lazily over nodes new since their
    /// last use.
    sims: Vec<(BitSim, u64)>,
    /// Cumulative counters (seeded with `sessions_opened = 1`).
    stats: ProverStats,
}

impl<'a> EquivSession<'a> {
    /// Opens an equivalence context for `reference` over the signal
    /// scope `table`. The reference is *not* validated here — its first
    /// encoding happens on the first [`EquivSession::check`], so an
    /// unknown signal in the reference surfaces there, exactly as in
    /// [`check_equivalence`].
    pub fn open(
        reference: Assertion,
        table: &'a SignalTable,
        cfg: EquivConfig,
    ) -> EquivSession<'a> {
        let _span = fv_trace::span!("equiv.open");
        let mut seed = 0x5EED_0F0E_D1FF_u64;
        let sims = (0..SIM_ROUNDS)
            .map(|_| (BitSim::new(), splitmix64(&mut seed)))
            .collect();
        EquivSession {
            reference,
            cfg,
            g: Aig::new(),
            env: FreeTraceEnv::new(table),
            ref_holds: std::collections::HashMap::new(),
            solver: Solver::new(),
            em: CnfEmitter::new(),
            solver_used: false,
            sims,
            // `sessions_opened` is charged to the first check.
            stats: ProverStats::default(),
        }
    }

    /// The reference assertion this session checks candidates against.
    pub fn reference(&self) -> &Assertion {
        &self.reference
    }

    /// Cumulative counters over the session's lifetime. A session that
    /// checked at least one candidate reports `sessions_opened = 1`
    /// (the open is charged to the first check, so aggregating
    /// per-check deltas yields the same totals).
    pub fn stats(&self) -> ProverStats {
        self.stats
    }

    /// Checks one candidate against the reference on the shared trace.
    /// The outcome's [`EquivOutcome::stats`] holds the counter *delta*
    /// this check added (the first check's delta carries the session's
    /// `sessions_opened`).
    ///
    /// # Errors
    ///
    /// [`EncodeError`] as for [`check_equivalence`]; the session stays
    /// usable for further candidates.
    pub fn check(&mut self, candidate: &Assertion) -> Result<EquivOutcome, EncodeError> {
        let _span = fv_trace::span!("equiv.check");
        let before = self.stats;
        // The open is charged to the first check so that summing
        // per-check deltas reproduces the cumulative counters.
        self.stats.sessions_opened = 1;
        self.stats.session_checks += 1;
        // Different clocking events cannot be reconciled by the bounded
        // single-clock encoding; treat as inequivalent outright.
        if self.reference.clock != candidate.clock {
            return Ok(EquivOutcome {
                verdict: Equivalence::Inequivalent,
                horizon: 0,
                cex: None,
                stats: self.stats.delta_since(&before),
            });
        }
        let horizon = horizon_for(&self.reference, Some(candidate), self.cfg.slack);
        if horizon > self.cfg.max_horizon {
            return Err(EncodeError::HorizonExceeded {
                needed: horizon,
                max: self.cfg.max_horizon,
            });
        }
        self.env.reset_touched();
        let ref_holds = match self.ref_holds.get(&horizon) {
            Some((h, slots)) => {
                // The reference monitor at this horizon is already on
                // the graph: compile-once pays off. Its trace slots
                // still belong to this check's counterexamples.
                self.stats.unroll_reuse_hits += 1;
                self.env.mark_touched(slots);
                *h
            }
            None => {
                let h = encode_assertion(&mut self.g, &self.reference, horizon, &mut self.env)?;
                self.ref_holds
                    .insert(horizon, (h, self.env.touched_indices()));
                h
            }
        };
        let cand_holds = encode_assertion(&mut self.g, candidate, horizon, &mut self.env)?;

        // The two difference cones, built on the shared strashed graph.
        let d_rc = self.g.and(ref_holds, !cand_holds); // SAT ⇒ ref does NOT imply cand
        let d_cr = self.g.and(cand_holds, !ref_holds); // SAT ⇒ cand does NOT imply ref

        let mut rc: Option<DirVerdict> = None;
        let mut cr: Option<DirVerdict> = None;

        // Layer 1: structural hashing + constant folding. Equal
        // encodings collapse to the same literal and both differences
        // fold to FALSE.
        if d_rc == AigLit::FALSE {
            self.stats.ternary_kills += 1;
            rc = Some(DirVerdict::Unsat);
        }
        if d_cr == AigLit::FALSE {
            self.stats.ternary_kills += 1;
            cr = Some(DirVerdict::Unsat);
        }

        // Layer 2: random simulation. A non-zero word is a concrete
        // distinguishing trace — the direction is SAT with no solver.
        // (The free-trace encoding is purely combinational; a latch
        // node would make randomized latch slots a fabricated witness.)
        debug_assert_eq!(
            self.g.num_latches(),
            0,
            "simulation witnesses assume a latch-free monitor encoding"
        );
        for (sim, rng) in &mut self.sims {
            if rc.is_some() && cr.is_some() {
                break;
            }
            sim.extend(&self.g, &mut |_| splitmix64(rng));
            if rc.is_none() {
                let w = sim.lit(d_rc);
                if w != 0 {
                    self.stats.sim_kills += 1;
                    rc = Some(DirVerdict::Sat(sim_cex(&self.env, sim, w.trailing_zeros())));
                }
            }
            if cr.is_none() {
                let w = sim.lit(d_cr);
                if w != 0 {
                    self.stats.sim_kills += 1;
                    cr = Some(DirVerdict::Sat(sim_cex(&self.env, sim, w.trailing_zeros())));
                }
            }
        }

        // Layer 3: SAT, one shared solver for whatever remains across
        // the whole session. Later candidates reuse everything earlier
        // queries taught the solver.
        if rc.is_none() || cr.is_none() {
            let lr = self.em.emit(&self.g, ref_holds, &mut self.solver);
            let lc = self.em.emit(&self.g, cand_holds, &mut self.solver);
            for (slot, assumptions, diff) in
                [(&mut rc, [lr, !lc], d_rc), (&mut cr, [lc, !lr], d_cr)]
            {
                if slot.is_some() {
                    continue;
                }
                self.stats.sat_calls += 1;
                if self.solver_used {
                    self.stats.solver_reuse_hits += 1;
                }
                self.solver_used = true;
                *slot = Some(if self.solver.solve_with(&assumptions).is_sat() {
                    let cex = sat_cex(&self.env, &self.em, &self.solver);
                    debug_assert!(
                        replay_trace_cex(&self.g, &self.env, &cex, diff),
                        "SAT model must replay to a real distinguishing trace"
                    );
                    DirVerdict::Sat(cex)
                } else {
                    DirVerdict::Unsat
                });
            }
        }

        let (rc, cr) = (
            rc.expect("direction decided"),
            cr.expect("direction decided"),
        );
        let verdict = match (&rc, &cr) {
            (DirVerdict::Unsat, DirVerdict::Unsat) => Equivalence::Equivalent,
            // UNSAT(ref ∧ ¬cand) proves ref ⇒ cand.
            (DirVerdict::Unsat, DirVerdict::Sat(_)) => Equivalence::RefImpliesCand,
            (DirVerdict::Sat(_), DirVerdict::Unsat) => Equivalence::CandImpliesRef,
            (DirVerdict::Sat(_), DirVerdict::Sat(_)) => Equivalence::Inequivalent,
        };
        let cex = match (rc, cr) {
            (DirVerdict::Sat(c), _) | (DirVerdict::Unsat, DirVerdict::Sat(c)) => Some(c),
            _ => None,
        };
        Ok(EquivOutcome {
            verdict,
            horizon,
            cex,
            stats: self.stats.delta_since(&before),
        })
    }
}

/// Trace slots of the *current* check — on a shared session this trims
/// a counterexample to the signals the reference + candidate pair
/// actually reads (a fresh single-check environment has no others).
fn log_entries<'e>(
    env: &'e FreeTraceEnv<'_>,
) -> impl Iterator<Item = (&'e str, i32, &'e fv_aig::BitVec)> + 'e {
    env.touched_log().map(|(n, c, bv)| (n.as_str(), *c, bv))
}

/// Decodes one simulation pattern (bit position `pattern`) into a trace.
fn sim_cex(env: &FreeTraceEnv, sim: &BitSim, pattern: u32) -> TraceCex {
    TraceCex {
        values: crate::cex::decode_trace(log_entries(env), |bit| sim.lit_bit(bit, pattern)),
    }
}

/// Decodes the solver model into a trace.
fn sat_cex(env: &FreeTraceEnv, em: &CnfEmitter, solver: &Solver) -> TraceCex {
    TraceCex {
        values: crate::cex::decode_trace(
            log_entries(env),
            crate::cex::solver_bit_reader(em, solver),
        ),
    }
}

/// Replays an extracted trace through the concrete AIG evaluator and
/// confirms it really sets `diff` — the soundness check guarding the
/// SAT-model decoding.
fn replay_trace_cex(g: &Aig, env: &FreeTraceEnv, cex: &TraceCex, diff: AigLit) -> bool {
    let mut inputs = vec![false; g.num_inputs()];
    for (name, cycle, bv) in env.touched_log() {
        let Some(v) = cex
            .values
            .iter()
            .find(|c| c.signal == *name && c.cycle == *cycle)
            .map(|c| c.value)
        else {
            return false;
        };
        for (i, &bit) in bv.bits().iter().enumerate() {
            if let Some(idx) = g.input_index(bit.node()) {
                inputs[idx as usize] = ((v >> i) & 1 == 1) ^ bit.is_inverted();
            }
        }
    }
    let ev = fv_aig::AigEvaluator::combinational(g, &inputs);
    ev.lit(diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_parser::parse_assertion_str;

    fn table() -> SignalTable {
        let mut t: SignalTable = [
            ("a", 1u32),
            ("b", 1),
            ("c", 1),
            ("tb_reset", 1),
            ("wr_push", 1),
            ("rd_pop", 1),
            ("busy", 1),
            ("hold", 1),
            ("cont_gnt", 1),
            ("sig_D", 1),
            ("sig_F", 1),
            ("sig_G", 1),
            ("sig_H", 4),
            ("sig_J", 1),
        ]
        .into_iter()
        .collect();
        t.insert_const("S0", 2, 0);
        t
    }

    fn check(reference: &str, candidate: &str) -> Equivalence {
        let r = parse_assertion_str(reference).unwrap();
        let c = parse_assertion_str(candidate).unwrap();
        check_equivalence(&r, &c, &table(), EquivConfig::default())
            .unwrap()
            .verdict
    }

    #[test]
    fn identical_assertions_are_equivalent() {
        let src = "assert property (@(posedge clk) disable iff (tb_reset) \
                   wr_push |-> strong(##[0:$] rd_pop));";
        assert_eq!(check(src, src), Equivalence::Equivalent);
    }

    #[test]
    fn identical_assertions_fold_without_sat() {
        // Structural hashing maps both encodings to the same literal;
        // no SAT call and no simulation round is needed.
        let src = "assert property (@(posedge clk) a |-> ##2 b);";
        let a = parse_assertion_str(src).unwrap();
        let out = check_equivalence(&a, &a, &table(), EquivConfig::default()).unwrap();
        assert_eq!(out.verdict, Equivalence::Equivalent);
        assert_eq!(out.stats.sat_calls, 0, "{:?}", out.stats);
        assert_eq!(out.stats.ternary_kills, 2);
    }

    #[test]
    fn inequivalent_pair_is_usually_sim_killed() {
        // A plainly violable difference is found by random patterns
        // without the solver.
        let r = parse_assertion_str("assert property (@(posedge clk) a);").unwrap();
        let c = parse_assertion_str("assert property (@(posedge clk) b);").unwrap();
        let out = check_equivalence(&r, &c, &table(), EquivConfig::default()).unwrap();
        assert_eq!(out.verdict, Equivalence::Inequivalent);
        assert_eq!(out.stats.sim_kills, 2, "{:?}", out.stats);
        assert_eq!(out.stats.sat_calls, 0);
    }

    #[test]
    fn one_way_implication_reuses_one_solver() {
        // The UNSAT direction must go to SAT; the SAT direction is
        // sim-killed first, so exactly one solver call happens.
        let out = {
            let r = parse_assertion_str("assert property (@(posedge clk) a |-> b);").unwrap();
            let c =
                parse_assertion_str("assert property (@(posedge clk) a |-> (b && c));").unwrap();
            check_equivalence(&r, &c, &table(), EquivConfig::default()).unwrap()
        };
        assert_eq!(out.verdict, Equivalence::CandImpliesRef);
        assert!(out.stats.sat_calls >= 1);
        assert!(out.stats.sim_kills >= 1, "{:?}", out.stats);
    }

    #[test]
    fn semantically_equal_spellings_are_equivalent() {
        assert_eq!(
            check(
                "assert property (@(posedge clk) (a && b) !== 1'b1);",
                "assert property (@(posedge clk) !(a && b));"
            ),
            Equivalence::Equivalent
        );
        assert_eq!(
            check(
                "assert property (@(posedge clk) a |=> b);",
                "assert property (@(posedge clk) a |-> ##1 b);"
            ),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn paper_fifo_partial_example() {
        // Figure 7: reference strong(##[0:$]) vs candidate weak ##[1:$]:
        // the reference implies the (weak, hence unfalsifiable) candidate.
        let verdict = check(
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             wr_push |-> strong(##[0:$] rd_pop));",
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             wr_push |-> ##[1:$] rd_pop);",
        );
        assert_eq!(verdict, Equivalence::RefImpliesCand);
        assert!(verdict.is_partial());
        assert!(!verdict.is_equivalent());
    }

    #[test]
    fn paper_arbiter_partial_example() {
        // Figure 7: $onehot0 reference vs "not all three" candidate.
        let verdict = check(
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             !$onehot0({hold,busy,cont_gnt}) !== 1'b1);",
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             !(busy && hold && cont_gnt));",
        );
        assert_eq!(verdict, Equivalence::RefImpliesCand);
    }

    #[test]
    fn paper_machine_countones_example() {
        // Figure 8: reference conjunction vs candidate implication form.
        let verdict = check(
            "assert property(@(posedge clk) ((sig_D || ^sig_H) && sig_F));",
            "assert property (@(posedge clk) \
             (sig_D || ($countones(sig_H) % 2 == 1)) |-> sig_F);",
        );
        assert_eq!(verdict, Equivalence::RefImpliesCand);
        // And the exact rewrite is fully equivalent.
        assert_eq!(
            check(
                "assert property(@(posedge clk) ((sig_D || ^sig_H) && sig_F));",
                "assert property(@(posedge clk) \
                 ((sig_D || ($countones(sig_H) % 2 == 1)) && sig_F));"
            ),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn inequivalent_pair_with_cex() {
        let r = parse_assertion_str("assert property (@(posedge clk) a |-> ##2 b);").unwrap();
        let c = parse_assertion_str("assert property (@(posedge clk) a |-> ##1 b);").unwrap();
        let out = check_equivalence(&r, &c, &table(), EquivConfig::default()).unwrap();
        assert_eq!(out.verdict, Equivalence::Inequivalent);
        let cex = out.cex.expect("distinguishing trace expected");
        // Width-aware rendering: every 1-bit signal prints as 1'b0/1'b1.
        let rendered = cex.to_string();
        assert!(
            rendered.contains("1'b"),
            "sized-literal rendering: {rendered}"
        );
    }

    #[test]
    fn stronger_candidate_detected() {
        // Candidate `a |-> b && c` is stronger than `a |-> b`.
        assert_eq!(
            check(
                "assert property (@(posedge clk) a |-> b);",
                "assert property (@(posedge clk) a |-> (b && c));"
            ),
            Equivalence::CandImpliesRef
        );
    }

    #[test]
    fn dropping_disable_iff_is_detected() {
        // With free tb_reset, dropping the disable changes semantics:
        // the undisabled assertion is stronger.
        let verdict = check(
            "assert property (@(posedge clk) disable iff (tb_reset) a |-> ##1 b);",
            "assert property (@(posedge clk) a |-> ##1 b);",
        );
        assert_eq!(verdict, Equivalence::CandImpliesRef);
    }

    #[test]
    fn unknown_signal_is_encode_error() {
        let r = parse_assertion_str("assert property (@(posedge clk) a);").unwrap();
        let c = parse_assertion_str("assert property (@(posedge clk) ghost);").unwrap();
        let err = check_equivalence(&r, &c, &table(), EquivConfig::default()).unwrap_err();
        assert_eq!(err, EncodeError::UnknownSignal("ghost".into()));
    }

    #[test]
    fn different_clocks_are_inequivalent() {
        let verdict = check(
            "assert property (@(posedge clk) a);",
            "assert property (@(negedge clk) a);",
        );
        assert_eq!(verdict, Equivalence::Inequivalent);
    }

    #[test]
    fn symmetry_of_verdicts() {
        // Swapping arguments mirrors the implication direction.
        let r = "assert property (@(posedge clk) a |-> b);";
        let c = "assert property (@(posedge clk) a |-> (b && c));";
        assert_eq!(check(r, c), Equivalence::CandImpliesRef);
        assert_eq!(check(c, r), Equivalence::RefImpliesCand);
    }

    #[test]
    fn session_stream_matches_fresh_checks() {
        // One reference, many candidates: the session must return the
        // same verdict as a fresh check_equivalence per candidate.
        let reference =
            parse_assertion_str("assert property (@(posedge clk) a |-> ##1 b);").unwrap();
        let candidates = [
            "assert property (@(posedge clk) a |=> b);",
            "assert property (@(posedge clk) a |-> ##2 b);",
            "assert property (@(posedge clk) a |-> (b && c));",
            "assert property (@(posedge clk) c);",
            "assert property (@(posedge clk) a |-> ##1 b);",
        ];
        let t = table();
        let mut session = EquivSession::open(reference.clone(), &t, EquivConfig::default());
        for src in candidates {
            let c = parse_assertion_str(src).unwrap();
            let fresh = check_equivalence(&reference, &c, &t, EquivConfig::default()).unwrap();
            let via = session.check(&c).unwrap();
            assert_eq!(fresh.verdict, via.verdict, "{src}");
            assert_eq!(fresh.horizon, via.horizon, "{src}");
        }
        let stats = session.stats();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.session_checks, candidates.len() as u64);
    }

    #[test]
    fn session_reuses_reference_encoding_per_horizon() {
        let reference =
            parse_assertion_str("assert property (@(posedge clk) a |-> ##1 b);").unwrap();
        let t = table();
        let mut session = EquivSession::open(reference, &t, EquivConfig::default());
        // Three same-depth candidates share one horizon: the reference
        // compiles once and is served from cache twice.
        for src in [
            "assert property (@(posedge clk) a |=> b);",
            "assert property (@(posedge clk) a |-> ##1 c);",
            "assert property (@(posedge clk) b |-> ##1 a);",
        ] {
            let c = parse_assertion_str(src).unwrap();
            session.check(&c).unwrap();
        }
        let stats = session.stats();
        assert_eq!(
            stats.unroll_reuse_hits, 2,
            "reference encoding served from cache: {stats:?}"
        );
    }

    #[test]
    fn session_survives_encode_error_and_clock_mismatch() {
        let reference = parse_assertion_str("assert property (@(posedge clk) a);").unwrap();
        let t = table();
        let mut session = EquivSession::open(reference, &t, EquivConfig::default());
        let ghost = parse_assertion_str("assert property (@(posedge clk) ghost);").unwrap();
        assert_eq!(
            session.check(&ghost).unwrap_err(),
            EncodeError::UnknownSignal("ghost".into())
        );
        let negedge = parse_assertion_str("assert property (@(negedge clk) a);").unwrap();
        assert_eq!(
            session.check(&negedge).unwrap().verdict,
            Equivalence::Inequivalent
        );
        let same = parse_assertion_str("assert property (@(posedge clk) a);").unwrap();
        assert_eq!(
            session.check(&same).unwrap().verdict,
            Equivalence::Equivalent
        );
        assert_eq!(session.stats().session_checks, 3);
    }

    #[test]
    fn wide_signal_cex_renders_at_declared_width() {
        // A 4-bit signal in the trace must render as `4'b....`.
        let r = parse_assertion_str("assert property (@(posedge clk) sig_H == 4'd3);").unwrap();
        let c = parse_assertion_str("assert property (@(posedge clk) sig_H == 4'd5);").unwrap();
        let out = check_equivalence(&r, &c, &table(), EquivConfig::default()).unwrap();
        assert_eq!(out.verdict, Equivalence::Inequivalent);
        let cex = out.cex.unwrap();
        let h = cex
            .values
            .iter()
            .find(|v| v.signal == "sig_H")
            .expect("sig_H observed");
        assert_eq!(h.width, 4);
        assert!(h.render_value().starts_with("4'b"), "{}", h.render_value());
    }
}
