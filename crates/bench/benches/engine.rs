//! Substrate micro-benchmarks: SAT solving, parsing, assertion
//! equivalence, and BMC/k-induction scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fv_core::{check_equivalence, prove, EquivConfig, ProveConfig, SignalTable};
use fveval_bench::pigeonhole;
use fveval_data::{generate_pipeline, testbenches, PipelineParams};
use std::hint::black_box;
use std::time::Duration;
use sv_parser::{parse_assertion_str, parse_source};
use sv_synth::elaborate;

fn bench_sat(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat");
    g.sample_size(10).measurement_time(Duration::from_secs(6));
    for n in [5usize, 6, 7] {
        g.bench_with_input(BenchmarkId::new("pigeonhole_unsat", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                black_box(s.solve())
            })
        });
    }
    g.finish();
}

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("parser");
    g.sample_size(30);
    let fifo = testbenches()
        .into_iter()
        .find(|t| t.name == "fifo_1r1w")
        .unwrap();
    g.bench_function("parse_fifo_testbench", |b| {
        b.iter(|| black_box(parse_source(fifo.source).unwrap()))
    });
    let assertion = "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
                     (a && b) |-> strong(##[0:$] (c || $onehot0({a, b, c}))));";
    // Pre-extend the scope so parsing is the only cost measured.
    g.bench_function("parse_assertion", |b| {
        b.iter(|| black_box(parse_assertion_str(assertion).unwrap()))
    });
    g.bench_function("elaborate_fifo_testbench", |b| {
        let file = parse_source(fifo.source).unwrap();
        b.iter(|| black_box(elaborate(&file, fifo.top).unwrap()))
    });
    g.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut g = c.benchmark_group("equivalence");
    g.sample_size(20);
    let table: SignalTable = [
        ("wr_push", 1u32),
        ("rd_pop", 1),
        ("tb_reset", 1),
        ("sig_H", 4),
        ("sig_F", 1),
    ]
    .into_iter()
    .collect();
    let cases = [
        (
            "bounded_pair",
            "assert property (@(posedge clk) wr_push |-> ##2 rd_pop);",
            "assert property (@(posedge clk) wr_push |=> ##1 rd_pop);",
        ),
        (
            "unbounded_pair",
            "assert property (@(posedge clk) disable iff (tb_reset) \
             wr_push |-> strong(##[0:$] rd_pop));",
            "assert property (@(posedge clk) disable iff (tb_reset) \
             wr_push |-> ##[1:$] rd_pop);",
        ),
        (
            "countones_pair",
            "assert property (@(posedge clk) (^sig_H) && sig_F);",
            "assert property (@(posedge clk) ($countones(sig_H) % 2 == 1) && sig_F);",
        ),
    ];
    for (name, r, cand) in cases {
        let reference = parse_assertion_str(r).unwrap();
        let candidate = parse_assertion_str(cand).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    check_equivalence(&reference, &candidate, &table, EquivConfig::default())
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_model_checking(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_checking");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for depth in [2u32, 4, 6] {
        let case = generate_pipeline(&PipelineParams {
            n_units: 2,
            unit_depths: vec![depth / 2, depth - depth / 2],
            width: 16,
            expr_ops: 3,
            seed: 77,
        });
        let mut src = case.design_source.clone();
        src.push('\n');
        src.push_str(&case.tb_source);
        let file = parse_source(&src).unwrap();
        let design = file.module(&case.top).unwrap();
        let conns: Vec<(String, sv_ast::Expr)> = design
            .port_order
            .iter()
            .map(|p| (p.clone(), sv_ast::Expr::ident(p.clone())))
            .collect();
        let inst = sv_ast::ModuleItem::Instance(sv_ast::Instance {
            module: case.top.clone(),
            name: "dut".into(),
            params: vec![],
            conns,
        });
        let netlist =
            sv_synth::elaborate_with_extras(&file, &case.tb_top, &[inst]).unwrap();
        let assertion = parse_assertion_str(&case.golden[0]).unwrap();
        g.bench_with_input(
            BenchmarkId::new("prove_pipeline_depth", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    black_box(
                        prove(&netlist, &assertion, &[], ProveConfig::default()).unwrap(),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sat,
    bench_parser,
    bench_equivalence,
    bench_model_checking
);
criterion_main!(benches);
