//! The CDCL search loop.

use crate::clause::{ClauseDb, ClauseRef};
use crate::heap::VarHeap;
use crate::luby::luby;
use crate::{LBool, Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; query it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The solve was abandoned before reaching an answer: either the
    /// cooperative interrupt token ([`Solver::set_interrupt`]) was
    /// raised, or the per-call conflict budget
    /// ([`Solver::set_conflict_budget`]) ran out. The solver backtracks
    /// to the root level and stays fully usable — clause database and
    /// trail are intact, and the next query behaves as if this one had
    /// never been issued.
    Interrupted,
}

impl SolveResult {
    /// `true` for [`SolveResult::Sat`].
    #[inline]
    pub fn is_sat(self) -> bool {
        self == SolveResult::Sat
    }

    /// `true` for [`SolveResult::Unsat`].
    #[inline]
    pub fn is_unsat(self) -> bool {
        self == SolveResult::Unsat
    }

    /// `true` for [`SolveResult::Interrupted`].
    #[inline]
    pub fn is_interrupted(self) -> bool {
        self == SolveResult::Interrupted
    }
}

/// Counters describing the work a solve performed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses currently in the database.
    pub learnt: u64,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: ClauseRef,
    /// The *other* watched literal (blocking literal optimization).
    blocker: Lit,
}

#[derive(Debug, Clone, Copy)]
struct VarData {
    reason: ClauseRef,
    level: u32,
}

/// A CDCL SAT solver over clauses added incrementally.
///
/// Variables are created with [`Solver::new_var`]; clauses with
/// [`Solver::add_clause`]. [`Solver::solve_with`] supports assumption
/// literals, which the BMC engine uses for incremental queries.
///
/// # Examples
///
/// ```
/// use fv_sat::{Solver, Lit};
/// let mut s = Solver::new();
/// let (a, b) = (s.new_var(), s.new_var());
/// s.add_clause([Lit::pos(a), Lit::pos(b)]);
/// s.add_clause([Lit::neg(a), Lit::pos(b)]);
/// assert!(s.solve().is_sat());
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug)]
pub struct Solver {
    db: ClauseDb,
    /// Current assignment per variable.
    assigns: Vec<LBool>,
    /// Saved phase per variable.
    phase: Vec<bool>,
    var_data: Vec<VarData>,
    /// Watch lists indexed by literal index.
    watches: Vec<Vec<Watcher>>,
    /// Assignment trail.
    trail: Vec<Lit>,
    /// Indices into `trail` where each decision level starts.
    trail_lim: Vec<usize>,
    /// Head of the propagation queue (index into trail).
    qhead: usize,
    /// VSIDS activities.
    activity: Vec<f64>,
    var_inc: f64,
    order: VarHeap,
    cla_inc: f64,
    /// Scratch: seen markers for conflict analysis.
    seen: Vec<bool>,
    /// `true` once an empty clause was added at level 0.
    unsat_at_root: bool,
    stats: SolverStats,
    max_learnt: f64,
    /// Cooperative cancellation token, polled once per conflict.
    interrupt: Option<Arc<AtomicBool>>,
    /// Per-call conflict budget (conflicts allowed within one solve).
    conflict_budget: Option<u64>,
}

const VAR_DECAY: f64 = 0.95;
const CLA_DECAY: f64 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            db: ClauseDb::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            var_data: Vec::new(),
            watches: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarHeap::new(),
            cla_inc: 1.0,
            seen: Vec::new(),
            unsat_at_root: false,
            stats: SolverStats::default(),
            max_learnt: 1000.0,
            interrupt: None,
            conflict_budget: None,
        }
    }

    /// Installs (or clears) a cooperative cancellation token.
    ///
    /// The search loop polls the token once per conflict; when it reads
    /// `true`, the current [`Solver::solve_with`] call backtracks to the
    /// root level and returns [`SolveResult::Interrupted`]. The token is
    /// *not* cleared by the solver — the installer owns its lifecycle —
    /// so every subsequent solve also returns `Interrupted` until the
    /// token is lowered or removed.
    pub fn set_interrupt(&mut self, token: Option<Arc<AtomicBool>>) {
        self.interrupt = token;
    }

    /// Installs (or clears) a per-call conflict budget.
    ///
    /// Each [`Solver::solve_with`] call that analyzes more than `budget`
    /// conflicts abandons the query and returns
    /// [`SolveResult::Interrupted`]. The budget applies per call, not
    /// cumulatively, and stays installed for later calls.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.var_data.push(VarData {
            reason: ClauseRef::UNDEF,
            level: 0,
        });
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.activity.push(0.0);
        self.seen.push(false);
        self.order.grow_to(self.assigns.len());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of live clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.db.live_count()
    }

    /// Work counters for the most recent solving activity.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a clause. Returns `false` if the solver became trivially
    /// unsatisfiable (empty clause, or conflicting units at level 0).
    ///
    /// Duplicated literals are removed; tautological clauses (containing
    /// both `l` and `!l`) are silently dropped.
    ///
    /// Clauses attach at the root level: if a previous
    /// [`Solver::solve_with`] answered SAT, its model trail is undone
    /// first (so interleave queries and clause additions freely, but
    /// read [`Solver::value`] before growing the formula).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        self.cancel_until(0);
        if self.unsat_at_root {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        // Tautology / falsified-literal simplification at level 0.
        let mut simplified = Vec::with_capacity(lits.len());
        let mut i = 0;
        while i < lits.len() {
            let l = lits[i];
            if i + 1 < lits.len() && lits[i + 1] == !l {
                return true; // tautology
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => simplified.push(l),
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.unsat_at_root = true;
                false
            }
            1 => {
                self.enqueue(simplified[0], ClauseRef::UNDEF);
                if self.propagate().is_defined() {
                    self.unsat_at_root = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                let cref = self.db.alloc(simplified, false);
                self.attach(cref);
                true
            }
        }
    }

    /// Creates a fresh *selector* (activation) literal for a clause
    /// group.
    ///
    /// Clauses added through [`Solver::add_clause_selected`] with this
    /// literal are enforced only while the selector is passed to
    /// [`Solver::solve_with`] as an assumption; queries that omit it see
    /// the group as absent. This is how the BMC engine keeps one solver
    /// across query families that differ in a constraint block (e.g.
    /// reset-state pinning on for bounded model checking, off for the
    /// k-induction step case) without ever rebuilding the clause
    /// database.
    ///
    /// # Examples
    ///
    /// ```
    /// use fv_sat::{Lit, Solver};
    ///
    /// let mut s = Solver::new();
    /// let x = s.new_var();
    /// let pin = s.new_selector();
    /// s.add_clause_selected(pin, [Lit::neg(x)]); // x = 0, but only when pinned
    /// // With the group enabled, x is forced low...
    /// assert!(s.solve_with(&[pin, Lit::pos(x)]).is_unsat());
    /// // ...without it, x is free again.
    /// assert!(s.solve_with(&[Lit::pos(x)]).is_sat());
    /// ```
    pub fn new_selector(&mut self) -> Lit {
        Lit::pos(self.new_var())
    }

    /// Adds a clause to the group guarded by `selector` (see
    /// [`Solver::new_selector`]): the clause is active exactly in the
    /// [`Solver::solve_with`] calls that assume the selector.
    ///
    /// Returns `false` if the solver became trivially unsatisfiable
    /// (which a guarded clause alone can never cause).
    pub fn add_clause_selected<I: IntoIterator<Item = Lit>>(
        &mut self,
        selector: Lit,
        lits: I,
    ) -> bool {
        self.add_clause(lits.into_iter().chain([!selector]))
    }

    /// Solves the current formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// Assumptions are treated as temporary unit decisions: the result is
    /// relative to them and they are undone afterwards, so the solver can
    /// be reused incrementally.
    ///
    /// Returns [`SolveResult::Interrupted`] (leaving the solver fully
    /// reusable) when an installed interrupt token is raised or the
    /// per-call conflict budget runs out; see [`Solver::set_interrupt`]
    /// and [`Solver::set_conflict_budget`].
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        let mut span = fv_trace::span!("sat.solve");
        if span.is_active() {
            span.attr("vars", self.num_vars());
            span.attr("assumptions", assumptions.len());
        }
        let result = self.solve_with_inner(assumptions);
        span.attr(
            "result",
            match result {
                SolveResult::Sat => "sat",
                SolveResult::Unsat => "unsat",
                SolveResult::Interrupted => "interrupted",
            },
        );
        result
    }

    fn solve_with_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.unsat_at_root {
            return SolveResult::Unsat;
        }
        if self.interrupted() {
            return SolveResult::Interrupted;
        }
        self.cancel_until(0);
        let conflict_limit = self
            .conflict_budget
            .map(|b| self.stats.conflicts.saturating_add(b));
        let mut restarts: u64 = 0;
        loop {
            let budget = 100 * luby(restarts);
            match self.search(budget, assumptions, conflict_limit) {
                Some(res) => {
                    if res != SolveResult::Sat {
                        self.cancel_until(0);
                    }
                    return res;
                }
                None => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
            }
        }
    }

    /// Whether the installed interrupt token (if any) is raised.
    #[inline]
    fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|t| t.load(Ordering::Relaxed))
    }

    /// The model value of `v` after a [`SolveResult::Sat`] answer.
    ///
    /// Returns `None` for variables the search left unconstrained (any
    /// value satisfies the formula).
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assigns[v.index()].to_bool()
    }

    /// The model value of a literal after a SAT answer.
    pub fn lit_value_model(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b ^ l.is_neg())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        self.assigns[l.var().index()].xor(l.is_neg())
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn attach(&mut self, cref: ClauseRef) {
        let c = self.db.get(cref);
        debug_assert!(c.len() >= 2);
        let l0 = c.lits()[0];
        let l1 = c.lits()[1];
        self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
    }

    fn detach(&mut self, cref: ClauseRef) {
        let c = self.db.get(cref);
        let l0 = c.lits()[0];
        let l1 = c.lits()[1];
        self.watches[(!l0).index()].retain(|w| w.cref != cref);
        self.watches[(!l1).index()].retain(|w| w.cref != cref);
    }

    fn enqueue(&mut self, l: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = LBool::from(!l.is_neg());
        self.var_data[v.index()] = VarData {
            reason,
            level: self.decision_level(),
        };
        self.trail.push(l);
    }

    /// Unit propagation. Returns the conflicting clause, or UNDEF.
    fn propagate(&mut self) -> ClauseRef {
        let mut conflict = ClauseRef::UNDEF;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            'watches: while i < ws.len() {
                let w = ws[i];
                // Blocking-literal fast path.
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                {
                    let c = self.db.get_mut(cref);
                    // Normalize: the falsified watch is lits[1].
                    let false_lit = !p;
                    if c.lits()[0] == false_lit {
                        c.lits_mut().swap(0, 1);
                    }
                    debug_assert_eq!(c.lits()[1], false_lit);
                }
                let first = self.db.get(cref).lits()[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i] = Watcher {
                        cref,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.db.get(cref).len();
                for k in 2..len {
                    let lk = self.db.get(cref).lits()[k];
                    if self.lit_value(lk) != LBool::False {
                        let c = self.db.get_mut(cref);
                        c.lits_mut().swap(1, k);
                        self.watches[(!lk).index()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[i] = Watcher {
                    cref,
                    blocker: first,
                };
                i += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = cref;
                    self.qhead = self.trail.len();
                    break;
                } else {
                    self.enqueue(first, cref);
                }
            }
            let mut existing = std::mem::take(&mut self.watches[p.index()]);
            ws.append(&mut existing);
            self.watches[p.index()] = ws;
            if conflict.is_defined() {
                break;
            }
        }
        conflict
    }

    /// First-UIP conflict analysis. Returns (learned clause, backtrack level).
    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder for asserting lit
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            debug_assert!(conflict.is_defined());
            self.bump_clause(conflict);
            let lits: Vec<Lit> = self.db.get(conflict).lits().to_vec();
            let skip = usize::from(p.is_some());
            for &q in lits.iter().skip(skip) {
                let v = q.var();
                if !self.seen[v.index()] && self.var_data[v.index()].level > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.var_data[v.index()].level >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            conflict = self.var_data[pl.var().index()].reason;
        }

        // Clause minimization: drop literals implied by the rest.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| !self.redundant(l))
            .collect();
        learnt.truncate(1);
        learnt.extend(keep);

        // Clear seen markers.
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        // (Markers set during the loop for dropped literals were cleared in
        // the trail walk; redundant() leaves `seen` as-is for learnt lits.)
        let mut to_clear: Vec<usize> = Vec::new();
        for (i, s) in self.seen.iter().enumerate() {
            if *s {
                to_clear.push(i);
            }
        }
        for i in to_clear {
            self.seen[i] = false;
        }

        // Backtrack level = second-highest level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level_of(learnt[i]) > self.level_of(learnt[max_i]) {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level_of(learnt[1])
        };
        (learnt, bt)
    }

    /// Local (non-recursive, depth-1) redundancy check: a literal is
    /// redundant if its reason clause is entirely made of seen literals
    /// or root-level assignments.
    fn redundant(&self, l: Lit) -> bool {
        let vd = self.var_data[l.var().index()];
        if !vd.reason.is_defined() {
            return false;
        }
        self.db.get(vd.reason).lits().iter().skip(1).all(|&q| {
            let qd = self.var_data[q.var().index()];
            self.seen[q.var().index()] || qd.level == 0
        })
    }

    #[inline]
    fn level_of(&self, l: Lit) -> u32 {
        self.var_data[l.var().index()].level
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for i in (lim..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.phase[v.index()] = !l.is_neg();
            self.assigns[v.index()] = LBool::Undef;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.order.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = self.db.get_mut(cref);
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > RESCALE_LIMIT {
            let refs: Vec<ClauseRef> = self.db.learnt_refs().collect();
            for r in refs {
                self.db.get_mut(r).activity *= 1.0 / RESCALE_LIMIT;
            }
            self.cla_inc *= 1.0 / RESCALE_LIMIT;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
        self.cla_inc /= CLA_DECAY;
    }

    fn pick_branch(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        let mut learnts: Vec<(f64, ClauseRef)> = self
            .db
            .learnt_refs()
            .map(|r| (self.db.get(r).activity, r))
            .collect();
        learnts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let target = learnts.len() / 2;
        let mut removed = 0;
        for &(_, cref) in learnts.iter() {
            if removed >= target {
                break;
            }
            if self.is_reason(cref) || self.db.get(cref).len() <= 2 {
                continue;
            }
            self.detach(cref);
            self.db.free(cref);
            removed += 1;
        }
        self.stats.learnt = self.db.learnt_refs().count() as u64;
    }

    fn is_reason(&self, cref: ClauseRef) -> bool {
        let c = self.db.get(cref);
        if c.is_empty() {
            return false;
        }
        let l0 = c.lits()[0];
        self.lit_value(l0) == LBool::True && self.var_data[l0.var().index()].reason == cref
    }

    /// Runs CDCL until SAT, UNSAT, interruption, or `budget` conflicts
    /// (restart signal: `None`).
    fn search(
        &mut self,
        budget: u64,
        assumptions: &[Lit],
        conflict_limit: Option<u64>,
    ) -> Option<SolveResult> {
        let mut conflicts_here: u64 = 0;
        loop {
            let conflict = self.propagate();
            if conflict.is_defined() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if self.interrupted() || conflict_limit.is_some_and(|l| self.stats.conflicts > l) {
                    return Some(SolveResult::Interrupted);
                }
                if self.decision_level() == 0 {
                    self.unsat_at_root = true;
                    return Some(SolveResult::Unsat);
                }
                // Conflict below the assumption levels means the
                // assumptions themselves are inconsistent.
                let (learnt, bt) = self.analyze(conflict);
                let assumption_level = self.trail_lim.len().min(assumptions.len());
                if (bt as usize) < assumption_level
                    && self.decision_level() as usize <= assumptions.len()
                {
                    return Some(SolveResult::Unsat);
                }
                self.cancel_until(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    if self.lit_value(asserting) == LBool::False {
                        return Some(SolveResult::Unsat);
                    }
                    if self.lit_value(asserting) == LBool::Undef {
                        self.enqueue(asserting, ClauseRef::UNDEF);
                    }
                } else {
                    let cref = self.db.alloc(learnt, true);
                    self.attach(cref);
                    self.bump_clause(cref);
                    self.enqueue(asserting, cref);
                }
                self.decay_activities();
                if self.db.learnt_refs().count() as f64 > self.max_learnt {
                    self.reduce_db();
                    self.max_learnt *= 1.1;
                }
            } else {
                if conflicts_here >= budget {
                    return None; // restart
                }
                // Place assumptions as pseudo-decisions first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        LBool::True => {
                            // Already satisfied: open an empty level so the
                            // next assumption is considered.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return Some(SolveResult::Unsat),
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, ClauseRef::UNDEF);
                        }
                    }
                    continue;
                }
                match self.pick_branch() {
                    None => return Some(SolveResult::Sat),
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let l = Lit::new(v, !self.phase[v.index()]);
                        self.enqueue(l, ClauseRef::UNDEF);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause([Lit::pos(v)]));
        assert!(!s.add_clause([Lit::neg(v)]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn unit_chain_propagates() {
        // (a) (!a | b) (!b | c) => all true
        let mut s = Solver::new();
        let l = lits(&mut s, 3);
        s.add_clause([l[0]]);
        s.add_clause([!l[0], l[1]]);
        s.add_clause([!l[1], l[2]]);
        assert!(s.solve().is_sat());
        for &x in &l {
            assert_eq!(s.lit_value_model(x), Some(true));
        }
    }

    #[test]
    fn xor_three_vars() {
        // a xor b xor c = 1 as CNF, plus a=1, b=1 => c=1.
        let mut s = Solver::new();
        let l = lits(&mut s, 3);
        let (a, b, c) = (l[0], l[1], l[2]);
        s.add_clause([a, b, c]);
        s.add_clause([a, !b, !c]);
        s.add_clause([!a, b, !c]);
        s.add_clause([!a, !b, c]);
        s.add_clause([a]);
        s.add_clause([b]);
        assert!(s.solve().is_sat());
        assert_eq!(s.lit_value_model(c), Some(true));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let mut p = [[Lit::pos(Var(0)); 2]; 3];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::pos(s.new_var());
            }
        }
        for row in &p {
            s.add_clause([row[0], row[1]]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn assumptions_are_transient() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::neg(a), Lit::pos(b)]);
        assert!(s.solve_with(&[Lit::pos(a)]).is_sat());
        assert_eq!(s.value(b), Some(true));
        // Contradictory assumptions: UNSAT, but the base stays SAT.
        assert!(s.solve_with(&[Lit::pos(a), Lit::neg(b)]).is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn selector_groups_toggle_per_query() {
        // Two incompatible clause groups over shared variables: each is
        // consistent alone, both together are not, and the solver is
        // reused across all four queries.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        s.add_clause([Lit::pos(x), Lit::pos(y)]); // always on
        let g_low = s.new_selector();
        s.add_clause_selected(g_low, [Lit::neg(x)]);
        s.add_clause_selected(g_low, [Lit::neg(y)]);
        let g_high = s.new_selector();
        s.add_clause_selected(g_high, [Lit::pos(x)]);

        assert!(s.solve().is_sat(), "no groups: base formula only");
        assert!(s.solve_with(&[g_high]).is_sat());
        assert!(s.solve_with(&[g_low]).is_unsat(), "x=y=0 contradicts x|y");
        assert!(s.solve_with(&[g_high]).is_sat(), "disabled again");
    }

    #[test]
    fn selected_multiliteral_clause_behaves() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let sel = s.new_selector();
        s.add_clause_selected(sel, [Lit::pos(a), Lit::pos(b)]);
        // Enabled: at least one of a, b.
        assert!(s.solve_with(&[sel, Lit::neg(a), Lit::neg(b)]).is_unsat());
        // Disabled: both may be low.
        assert!(s.solve_with(&[Lit::neg(a), Lit::neg(b)]).is_sat());
    }

    #[test]
    fn tautology_is_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([Lit::pos(a), Lit::neg(a)]));
        assert!(s.solve().is_sat());
    }

    #[test]
    fn duplicate_literals_deduplicated() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([Lit::pos(a), Lit::pos(a)]));
        assert!(s.solve().is_sat());
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn php_4_into_3_unsat_exercises_learning() {
        let n = 4;
        let m = 3;
        let mut s = Solver::new();
        let mut p = vec![vec![Lit::pos(Var(0)); m]; n];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::pos(s.new_var());
            }
        }
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert!(s.solve().is_unsat());
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn model_satisfies_all_clauses_random() {
        // Deterministic pseudo-random 3-SAT near the easy region.
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for round in 0..20 {
            let n = 20 + (round % 5);
            let m = 2 * n;
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n).map(|_| s.new_var()).collect();
            let mut clauses = Vec::new();
            for _ in 0..m {
                let c: Vec<Lit> = (0..3)
                    .map(|_| {
                        let v = vars[(next() % n as u64) as usize];
                        Lit::new(v, next() % 2 == 0)
                    })
                    .collect();
                clauses.push(c.clone());
                s.add_clause(c);
            }
            if s.solve().is_sat() {
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.lit_value_model(l).unwrap_or(true)),
                        "model must satisfy every clause"
                    );
                }
            }
        }
    }

    /// Pigeonhole formula (`n` pigeons, `m` holes) guarded by a fresh
    /// selector, so the hard UNSAT core is active only under assumption.
    /// UNSAT when `n > m`, and resolution-hard enough to need many
    /// conflicts.
    fn pigeonhole_selected(s: &mut Solver, n: usize, m: usize) -> Lit {
        let sel = s.new_selector();
        let mut p = vec![vec![Lit::pos(Var(0)); m]; n];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = Lit::pos(s.new_var());
            }
        }
        for row in &p {
            s.add_clause_selected(sel, row.iter().copied());
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in p.iter().skip(i1 + 1) {
                for (a, b) in row1.iter().zip(row2) {
                    s.add_clause_selected(sel, [!*a, !*b]);
                }
            }
        }
        sel
    }

    #[test]
    fn conflict_budget_interrupts_hard_query() {
        let mut s = Solver::new();
        let sel = pigeonhole_selected(&mut s, 7, 6);
        s.set_conflict_budget(Some(20));
        assert!(
            s.solve_with(&[sel]).is_interrupted(),
            "budget must cut the search"
        );
        // The same solver, budget lifted, still reaches the real answer:
        // clause database and trail survived the interruption.
        s.set_conflict_budget(None);
        assert!(s.solve_with(&[sel]).is_unsat());
    }

    #[test]
    fn interrupted_solver_answers_next_query() {
        let mut s = Solver::new();
        let sel = pigeonhole_selected(&mut s, 7, 6);
        s.set_conflict_budget(Some(10));
        assert!(s.solve_with(&[sel]).is_interrupted());
        // A fresh easy query over new variables must come back correct.
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        s.set_conflict_budget(None);
        assert!(s.solve_with(&[Lit::neg(a)]).is_sat());
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn interrupt_token_cuts_and_clears() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let token = Arc::new(AtomicBool::new(true));
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        s.set_interrupt(Some(token.clone()));
        // A raised token short-circuits even trivial queries.
        assert!(s.solve().is_interrupted());
        token.store(false, Ordering::Relaxed);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v), Some(true));
        s.set_interrupt(None);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn interrupt_token_cuts_inflight_search() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let token = Arc::new(AtomicBool::new(false));
        let mut s = Solver::new();
        // Large enough that the search cannot finish before the
        // watchdog fires (PHP(11,10) needs far more than 50ms).
        let sel = pigeonhole_selected(&mut s, 11, 10);
        s.set_interrupt(Some(token.clone()));
        let clauses_before = s.num_clauses();
        let watchdog = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(50));
                token.store(true, Ordering::Relaxed);
            })
        };
        assert!(s.solve_with(&[sel]).is_interrupted());
        watchdog.join().unwrap();
        token.store(false, Ordering::Relaxed);
        // Original clauses are all still present (learned clauses may
        // have been added on top) and an easy query concludes normally.
        // The hard group must be deselected: the interrupted search
        // left `sel` with a saved phase and top activity, so a free
        // search would decide it first and re-enter the exponential
        // pigeonhole refutation.
        assert!(s.num_clauses() >= clauses_before);
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        assert!(s.solve_with(&[!sel]).is_sat());
        assert_eq!(s.value(v), Some(true));
    }
}
