//! Cheap pre-SAT simulation over AIGs: a 64-way bit-parallel random
//! simulator and a three-valued (0/1/X) constant propagator.
//!
//! Both evaluators treat the graph as combinational: primary inputs
//! *and* latch outputs are free slots whose values the caller supplies.
//! This matches how the provers in `fv-core` use AIGs — time frames are
//! unrolled by `sv-synth::FrameExpander`, so the monitors they check are
//! pure combinational cones over per-frame inputs.
//!
//! The simulators are *incremental*: AIG nodes are append-only, so
//! [`BitSim::extend`] / [`TernarySim::extend`] evaluate only the nodes
//! added since the previous call. A bounded-model-checking loop that
//! grows one shared graph pays `O(total nodes)` simulation cost over the
//! whole run, not per anchor.

use crate::aig::{Aig, AigLit, Node};

/// A free value slot encountered during simulation: a primary input or
/// a latch output, each identified by its dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimSlot {
    /// Primary input by dense input index (see [`Aig::inputs`]).
    Input(u32),
    /// Latch output by dense latch index (see [`Aig::latches`]).
    Latch(u32),
}

/// 64-way bit-parallel evaluator: every node holds a `u64` word, one
/// simulation pattern per bit.
///
/// A non-zero word on a target literal is a *witness*: some pattern
/// satisfies it, so the corresponding SAT query is satisfiable without
/// ever calling the solver. The provers use this to kill falsification
/// queries cheaply ("sim-kills") and read the witness assignment back
/// with [`BitSim::lit_bit`].
///
/// # Examples
///
/// ```
/// use fv_aig::{Aig, BitSim, SimSlot};
///
/// let mut g = Aig::new();
/// let a = g.input();
/// let b = g.input();
/// let y = g.and(a, !b);
/// let mut sim = BitSim::new();
/// // Pattern bits: a = 0b01, b = 0b11 (two patterns in the low bits).
/// sim.extend(&g, &mut |slot| match slot {
///     SimSlot::Input(0) => 0b01,
///     SimSlot::Input(1) => 0b11,
///     _ => 0,
/// });
/// assert_eq!(sim.lit(y) & 0b11, 0b00, "a & !b is false in both");
/// assert!(sim.lit_bit(a, 0) && !sim.lit_bit(a, 1));
/// ```
#[derive(Debug, Default)]
pub struct BitSim {
    words: Vec<u64>,
}

impl BitSim {
    /// Creates an empty simulator.
    pub fn new() -> BitSim {
        BitSim::default()
    }

    /// Number of nodes evaluated so far.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` before the first [`BitSim::extend`] call.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Forgets all evaluated nodes (e.g. to re-run with new patterns).
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Evaluates every node added to `g` since the previous call.
    /// `fill` supplies the 64-pattern word for each newly encountered
    /// free slot; already-evaluated nodes keep their words, so patterns
    /// must stay fixed across extends of one run (use [`BitSim::clear`]
    /// to start over).
    pub fn extend(&mut self, g: &Aig, fill: &mut dyn FnMut(SimSlot) -> u64) {
        self.words.reserve(g.nodes.len() - self.words.len());
        for node in &g.nodes[self.words.len()..] {
            let w = match *node {
                Node::False => 0,
                Node::Input(k) => fill(SimSlot::Input(k)),
                Node::Latch(k) => fill(SimSlot::Latch(k)),
                Node::And(a, b) => self.lit(a) & self.lit(b),
            };
            self.words.push(w);
        }
    }

    /// The 64-pattern word of a literal.
    ///
    /// # Panics
    ///
    /// Panics if the literal's node has not been evaluated yet.
    #[inline]
    pub fn lit(&self, l: AigLit) -> u64 {
        let w = self.words[l.node().index()];
        if l.is_inverted() {
            !w
        } else {
            w
        }
    }

    /// The value of a literal in one pattern (bit position `0..64`).
    #[inline]
    pub fn lit_bit(&self, l: AigLit, pattern: u32) -> bool {
        (self.lit(l) >> pattern) & 1 == 1
    }
}

/// A three-valued logic value: definitely false, definitely true, or
/// unknown (`X`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ternary {
    /// Constant 0 under every assignment of the unknown slots.
    False,
    /// Constant 1 under every assignment of the unknown slots.
    True,
    /// Value depends on at least one unknown slot.
    Unknown,
}

impl Ternary {
    /// Lifts a concrete boolean.
    pub fn known(b: bool) -> Ternary {
        if b {
            Ternary::True
        } else {
            Ternary::False
        }
    }

    fn not(self) -> Ternary {
        match self {
            Ternary::False => Ternary::True,
            Ternary::True => Ternary::False,
            Ternary::Unknown => Ternary::Unknown,
        }
    }

    fn and(self, other: Ternary) -> Ternary {
        match (self, other) {
            (Ternary::False, _) | (_, Ternary::False) => Ternary::False,
            (Ternary::True, Ternary::True) => Ternary::True,
            _ => Ternary::Unknown,
        }
    }
}

/// Three-valued constant propagation: slots the caller pins are known,
/// everything else is `X`, and any node that still evaluates to a
/// constant is that constant under *every* assignment of the free
/// slots.
///
/// The BMC engine uses this to discharge unsatisfiable falsification
/// queries without a SAT call ("ternary-kills"): if `¬holds` propagates
/// to [`Ternary::False`] with only the reset state pinned, no input
/// sequence can violate the property at that anchor.
///
/// # Examples
///
/// ```
/// use fv_aig::{Aig, SimSlot, Ternary, TernarySim};
///
/// let mut g = Aig::new();
/// let a = g.input();
/// let b = g.input();
/// let y = g.and(a, b);
/// let mut sim = TernarySim::new();
/// // Pin a = 0, leave b unknown: a & b is still definitely false.
/// sim.extend(&g, &mut |slot| match slot {
///     SimSlot::Input(0) => Ternary::False,
///     _ => Ternary::Unknown,
/// });
/// assert_eq!(sim.lit(y), Ternary::False);
/// assert_eq!(sim.lit(b), Ternary::Unknown);
/// ```
#[derive(Debug, Default)]
pub struct TernarySim {
    vals: Vec<Ternary>,
}

impl TernarySim {
    /// Creates an empty simulator.
    pub fn new() -> TernarySim {
        TernarySim::default()
    }

    /// Number of nodes evaluated so far.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` before the first [`TernarySim::extend`] call.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Forgets all evaluated nodes.
    pub fn clear(&mut self) {
        self.vals.clear();
    }

    /// Evaluates every node added to `g` since the previous call, with
    /// `fill` pinning (or leaving unknown) each newly encountered slot.
    pub fn extend(&mut self, g: &Aig, fill: &mut dyn FnMut(SimSlot) -> Ternary) {
        self.vals.reserve(g.nodes.len() - self.vals.len());
        for node in &g.nodes[self.vals.len()..] {
            let v = match *node {
                Node::False => Ternary::False,
                Node::Input(k) => fill(SimSlot::Input(k)),
                Node::Latch(k) => fill(SimSlot::Latch(k)),
                Node::And(a, b) => self.lit(a).and(self.lit(b)),
            };
            self.vals.push(v);
        }
    }

    /// The three-valued result of a literal.
    ///
    /// # Panics
    ///
    /// Panics if the literal's node has not been evaluated yet.
    #[inline]
    pub fn lit(&self, l: AigLit) -> Ternary {
        let v = self.vals[l.node().index()];
        if l.is_inverted() {
            v.not()
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::AigEvaluator;

    fn xor_graph() -> (Aig, AigLit, AigLit, AigLit) {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let y = g.xor(a, b);
        (g, a, b, y)
    }

    #[test]
    fn bitsim_matches_scalar_evaluator() {
        let (g, a, b, y) = xor_graph();
        let wa = 0b0011u64;
        let wb = 0b0101u64;
        let mut sim = BitSim::new();
        sim.extend(&g, &mut |slot| match slot {
            SimSlot::Input(0) => wa,
            SimSlot::Input(1) => wb,
            _ => 0,
        });
        for p in 0..4u32 {
            let ia = (wa >> p) & 1 == 1;
            let ib = (wb >> p) & 1 == 1;
            let ev = AigEvaluator::combinational(&g, &[ia, ib]);
            assert_eq!(sim.lit_bit(y, p), ev.lit(y), "pattern {p}");
            assert_eq!(sim.lit_bit(a, p), ia);
            assert_eq!(sim.lit_bit(b, p), ib);
        }
    }

    #[test]
    fn bitsim_is_incremental() {
        let mut g = Aig::new();
        let a = g.input();
        let mut sim = BitSim::new();
        sim.extend(&g, &mut |_| 0b10);
        assert_eq!(sim.len(), g.num_nodes());
        // New logic over the same input: only the new nodes are filled.
        let b = g.input();
        let y = g.and(a, b);
        let mut calls = 0;
        sim.extend(&g, &mut |slot| {
            calls += 1;
            assert_eq!(slot, SimSlot::Input(1), "only the new input is free");
            0b11
        });
        assert_eq!(calls, 1);
        assert_eq!(sim.lit(y) & 0b11, 0b10);
    }

    #[test]
    fn bitsim_constants() {
        let g = Aig::new();
        let mut sim = BitSim::new();
        sim.extend(&g, &mut |_| 0);
        assert_eq!(sim.lit(AigLit::FALSE), 0);
        assert_eq!(sim.lit(AigLit::TRUE), u64::MAX);
    }

    #[test]
    fn ternary_propagates_unknowns_conservatively() {
        let (g, a, b, y) = xor_graph();
        let mut sim = TernarySim::new();
        sim.extend(&g, &mut |_| Ternary::Unknown);
        assert_eq!(sim.lit(y), Ternary::Unknown);
        assert_eq!(sim.lit(a), Ternary::Unknown);
        assert_eq!(sim.lit(!b), Ternary::Unknown);

        // Pinning both inputs makes the xor definite.
        let mut sim = TernarySim::new();
        sim.extend(&g, &mut |slot| match slot {
            SimSlot::Input(0) => Ternary::True,
            _ => Ternary::False,
        });
        assert_eq!(sim.lit(y), Ternary::True);
    }

    #[test]
    fn ternary_never_contradicts_concrete_eval() {
        // A slightly deeper graph with one pinned and one free input.
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let t1 = g.mux(a, b, c);
        let t2 = g.xnor(t1, b);
        let mut sim = TernarySim::new();
        sim.extend(&g, &mut |slot| match slot {
            SimSlot::Input(0) => Ternary::True,
            _ => Ternary::Unknown,
        });
        for bits in 0..4u32 {
            let ib = bits & 1 == 1;
            let ic = bits & 2 == 2;
            let ev = AigEvaluator::combinational(&g, &[true, ib, ic]);
            for lit in [t1, t2, a, b, c] {
                match sim.lit(lit) {
                    Ternary::Unknown => {}
                    known => assert_eq!(known, Ternary::known(ev.lit(lit))),
                }
            }
        }
    }

    #[test]
    fn latch_slots_are_free() {
        let mut g = Aig::new();
        let (_, q) = g.add_latch(false);
        let y = g.and(q, AigLit::TRUE);
        let mut sim = BitSim::new();
        sim.extend(&g, &mut |slot| match slot {
            SimSlot::Latch(0) => 0b1,
            _ => 0,
        });
        assert_eq!(sim.lit(y) & 1, 1);
    }
}
