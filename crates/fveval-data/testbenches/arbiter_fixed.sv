// NL2SVA-Human collateral: 4-client fixed-priority arbiter (index 0
// is highest priority). expected_gnt is the combinational priority
// model the dataset's assertions compare against.
module arbiter_fixed_tb (
    input clk,
    input reset_,
    input [3:0] tb_req,
    input busy
);
  parameter N_CLIENTS = 4;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  wire any_req;
  assign any_req = |tb_req;

  wire [3:0] expected_gnt;
  assign expected_gnt = tb_req[0] ? 4'b0001
                      : tb_req[1] ? 4'b0010
                      : tb_req[2] ? 4'b0100
                      : tb_req[3] ? 4'b1000
                      : 4'b0000;

  wire [3:0] tb_gnt;
  assign tb_gnt = busy ? 4'b0000 : expected_gnt;
endmodule
