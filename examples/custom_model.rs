//! Benchmark your own model: implement [`Backend`] and run it through
//! the same engine as the paper's eight LLMs.
//!
//! This example builds a tiny *retrieval heuristic* model that answers
//! NL2SVA tasks by keyword-matching the question against a pattern
//! library — the kind of non-LLM baseline FVEval makes easy to compare.
//! Only `Backend::name` and `Backend::generate` are required;
//! `generate_batch` comes for free (override it when your backend can
//! answer a whole batch in one round trip).
//!
//! ```text
//! cargo run --example custom_model
//! ```

use fveval_repro::prelude::*;
use std::collections::HashMap;

/// A rule-based baseline: maps specification keywords to assertion
/// templates over the signals named in the question.
struct KeywordBaseline;

impl KeywordBaseline {
    /// Extracts the quoted signal names from the question
    /// ("Use the signals 'a' and 'b'.").
    fn quoted_signals(question: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut rest = question;
        while let Some(start) = rest.find('\'') {
            let after = &rest[start + 1..];
            match after.find('\'') {
                Some(end) => {
                    out.push(after[..end].to_string());
                    rest = &after[end + 1..];
                }
                None => break,
            }
        }
        out
    }
}

impl Backend for KeywordBaseline {
    fn name(&self) -> &str {
        "keyword-baseline"
    }

    fn generate(&self, req: &Request) -> String {
        let question = match req.task.as_ref() {
            TaskSpec::Nl2svaHuman { case, .. } => case.question.clone(),
            TaskSpec::Nl2svaMachine { case, .. } => case.question.clone(),
            TaskSpec::Design2sva { .. } => {
                return "assert property (@(posedge clk) 1'b1);".to_string()
            }
        };
        let signals = Self::quoted_signals(&question);
        let s = |i: usize| signals.get(i).cloned().unwrap_or_else(|| "clk".into());
        let q = question.to_lowercase();
        let body = if q.contains("eventually") {
            format!("{} |-> strong(##[0:$] {})", s(1), s(0))
        } else if q.contains("underflow") || q.contains("overflow") {
            format!("({} && {}) !== 1'b1", s(1), s(0))
        } else if q.contains("at most one") || q.contains("same time") {
            format!("$onehot0({})", s(0))
        } else if q.contains("stable") || q.contains("holds its value") {
            format!("(!{} && !{}) |=> $stable({})", s(0), s(1), s(2))
        } else if q.contains("next cycle") {
            format!("{} |=> {}", s(0), s(1))
        } else {
            // Fall back to a conjunction check over the named signals.
            format!("({} && {}) !== 1'b1", s(0), s(1))
        };
        format!("asrt: assert property (@(posedge clk) disable iff (tb_reset) {body});")
    }
}

fn main() {
    let cases = human_cases();
    let tables: HashMap<&str, SignalTable> = testbenches()
        .into_iter()
        .map(|t| (t.name, signal_table_for(&t).expect("testbenches elaborate")))
        .collect();
    let tasks = human_task_specs(&cases, &tables);
    let engine = EvalEngine::new();
    let cfg = InferenceConfig::greedy();

    let baseline = KeywordBaseline;
    let evals = engine.run(&baseline, &tasks, &cfg, 1);
    let s = MetricSummary::from_first_samples(&evals);
    println!(
        "{:<18} syntax={:.3} func={:.3} partial={:.3} bleu={:.3}",
        baseline.name(),
        s.syntax,
        s.func,
        s.partial,
        s.bleu
    );

    // Compare against the calibrated simulated LLMs: the whole
    // model × case product goes through the worker pool in one call.
    let models = profiles();
    let backends: Vec<&dyn Backend> = models.iter().map(|m| m as &dyn Backend).collect();
    for (model, evals) in models
        .iter()
        .zip(engine.run_matrix(&backends, &tasks, &cfg, 1))
    {
        let s = MetricSummary::from_first_samples(&evals);
        println!(
            "{:<18} syntax={:.3} func={:.3} partial={:.3} bleu={:.3}",
            model.name(),
            s.syntax,
            s.func,
            s.partial,
            s.bleu
        );
    }
}
