//! The flat word-level netlist produced by elaboration.

use crate::netexpr::Nx;
use std::sync::Arc;
use sv_ast::{Interner, Symbol, SymbolMap};

/// Index of an atom in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl AtomId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What drives an atom.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomKind {
    /// Free primary input.
    Input,
    /// Combinational definition.
    Comb(Nx),
    /// Register with synchronous next-state function and reset value.
    Reg {
        /// Next-state expression.
        next: Nx,
        /// Reset/initial value.
        init: u128,
    },
}

/// One atom: a named, width-annotated value holder.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomDef {
    /// Flat hierarchical name (e.g. `unit_0.data[3]`).
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Driver.
    pub kind: AtomKind,
}

/// A contiguous segment of a net, LSB-first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seg {
    /// Atom providing the bits.
    pub atom: AtomId,
    /// Offset into the atom.
    pub lo: u32,
    /// Number of bits taken.
    pub width: u32,
}

/// How a source-level net maps onto atoms.
#[derive(Debug, Clone, PartialEq)]
pub struct NetBinding {
    /// Total width of the net.
    pub width: u32,
    /// Width of one first-dimension element (for `x[i]` selects on
    /// multi-dimensional packed nets); 1 for plain vectors.
    pub elem_width: u32,
    /// LSB-first segments covering the full width.
    pub segs: Vec<Seg>,
}

impl NetBinding {
    /// Reads the whole net as an [`Nx`] expression.
    pub fn read(&self) -> Nx {
        self.read_range(0, self.width)
    }

    /// Reads bits `[lo, lo+width)` of the net.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the net width.
    pub fn read_range(&self, lo: u32, width: u32) -> Nx {
        assert!(lo + width <= self.width, "net range read out of bounds");
        let mut parts: Vec<Nx> = Vec::new();
        let mut seg_base = 0u32;
        for seg in &self.segs {
            let seg_lo = seg_base;
            let seg_hi = seg_base + seg.width;
            let want_lo = lo.max(seg_lo);
            let want_hi = (lo + width).min(seg_hi);
            if want_lo < want_hi {
                let inner = Nx::Atom(seg.atom);
                let off = seg.lo + (want_lo - seg_lo);
                let w = want_hi - want_lo;
                parts.push(Nx::Slice {
                    inner: Box::new(inner),
                    lo: off,
                    width: w,
                });
            }
            seg_base = seg_hi;
        }
        match parts.len() {
            0 => panic!("net has no segments covering the range"),
            1 => parts.pop().expect("one part"),
            _ => Nx::Concat(parts),
        }
    }
}

/// A flat design: atoms plus the name bindings of source-level nets.
///
/// Net and array maps are keyed by interned [`Symbol`]s — map probes
/// are integer hashes, and the name text lives once in the shared
/// [`Interner`] arena (`syms`). String-based lookup stays available
/// through [`Netlist::net`], which resolves the name against the
/// arena without inserting.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// All atoms.
    pub atoms: Vec<AtomDef>,
    /// Source-net symbol to binding (array elements appear as
    /// `name[i]`).
    pub nets: SymbolMap<Symbol, NetBinding>,
    /// Unpacked array metadata: symbol to element count.
    pub arrays: SymbolMap<Symbol, u32>,
    /// The frozen per-design string arena every symbol resolves
    /// against.
    pub syms: Arc<Interner>,
    /// Name of the active-low reset input, if detected.
    pub reset_name: Option<String>,
    /// Name of the clock input, if detected.
    pub clock_name: Option<String>,
    /// Warnings accumulated during elaboration (undriven nets, etc.).
    pub warnings: Vec<String>,
    /// Top-module parameter values (assertion-visible constants such as
    /// FSM state encodings), in declaration order.
    pub params: Vec<(String, u128)>,
}

impl Netlist {
    /// Looks up an atom definition.
    pub fn atom(&self, id: AtomId) -> &AtomDef {
        &self.atoms[id.index()]
    }

    /// Width of an atom.
    pub fn atom_width(&self, id: AtomId) -> u32 {
        self.atoms[id.index()].width
    }

    /// All input atoms in creation order.
    pub fn inputs(&self) -> impl Iterator<Item = (AtomId, &AtomDef)> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a.kind, AtomKind::Input))
            .map(|(i, a)| (AtomId(i as u32), a))
    }

    /// All register atoms in creation order.
    pub fn regs(&self) -> impl Iterator<Item = (AtomId, &AtomDef)> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a.kind, AtomKind::Reg { .. }))
            .map(|(i, a)| (AtomId(i as u32), a))
    }

    /// Resolves a net binding by name.
    pub fn net(&self, name: &str) -> Option<&NetBinding> {
        self.nets.get(&self.syms.lookup(name)?)
    }

    /// Resolves a net binding by interned symbol (integer probe, no
    /// string hashing).
    pub fn net_sym(&self, sym: Symbol) -> Option<&NetBinding> {
        self.nets.get(&sym)
    }

    /// The text of an interned name.
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.syms.resolve(sym)
    }

    /// All nets with their resolved names (unordered, like iterating
    /// the map itself).
    pub fn net_names(&self) -> impl Iterator<Item = (&str, &NetBinding)> {
        self.nets.iter().map(|(s, b)| (self.syms.resolve(*s), b))
    }

    /// All unpacked arrays with their resolved names and element
    /// counts.
    pub fn array_names(&self) -> impl Iterator<Item = (&str, u32)> {
        self.arrays.iter().map(|(s, n)| (self.syms.resolve(*s), *n))
    }

    /// Element count of an unpacked array, by name.
    pub fn array(&self, name: &str) -> Option<u32> {
        self.arrays.get(&self.syms.lookup(name)?).copied()
    }

    /// FNV-1a content digest of the whole netlist: atoms (names,
    /// widths, driver structure), net and array bindings (sorted by
    /// resolved name, so the value is independent of both map iteration
    /// order and symbol numbering), parameters, and clock/reset names.
    ///
    /// Two netlists with identical logical content — even when built by
    /// different elaboration paths (one-pass vs. split, sequential vs.
    /// driver) — digest to the same value, which makes this usable as a
    /// compiled-design cache key component.
    pub fn content_digest(&self) -> u64 {
        use sv_ast::fnv1a as f;
        let mut h = sv_ast::FNV1A_SEED;
        h = f(h, &(self.atoms.len() as u64).to_le_bytes());
        for a in &self.atoms {
            h = f(h, a.name.as_bytes());
            h = f(h, &a.width.to_le_bytes());
            match &a.kind {
                AtomKind::Input => h = f(h, &[0]),
                AtomKind::Comb(e) => {
                    h = f(h, &[1]);
                    h = nx_digest(h, e);
                }
                AtomKind::Reg { next, init } => {
                    h = f(h, &[2]);
                    h = f(h, &init.to_le_bytes());
                    h = nx_digest(h, next);
                }
            }
        }
        let mut nets: Vec<(&str, &NetBinding)> = self.net_names().collect();
        nets.sort_by_key(|(n, _)| *n);
        for (n, b) in nets {
            h = f(h, n.as_bytes());
            h = f(h, &b.width.to_le_bytes());
            h = f(h, &b.elem_width.to_le_bytes());
            for s in &b.segs {
                h = f(h, &s.atom.0.to_le_bytes());
                h = f(h, &s.lo.to_le_bytes());
                h = f(h, &s.width.to_le_bytes());
            }
        }
        let mut arrays: Vec<(&str, u32)> = self.array_names().collect();
        arrays.sort_by_key(|(n, _)| *n);
        for (n, c) in arrays {
            h = f(h, n.as_bytes());
            h = f(h, &c.to_le_bytes());
        }
        for (n, v) in &self.params {
            h = f(h, n.as_bytes());
            h = f(h, &v.to_le_bytes());
        }
        for w in &self.warnings {
            h = f(h, w.as_bytes());
        }
        if let Some(n) = &self.reset_name {
            h = f(h, n.as_bytes());
        }
        if let Some(n) = &self.clock_name {
            h = f(h, n.as_bytes());
        }
        h
    }

    /// Topological order of combinational atoms (dependencies first).
    ///
    /// # Errors
    ///
    /// Returns the name of an atom on a combinational cycle.
    pub fn comb_topo_order(&self) -> Result<Vec<AtomId>, String> {
        let n = self.atoms.len();
        // 0 = unvisited, 1 = on stack, 2 = done
        let mut state = vec![0u8; n];
        let mut order = Vec::new();
        // Iterative DFS over comb atoms only.
        for start in 0..n {
            if !matches!(self.atoms[start].kind, AtomKind::Comb(_)) || state[start] == 2 {
                continue;
            }
            let mut stack: Vec<(usize, bool)> = vec![(start, false)];
            while let Some((id, expanded)) = stack.pop() {
                if expanded {
                    state[id] = 2;
                    order.push(AtomId(id as u32));
                    continue;
                }
                if state[id] == 2 {
                    continue;
                }
                if state[id] == 1 {
                    return Err(self.atoms[id].name.clone());
                }
                state[id] = 1;
                stack.push((id, true));
                if let AtomKind::Comb(e) = &self.atoms[id].kind {
                    let mut deps = Vec::new();
                    e.visit_atoms(&mut |a| deps.push(a));
                    for d in deps {
                        let di = d.index();
                        if matches!(self.atoms[di].kind, AtomKind::Comb(_)) {
                            if state[di] == 1 {
                                return Err(self.atoms[di].name.clone());
                            }
                            if state[di] == 0 {
                                stack.push((di, false));
                            }
                        }
                    }
                }
            }
        }
        Ok(order)
    }
}

/// Structural FNV-1a walk over a net expression (variant tag plus
/// every field), for [`Netlist::content_digest`].
fn nx_digest(mut h: u64, nx: &Nx) -> u64 {
    use sv_ast::fnv1a as f;
    match nx {
        Nx::Const { width, value } => {
            h = f(h, &[0]);
            h = f(h, &width.to_le_bytes());
            h = f(h, &value.to_le_bytes());
        }
        Nx::Atom(a) => {
            h = f(h, &[1]);
            h = f(h, &a.0.to_le_bytes());
        }
        Nx::Slice { inner, lo, width } => {
            h = f(h, &[2]);
            h = f(h, &lo.to_le_bytes());
            h = f(h, &width.to_le_bytes());
            h = nx_digest(h, inner);
        }
        Nx::DynSlice {
            inner,
            index,
            elem_width,
        } => {
            h = f(h, &[3]);
            h = f(h, &elem_width.to_le_bytes());
            h = nx_digest(h, inner);
            h = nx_digest(h, index);
        }
        Nx::Concat(parts) => {
            h = f(h, &[4]);
            h = f(h, &(parts.len() as u32).to_le_bytes());
            for p in parts {
                h = nx_digest(h, p);
            }
        }
        Nx::Not(i) => {
            h = f(h, &[5]);
            h = nx_digest(h, i);
        }
        Nx::Neg(i) => {
            h = f(h, &[6]);
            h = nx_digest(h, i);
        }
        Nx::Bin { op, a, b } => {
            h = f(h, &[7, *op as u8]);
            h = nx_digest(h, a);
            h = nx_digest(h, b);
        }
        Nx::Reduce { op, inner } => {
            h = f(h, &[8, *op as u8]);
            h = nx_digest(h, inner);
        }
        Nx::Mux { sel, t, e } => {
            h = f(h, &[9]);
            h = nx_digest(h, sel);
            h = nx_digest(h, t);
            h = nx_digest(h, e);
        }
        Nx::Countones { inner, width } => {
            h = f(h, &[10]);
            h = f(h, &width.to_le_bytes());
            h = nx_digest(h, inner);
        }
        Nx::Onehot(i) => {
            h = f(h, &[11]);
            h = nx_digest(h, i);
        }
        Nx::Onehot0(i) => {
            h = f(h, &[12]);
            h = nx_digest(h, i);
        }
        Nx::Resize { inner, width } => {
            h = f(h, &[13]);
            h = f(h, &width.to_le_bytes());
            h = nx_digest(h, inner);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netexpr::Nx;

    fn mk_netlist() -> Netlist {
        let mut nl = Netlist::default();
        nl.atoms.push(AtomDef {
            name: "a".into(),
            width: 4,
            kind: AtomKind::Input,
        });
        nl.atoms.push(AtomDef {
            name: "b".into(),
            width: 4,
            kind: AtomKind::Comb(Nx::Atom(AtomId(0))),
        });
        nl.atoms.push(AtomDef {
            name: "c".into(),
            width: 4,
            kind: AtomKind::Comb(Nx::Atom(AtomId(1))),
        });
        nl
    }

    #[test]
    fn topo_order_respects_deps() {
        let nl = mk_netlist();
        let order = nl.comb_topo_order().unwrap();
        assert_eq!(order, vec![AtomId(1), AtomId(2)]);
    }

    #[test]
    fn cycle_detected() {
        let mut nl = mk_netlist();
        // b depends on c, c depends on b.
        nl.atoms[1].kind = AtomKind::Comb(Nx::Atom(AtomId(2)));
        assert!(nl.comb_topo_order().is_err());
    }

    #[test]
    fn binding_read_range_stitches_segments() {
        let b = NetBinding {
            width: 8,
            elem_width: 1,
            segs: vec![
                Seg {
                    atom: AtomId(0),
                    lo: 0,
                    width: 4,
                },
                Seg {
                    atom: AtomId(1),
                    lo: 0,
                    width: 4,
                },
            ],
        };
        // Whole read concatenates both atoms.
        match b.read() {
            Nx::Concat(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected concat, got {other:?}"),
        }
        // A read inside one segment is a single slice.
        match b.read_range(1, 2) {
            Nx::Slice {
                lo: 1, width: 2, ..
            } => {}
            other => panic!("expected slice, got {other:?}"),
        }
        // A straddling read has two parts.
        match b.read_range(2, 4) {
            Nx::Concat(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected concat, got {other:?}"),
        }
    }
}
