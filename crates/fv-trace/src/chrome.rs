//! Chrome-trace (`about://tracing` / Perfetto) export of collected
//! spans.
//!
//! Spans render as complete events (`"ph":"X"`) with microsecond
//! timestamps. Nesting is implicit from timing on each `tid`, as the
//! Chrome format expects; the explicit `span_id`/`parent` pair is
//! also carried in `args` so tools (and the CI smoke test) can
//! reconstruct the tree without timestamp heuristics.

use crate::span::{AttrValue, SpanRecord};

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn attr_json(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::Bool(v) => v.to_string(),
        AttrValue::Str(v) => format!("\"{}\"", escape_json(v)),
    }
}

/// Renders spans as one Chrome-trace JSON document (object form, with
/// a `traceEvents` array). The output is valid JSON; load it in
/// `about://tracing` or `ui.perfetto.dev`.
pub fn render(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"fveval\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{{\"span_id\":{}",
            escape_json(span.name),
            span.start_us,
            span.dur_us,
            span.tid,
            span.id,
        ));
        if let Some(parent) = span.parent {
            out.push_str(&format!(",\"parent\":{parent}"));
        }
        for (key, value) in &span.attrs {
            out.push_str(&format!(",\"{}\":{}", escape_json(key), attr_json(value)));
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_carry_timing_parents_and_attrs() {
        let spans = vec![
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "sat.solve",
                tid: 3,
                start_us: 10,
                dur_us: 5,
                attrs: vec![
                    ("vars", AttrValue::U64(42)),
                    ("kind", AttrValue::Str("q\"x".into())),
                ],
            },
            SpanRecord {
                id: 1,
                parent: None,
                name: "prove.check",
                tid: 3,
                start_us: 8,
                dur_us: 20,
                attrs: vec![],
            },
        ];
        let out = render(&spans);
        assert!(out.contains("\"name\":\"sat.solve\""));
        assert!(out.contains("\"ts\":10,\"dur\":5"));
        assert!(out.contains("\"span_id\":2,\"parent\":1"));
        assert!(out.contains("\"vars\":42"));
        assert!(out.contains("\"kind\":\"q\\\"x\""));
        // The root span has no parent key.
        assert!(out.contains("\"args\":{\"span_id\":1}"));
        assert!(out.starts_with("{\"displayTimeUnit\""));
        assert!(out.trim_end().ends_with("]}"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        assert_eq!(
            render(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n"
        );
    }
}
