//! Runner for the Design2SVA sub-benchmark: responses are grafted onto
//! the testbench, elaborated with the design bound in, and checked with
//! the model-checking engine (BMC + k-induction).

use crate::engine::{design_task_specs, EvalEngine};
use crate::metrics::{CaseEvals, SampleEval};
use fv_core::{prove_with_stats, ProveConfig, ProveResult, ProverStats};
use fveval_data::DesignCase;
use fveval_llm::{Backend, InferenceConfig};
use sv_ast::{Expr, Instance, ModuleItem, SourceFile};
use sv_parser::{parse_snippet, parse_source};
use sv_synth::{elaborate_with_extras, Netlist};

/// Pre-parsed context for evaluating responses against one design.
#[derive(Debug)]
pub struct DesignEval {
    file: SourceFile,
    tb_top: String,
    dut_instance: ModuleItem,
    /// Parameter constants visible to assertions (state encodings).
    consts: Vec<(String, u32, u128)>,
}

/// Parses the design + testbench and builds the DUT binding — the
/// formal tool's elaboration step for a Design2SVA case.
///
/// # Errors
///
/// Returns a message if the (generated) collateral itself fails to
/// parse or elaborate — covered by dataset tests, so unexpected here.
pub fn bind_design(case: &DesignCase) -> Result<DesignEval, String> {
    let mut src = String::with_capacity(case.design_source.len() + case.tb_source.len() + 1);
    src.push_str(&case.design_source);
    src.push('\n');
    src.push_str(&case.tb_source);
    let file = parse_source(&src).map_err(|e| e.to_string())?;
    let design = file
        .module(&case.top)
        .ok_or_else(|| format!("missing design module {}", case.top))?;
    let conns: Vec<(String, Expr)> = design
        .port_order
        .iter()
        .map(|p| (p.clone(), Expr::ident(p.clone())))
        .collect();
    let dut_instance = ModuleItem::Instance(Instance {
        module: case.top.clone(),
        name: "dut".into(),
        params: vec![],
        conns,
    });
    // Elaborate once without a response to validate the collateral and
    // harvest testbench parameters.
    let base = elaborate_with_extras(&file, &case.tb_top, std::slice::from_ref(&dut_instance))
        .map_err(|e| e.to_string())?;
    let consts = base
        .params
        .iter()
        .map(|(n, v)| (n.clone(), 32u32, *v))
        .collect();
    Ok(DesignEval {
        file,
        tb_top: case.tb_top.clone(),
        dut_instance,
        consts,
    })
}

impl DesignEval {
    /// Elaborates the testbench with the response's helper items.
    fn netlist_with(&self, helpers: &[ModuleItem]) -> Result<Netlist, String> {
        let mut extras = Vec::with_capacity(helpers.len() + 1);
        extras.push(self.dut_instance.clone());
        extras.extend_from_slice(helpers);
        elaborate_with_extras(&self.file, &self.tb_top, &extras).map_err(|e| e.to_string())
    }
}

/// The Design2SVA evaluation loop.
#[derive(Debug, Clone)]
pub struct Design2svaRunner {
    prove_cfg: ProveConfig,
}

impl Default for Design2svaRunner {
    fn default() -> Design2svaRunner {
        Design2svaRunner::new()
    }
}

impl Design2svaRunner {
    /// Runner with default prover bounds.
    pub fn new() -> Design2svaRunner {
        Design2svaRunner {
            prove_cfg: ProveConfig::default(),
        }
    }

    /// Overrides the prover bounds.
    pub fn with_prove_config(mut self, cfg: ProveConfig) -> Design2svaRunner {
        self.prove_cfg = cfg;
        self
    }

    /// Scores one response snippet against a bound design.
    ///
    /// - parse failure, elaboration failure, missing assertion, or a
    ///   reference to an out-of-scope signal → `syntax = false`;
    /// - otherwise `syntax = true` and `func` = "the assertion was
    ///   proven" (the paper's Design2SVA functionality metric).
    pub fn evaluate_response(&self, bound: &DesignEval, response: &str) -> SampleEval {
        self.evaluate_response_stats(bound, response).0
    }

    /// [`Design2svaRunner::evaluate_response`], additionally reporting
    /// how the model checker discharged its queries (zero counters when
    /// scoring never reached the prover).
    pub fn evaluate_response_stats(
        &self,
        bound: &DesignEval,
        response: &str,
    ) -> (SampleEval, ProverStats) {
        let failed = (SampleEval::failed(), ProverStats::default());
        let items = match parse_snippet(response) {
            Ok(items) => items,
            Err(_) => return failed,
        };
        let mut helpers = Vec::new();
        let mut assertion = None;
        for item in items {
            match item {
                ModuleItem::Assertion(a) => {
                    if assertion.is_none() {
                        assertion = Some(a);
                    }
                }
                other => helpers.push(other),
            }
        }
        let Some(assertion) = assertion else {
            return failed;
        };
        let netlist = match bound.netlist_with(&helpers) {
            Ok(nl) => nl,
            Err(_) => return failed,
        };
        match prove_with_stats(&netlist, &assertion, &bound.consts, self.prove_cfg) {
            // Unknown signal inside the assertion (design-internal
            // reference) is an elaboration failure.
            Err(_) => failed,
            Ok((result, stats)) => {
                let proven = matches!(result, ProveResult::Proven { .. });
                (
                    SampleEval {
                        syntax: true,
                        func: proven,
                        partial: proven,
                        bleu: 0.0,
                    },
                    stats,
                )
            }
        }
    }

    /// Runs a model over a set of design cases with `n_samples` each
    /// (sequential convenience wrapper over [`EvalEngine`]; build an
    /// engine directly for parallelism and cross-run caching).
    pub fn run(
        &self,
        model: &dyn Backend,
        cases: &[DesignCase],
        cfg: &InferenceConfig,
        n_samples: u32,
    ) -> Vec<CaseEvals> {
        EvalEngine::with_jobs(1).with_d2s_runner(self.clone()).run(
            model,
            &design_task_specs(cases),
            cfg,
            n_samples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fveval_data::{generate_fsm, generate_pipeline, FsmParams, PipelineParams};

    fn fsm_case() -> DesignCase {
        generate_fsm(&FsmParams {
            n_states: 4,
            n_edges: 3,
            width: 8,
            guard_depth: 1,
            seed: 21,
        })
    }

    #[test]
    fn golden_assertions_score_func() {
        let case = fsm_case();
        let bound = bind_design(&case).unwrap();
        let runner = Design2svaRunner::new();
        for g in &case.golden {
            let e = runner.evaluate_response(&bound, g);
            assert!(e.syntax && e.func, "golden should prove: {g}");
        }
    }

    #[test]
    fn pipeline_golden_scores_func() {
        let case = generate_pipeline(&PipelineParams {
            n_units: 1,
            unit_depths: vec![2],
            width: 8,
            expr_ops: 2,
            seed: 3,
        });
        let bound = bind_design(&case).unwrap();
        let runner = Design2svaRunner::new();
        let e = runner.evaluate_response(&bound, &case.golden[0]);
        assert!(e.syntax && e.func);
    }

    #[test]
    fn malformed_scores_syntax_fail() {
        let case = fsm_case();
        let bound = bind_design(&case).unwrap();
        let runner = Design2svaRunner::new();
        let e = runner.evaluate_response(&bound, "assert property (@(posedge clk) (fsm_out");
        assert!(!e.syntax);
    }

    #[test]
    fn internal_signal_scores_syntax_fail() {
        let case = fsm_case();
        let bound = bind_design(&case).unwrap();
        let runner = Design2svaRunner::new();
        let e = runner.evaluate_response(
            &bound,
            "assert property (@(posedge clk) disable iff (tb_reset) (state == S0) |-> 1'b1);",
        );
        assert!(!e.syntax, "design-internal `state` must not resolve");
    }

    #[test]
    fn wrong_transition_scores_syntax_but_not_func() {
        let case = fsm_case();
        let bound = bind_design(&case).unwrap();
        // Claim S0 -> S0 which the ring backbone makes false unless the
        // graph happens to contain the self-loop; pick a definitely-wrong
        // one by asserting a transition to a state outside the real set.
        let (n, succs) = match &case.kind {
            fveval_data::DesignKind::Fsm {
                n_states,
                transitions,
                ..
            } => (*n_states, transitions[0].clone()),
            _ => unreachable!(),
        };
        let wrong = (0..n)
            .find(|t| !succs.contains(t))
            .expect("wrong successor");
        let runner = Design2svaRunner::new();
        let resp = format!(
            "assert property (@(posedge clk) disable iff (tb_reset) \
             (fsm_out == S0) |-> ##1 (fsm_out == S{wrong}));"
        );
        let e = runner.evaluate_response(&bound, &resp);
        assert!(e.syntax && !e.func, "{resp}");
    }

    #[test]
    fn helper_code_elaborates_into_scope() {
        let case = fsm_case();
        let bound = bind_design(&case).unwrap();
        let succs = match &case.kind {
            fveval_data::DesignKind::Fsm { transitions, .. } => transitions[1].clone(),
            _ => unreachable!(),
        };
        let disj = succs
            .iter()
            .map(|t| format!("(mirror == S{t})"))
            .collect::<Vec<_>>()
            .join(" || ");
        let resp = format!(
            "logic [FSM_WIDTH-1:0] mirror;\nassign mirror = fsm_out;\n\
             assert property (@(posedge clk) disable iff (tb_reset) \
             (mirror == S1) |-> ##1 ({disj}));"
        );
        let runner = Design2svaRunner::new();
        let e = runner.evaluate_response(&bound, &resp);
        assert!(e.syntax && e.func, "{resp}");
    }
}
