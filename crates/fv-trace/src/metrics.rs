//! Counters, gauges, and log2-bucket latency histograms behind
//! stable dotted names.
//!
//! Counters and gauges live in small global maps guarded by a mutex —
//! they are recorded at coarse choke points (per check, per flush),
//! never per clause. Histograms are hotter (one observation per span)
//! so they use per-thread shards: each thread owns a private
//! [`AtomicHistogram`] per metric name, found through a thread-local
//! cache (no lock, no contention) and bumped with relaxed atomic
//! adds. [`snapshot`] merges every thread's shards into plain
//! [`Histogram`] values without pausing writers.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 buckets. Bucket `i` (for `i >= 1`) holds values `v`
/// with `bit_len(v) == i`, i.e. `2^(i-1) <= v < 2^i`; bucket 0 holds
/// exactly zero. 64 buckets cover the full `u64` range.
pub const BUCKETS: usize = 65;

/// Bucket index for one observation: `0` for zero, else the value's
/// bit length (so the bucket's inclusive upper bound is `2^i - 1`).
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`0`, `1`, `3`, `7`, …);
/// `u64::MAX` for the last bucket.
pub fn bucket_le(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A plain-value log2 histogram: per-bucket counts plus the total
/// observation count and sum. This is the merge/value type — the
/// lock-free recording side is [`AtomicHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket observation counts, indexed by [`bucket_of`].
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Folds another histogram (e.g. one thread's shard) into this
    /// one. Merging is associative and commutative: any grouping of
    /// shards produces the same totals.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// The lock-free recording side of a histogram: one per (thread,
/// metric name), bumped with relaxed atomic adds.
pub struct AtomicHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> AtomicHistogram {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation (relaxed atomics; no locks).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Loads the current contents as a plain [`Histogram`].
    pub fn load(&self) -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Global registry state: counters, gauges, and the list of every
/// thread's histogram shards (kept alive past thread exit so totals
/// stay cumulative).
struct Registry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, i64>>,
    shards: Mutex<Vec<(&'static str, Arc<AtomicHistogram>)>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        shards: Mutex::new(Vec::new()),
    })
}

thread_local! {
    /// This thread's histogram shards, keyed by metric name.
    static LOCAL_HISTS: RefCell<HashMap<&'static str, Arc<AtomicHistogram>>> =
        RefCell::new(HashMap::new());
}

/// Adds `delta` to the counter `name` (dotted, e.g. `serve.flushes`).
pub fn counter_add(name: &'static str, delta: u64) {
    let mut counters = registry().counters.lock().unwrap();
    *counters.entry(name).or_insert(0) += delta;
}

/// Sets the gauge `name` to `value`.
pub fn gauge_set(name: &'static str, value: i64) {
    registry().gauges.lock().unwrap().insert(name, value);
}

/// Records one observation into the histogram `name`. The fast path
/// (shard already exists on this thread) is a thread-local hash
/// lookup plus three relaxed atomic adds.
pub fn observe(name: &'static str, value: u64) {
    LOCAL_HISTS.with(|local| {
        let mut local = local.borrow_mut();
        let shard = local.entry(name).or_insert_with(|| {
            let shard = Arc::new(AtomicHistogram::new());
            registry()
                .shards
                .lock()
                .unwrap()
                .push((name, Arc::clone(&shard)));
            shard
        });
        shard.record(value);
    });
}

/// Records a span duration into the `span.<name>.us` histogram.
/// Span names are interned so the combined name is `&'static str`
/// (allocated once per distinct span name for the process lifetime).
pub(crate) fn observe_span_us(span_name: &'static str, dur_us: u64) {
    static INTERNED: OnceLock<Mutex<HashMap<&'static str, &'static str>>> = OnceLock::new();
    thread_local! {
        static CACHE: RefCell<HashMap<&'static str, &'static str>> = RefCell::new(HashMap::new());
    }
    let metric = CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        *cache.entry(span_name).or_insert_with(|| {
            let mut interned = INTERNED
                .get_or_init(|| Mutex::new(HashMap::new()))
                .lock()
                .unwrap();
            interned
                .entry(span_name)
                .or_insert_with(|| Box::leak(format!("span.{span_name}.us").into_boxed_str()))
        })
    });
    observe(metric, dur_us);
}

/// A point-in-time copy of every metric, with histogram shards merged
/// per name. Maps are `BTreeMap`s so iteration (and therefore every
/// rendering) is deterministically sorted.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by dotted name.
    pub gauges: BTreeMap<String, i64>,
    /// Merged histograms by dotted name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Takes a cumulative snapshot of the registry. Writers are not
/// paused; each shard is read atomically bucket-by-bucket, which can
/// lag `count` by in-flight observations but never invents data.
pub fn snapshot() -> Snapshot {
    let registry = registry();
    let counters = registry
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(&k, &v)| (k.to_string(), v))
        .collect();
    let gauges = registry
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|(&k, &v)| (k.to_string(), v))
        .collect();
    let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
    for (name, shard) in registry.shards.lock().unwrap().iter() {
        histograms
            .entry(name.to_string())
            .or_default()
            .merge(&shard.load());
    }
    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            let le = bucket_le(i);
            assert_eq!(bucket_of(le), i, "upper bound lands in its bucket");
            if le < u64::MAX {
                assert_eq!(bucket_of(le + 1), i + 1, "successor spills over");
            }
        }
    }

    #[test]
    fn record_and_merge_agree_with_direct_counts() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [0u64, 1, 1, 7, 8, 1000, u64::MAX] {
            a.record(v);
        }
        for v in [3u64, 4, 5] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 10);
        assert_eq!(merged.buckets.iter().sum::<u64>(), merged.count);
        let mut swapped = b.clone();
        swapped.merge(&a);
        assert_eq!(merged, swapped, "merge commutes");
    }

    #[test]
    fn registry_counters_gauges_and_shards_round_trip() {
        counter_add("test.metrics.counter", 2);
        counter_add("test.metrics.counter", 3);
        gauge_set("test.metrics.gauge", -7);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for v in 0..100u64 {
                        observe("test.metrics.hist", v);
                    }
                });
            }
        });
        let snap = snapshot();
        assert!(snap.counters["test.metrics.counter"] >= 5);
        assert_eq!(snap.gauges["test.metrics.gauge"], -7);
        let hist = &snap.histograms["test.metrics.hist"];
        assert!(
            hist.count >= 300,
            "all three threads merged: {}",
            hist.count
        );
        assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);
    }
}
