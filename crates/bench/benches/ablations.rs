//! Ablation benches for the formal core's main design choices:
//!
//! - **Horizon sensitivity** — how the equivalence-check cost grows
//!   with the bounded-trace horizon slack.
//! - **Induction depth** — k-induction cost versus `max_induction`.
//! - **Formal vs. simulation** — the cost (and soundness gap) of
//!   replacing the formal equivalence verdict by random-simulation
//!   differential testing: simulation misses the weak/strong partial
//!   cases that the paper's metric depends on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fv_core::{check_equivalence, compile_expr, EquivConfig, FreeTraceEnv, SignalTable};
use fveval_data::{generate_fsm, FsmParams};
use std::hint::black_box;
use std::time::Duration;
use sv_parser::parse_assertion_str;

fn table() -> SignalTable {
    [("wr_push", 1u32), ("rd_pop", 1), ("tb_reset", 1)]
        .into_iter()
        .collect()
}

fn bench_horizon_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_horizon");
    g.sample_size(20);
    let reference = parse_assertion_str(
        "assert property (@(posedge clk) disable iff (tb_reset) \
         wr_push |-> strong(##[0:$] rd_pop));",
    )
    .unwrap();
    let candidate = parse_assertion_str(
        "assert property (@(posedge clk) disable iff (tb_reset) \
         wr_push |-> ##[1:$] rd_pop);",
    )
    .unwrap();
    let t = table();
    for slack in [2u32, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("slack", slack), &slack, |b, &slack| {
            let cfg = EquivConfig {
                slack,
                max_horizon: 128,
            };
            b.iter(|| black_box(check_equivalence(&reference, &candidate, &t, cfg).unwrap()))
        });
    }
    g.finish();
}

fn bench_induction_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_induction");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let case = generate_fsm(&FsmParams {
        n_states: 6,
        n_edges: 8,
        width: 16,
        guard_depth: 2,
        seed: 51,
    });
    let bound = fveval_core::compile_design(&case).unwrap();
    for k in [2u32, 4, 8] {
        let runner = fveval_core::Design2svaRunner::new().with_prove_config(fv_core::ProveConfig {
            max_bmc: 12,
            max_induction: k,
            slack: 4,
            ..fv_core::ProveConfig::default()
        });
        let golden = case.golden[0].clone();
        g.bench_with_input(BenchmarkId::new("max_k", k), &k, |b, _| {
            b.iter(|| black_box(runner.evaluate_response(&bound, &golden)))
        });
    }
    g.finish();
}

/// Simulation-based "equivalence": evaluate both assertions on N random
/// traces and compare verdicts — the approach the paper rejects in
/// favour of formal equivalence. Always reports "equivalent" for the
/// weak/strong pair because no finite random trace distinguishes a weak
/// obligation from a strong one within the window.
fn simulation_equivalent(reference: &str, candidate: &str, traces: usize) -> bool {
    use fv_aig::{Aig, AigEvaluator};
    use fv_core::encode_assertion;

    let r = parse_assertion_str(reference).unwrap();
    let c = parse_assertion_str(candidate).unwrap();
    let t = table();
    let mut g = Aig::new();
    let mut env = FreeTraceEnv::new(&t);
    let lr = encode_assertion(&mut g, &r, 6, &mut env).unwrap();
    let lc = encode_assertion(&mut g, &c, 6, &mut env).unwrap();
    // Deterministic pseudo-random stimulus over the allocated inputs.
    let mut seed = 0xACE1u64;
    let mut agree = true;
    for _ in 0..traces {
        let n_inputs = g.num_inputs();
        let mut values = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            values.push(seed & 1 == 1);
        }
        let ev = AigEvaluator::combinational(&g, &values);
        if ev.lit(lr) != ev.lit(lc) {
            agree = false;
            break;
        }
    }
    agree
}

fn bench_formal_vs_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_formal_vs_sim");
    g.sample_size(20);
    let reference = "assert property (@(posedge clk) disable iff (tb_reset) \
                     wr_push |-> strong(##[0:$] rd_pop));";
    let candidate = "assert property (@(posedge clk) disable iff (tb_reset) \
                     wr_push |-> ##[1:$] rd_pop);";
    // Correctness context: simulation cannot distinguish the pair that
    // formal analysis proves one-way implied (the partial metric).
    assert!(
        simulation_equivalent(reference, candidate, 256),
        "random simulation wrongly reports equivalence (motivates the formal metric)"
    );
    let r = parse_assertion_str(reference).unwrap();
    let cd = parse_assertion_str(candidate).unwrap();
    let t = table();
    assert!(
        !check_equivalence(&r, &cd, &t, EquivConfig::default())
            .unwrap()
            .verdict
            .is_equivalent(),
        "formal analysis distinguishes the pair"
    );
    g.bench_function("formal_equivalence", |b| {
        b.iter(|| black_box(check_equivalence(&r, &cd, &t, EquivConfig::default()).unwrap()))
    });
    for traces in [64usize, 256] {
        g.bench_with_input(
            BenchmarkId::new("simulation_traces", traces),
            &traces,
            |b, &n| b.iter(|| black_box(simulation_equivalent(reference, candidate, n))),
        );
    }
    g.finish();
}

fn bench_strash_effect(c: &mut Criterion) {
    // Structural hashing keeps repeated monitor encodings shared; this
    // bench quantifies the encoding cost of a wide expression with and
    // without sharing opportunities.
    let mut g = c.benchmark_group("ablation_strash");
    g.sample_size(30);
    let t: SignalTable = [("x", 64u32)].into_iter().collect();
    let shared = sv_parser::parse_expr_str("(x + x) ^ (x + x) ^ (x + x)").unwrap();
    let chain = sv_parser::parse_expr_str("((x + 1) ^ (x + 2)) + ((x + 3) ^ (x + 4))").unwrap();
    g.bench_function("shared_subterms", |b| {
        b.iter(|| {
            let mut aig = fv_aig::Aig::new();
            let mut env = FreeTraceEnv::new(&t);
            black_box(compile_expr(&mut aig, &shared, 0, &mut env).unwrap());
            black_box(aig.num_ands())
        })
    });
    g.bench_function("distinct_subterms", |b| {
        b.iter(|| {
            let mut aig = fv_aig::Aig::new();
            let mut env = FreeTraceEnv::new(&t);
            black_box(compile_expr(&mut aig, &chain, 0, &mut env).unwrap());
            black_box(aig.num_ands())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_horizon_sensitivity,
    bench_induction_depth,
    bench_formal_vs_simulation,
    bench_strash_effect
);
criterion_main!(benches);
