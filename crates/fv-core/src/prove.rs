//! Model checking: is an assertion *proven* on a design?
//!
//! This is the Design2SVA functional metric. The engine runs bounded
//! model checking (counterexample search) over unrolled time frames,
//! then k-induction for a proof. Properties with unbounded temporal
//! operators are reported [`ProveResult::Undetermined`] (the bounded
//! engine cannot conclude liveness), matching how a tool timeout is
//! scored.
//!
//! # Incremental architecture
//!
//! One invocation builds **one** shared unrolled formula and drives
//! every query through **one** reused [`Solver`]:
//!
//! - Time frames start from a *free* (symbolic) initial state; the
//!   reset values are asserted as a selector-guarded clause group
//!   ([`Solver::add_clause_selected`]). BMC queries assume the
//!   selector; k-induction step queries simply omit it — no second
//!   solver, no re-encoding.
//! - Frames and per-anchor monitors are encoded lazily into one
//!   structurally-hashed [`Aig`]; anchor `t`'s monitor is shared
//!   verbatim between its BMC query and every induction query that
//!   assumes or targets it.
//! - Before any SAT call, each BMC anchor is attacked by ternary
//!   simulation (reset state pinned, inputs `X` — a constant-false
//!   violation target needs no solver) and by 64-way random simulation
//!   (a witness pattern *is* a counterexample). Only survivors reach
//!   the CDCL solver.
//! - Every counterexample is replay-validated: in debug builds the
//!   trace is re-run through the cycle-accurate [`sv_synth::Simulator`]
//!   and the assertion is re-evaluated concretely
//!   ([`replay_design_cex`] exposes the same check to tests).

use crate::cex::CexValue;
use crate::env::{DesignTraceEnv, TraceEnv};
use crate::error::EncodeError;
use crate::monitor::{encode_assertion_at, horizon_for};
use crate::rng::splitmix64;
use crate::stats::ProverStats;
use fv_aig::{Aig, AigEvaluator, AigLit, BitSim, BitVec, CnfEmitter, SimSlot, Ternary, TernarySim};
use fv_sat::{Lit, Solver};
use std::collections::HashMap;
use sv_ast::Assertion;
use sv_synth::{AtomId, FrameExpander, NetBinding, Netlist, Simulator};

/// Which proof engine(s) answer a check (see [`ProveConfig::engine`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ProveEngine {
    /// The interleaved BMC + k-induction schedule (the default). Fully
    /// deterministic, but bounded: properties whose inductive depth
    /// exceeds `max_induction` come back
    /// [`ProveResult::Undetermined`].
    #[default]
    Bounded,
    /// The IC3/PDR engine alone (see [`crate::prove_pdr`]). Unbounded
    /// in depth, budgeted in work.
    Pdr,
    /// Race the bounded schedule against PDR on scoped threads with
    /// first-answer-wins cancellation. Verdicts are engine-agnostic
    /// (the engines agree whenever both conclude) and counterexample
    /// traces always come from the deterministic bounded schedule when
    /// it falsifies, so reported results match `Bounded` byte-for-byte
    /// except that deep proofs the bounded schedule cannot close are
    /// rescued by PDR.
    Portfolio,
}

/// Configuration for the prover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProveConfig {
    /// Maximum BMC depth (number of anchor cycles checked).
    pub max_bmc: u32,
    /// Maximum k for k-induction.
    pub max_induction: u32,
    /// Horizon slack (see [`crate::EquivConfig::slack`]).
    pub slack: u32,
    /// Which engine(s) answer each check.
    pub engine: ProveEngine,
    /// Wall-clock budget per check for the PDR engine, in milliseconds
    /// (`0` disables the wall clock; PDR's deterministic conflict
    /// budget still bounds its work). Only hard instances ever reach
    /// the budget — reported verdicts for suite scenarios are decided
    /// long before it.
    pub prove_budget_ms: u64,
}

impl Default for ProveConfig {
    fn default() -> ProveConfig {
        ProveConfig {
            max_bmc: 12,
            max_induction: 6,
            slack: 4,
            engine: ProveEngine::Bounded,
            prove_budget_ms: 10_000,
        }
    }
}

/// A concrete counterexample trace from BMC.
///
/// # Trace format
///
/// `inputs` holds one [`CexValue`] per `(primary input, frame)` pair,
/// sorted by frame then input name; the trace starts at the reset state
/// (frame 0) and `anchor` names the evaluation attempt that is
/// violated. `Display` renders values as SystemVerilog sized literals
/// at each input's declared width:
///
/// ```text
/// violation of attempt anchored at cycle 2:
///   cycle   0: in_vld = 1'b1
///   cycle   1: in_data = 8'h1f
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DesignCex {
    /// Anchor cycle of the violated evaluation attempt.
    pub anchor: u32,
    /// The stimuli, sorted by `(frame, input)`.
    pub inputs: Vec<CexValue>,
}

impl std::fmt::Display for DesignCex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation of attempt anchored at cycle {}:", self.anchor)?;
        crate::cex::fmt_trace(&self.inputs, f)
    }
}

/// Outcome of [`prove`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProveResult {
    /// Proven by k-induction at the given k (with BMC base).
    Proven {
        /// Induction depth that closed the proof.
        k: u32,
    },
    /// Falsified: a reachable violation exists.
    Falsified {
        /// The counterexample.
        cex: DesignCex,
    },
    /// Bounds exhausted without a verdict (scored as not-proven).
    Undetermined,
}

impl ProveResult {
    /// The Design2SVA functional metric: the assertion was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, ProveResult::Proven { .. })
    }
}

/// Checks `assertion` against the elaborated design `netlist`.
///
/// The design starts from its reset state with the reset input held
/// deasserted. `consts` provides testbench parameter bindings (state
/// encodings such as `S0`) visible to the assertion.
///
/// # Errors
///
/// [`EncodeError`] when the assertion references signals absent from
/// the testbench scope (including design-internal signals the prompt
/// forbids) — scored as an elaboration failure.
///
/// # Examples
///
/// ```
/// use fv_core::{prove, ProveConfig};
/// use sv_parser::{parse_assertion_str, parse_source};
/// use sv_synth::elaborate;
///
/// let f = parse_source(
///     "module m (clk, en, q);\ninput clk; input en; output q;\n\
///      reg r;\nalways @(posedge clk) begin r <= en; end\n\
///      assign q = r;\nendmodule\n",
/// )
/// .unwrap();
/// let nl = elaborate(&f, "m").unwrap();
/// let a = parse_assertion_str("assert property (@(posedge clk) en |-> ##1 q);").unwrap();
/// assert!(prove(&nl, &a, &[], ProveConfig::default()).unwrap().is_proven());
/// ```
pub fn prove(
    netlist: &Netlist,
    assertion: &Assertion,
    consts: &[(String, u32, u128)],
    cfg: ProveConfig,
) -> Result<ProveResult, EncodeError> {
    prove_with_stats(netlist, assertion, consts, cfg).map(|(r, _)| r)
}

/// [`prove`], additionally reporting how the queries were discharged.
///
/// One-shot convenience over [`ProofSession`]: opens a session, checks
/// the single assertion, and returns the session's counters (so
/// `sessions_opened == session_checks == 1`). Scoring many candidate
/// assertions against the same design should open one session instead.
pub fn prove_with_stats(
    netlist: &Netlist,
    assertion: &Assertion,
    consts: &[(String, u32, u128)],
    cfg: ProveConfig,
) -> Result<(ProveResult, ProverStats), EncodeError> {
    if assertion.body.has_unbounded() {
        return Ok((ProveResult::Undetermined, ProverStats::default()));
    }
    let mut session = ProofSession::open(netlist, consts, cfg)?;
    let (result, _) = session.check(assertion)?;
    Ok((result, session.stats()))
}

/// A long-lived proof context for one design: one shared unrolled
/// formula, one reused solver, one set of simulators — checking a
/// *stream* of candidate assertions against the same elaborated
/// netlist.
///
/// This is the score-many half of the compile-once / score-many
/// Design2SVA flow. Everything a fresh [`prove`] call would rebuild per
/// candidate amortizes across the whole stream:
///
/// - **Time frames**: the free-initial-state unrolling lives in the
///   session's [`DesignTraceEnv`]; a candidate needing `k` frames
///   reuses every frame an earlier candidate already expanded
///   ([`ProverStats::unroll_reuse_hits`] counts the frames served this
///   way).
/// - **Monitors**: candidate monitors are appended to the shared
///   structurally-hashed [`Aig`], so identical assertions (the same
///   response text from different models or samples) fold to the same
///   literal and their CNF is emitted once.
/// - **Solver state**: one [`Solver`] answers every query. Reset
///   pinning is a selector-guarded clause group installed once; each
///   query activates exactly the monitor cone and reset group it needs
///   through `solve_with` assumption literals, so learned clauses and
///   variable activities carry across candidates
///   ([`ProverStats::solver_reuse_hits`]).
///
/// Verdicts are *path-independent*: a session returns the same
/// [`ProveResult`] kind for a candidate as a fresh [`prove`] call
/// (counterexample traces may differ in their concrete stimuli, but
/// every trace replays on the reference simulator — debug builds assert
/// it).
///
/// # Examples
///
/// ```
/// use fv_core::{ProofSession, ProveConfig};
/// use sv_parser::{parse_assertion_str, parse_source};
/// use sv_synth::elaborate;
///
/// let f = parse_source(
///     "module m (clk, en, q);\ninput clk; input en; output q;\n\
///      reg r;\nalways @(posedge clk) begin r <= en; end\n\
///      assign q = r;\nendmodule\n",
/// )
/// .unwrap();
/// let nl = elaborate(&f, "m").unwrap();
/// let mut session = ProofSession::open(&nl, &[], ProveConfig::default()).unwrap();
/// for text in [
///     "assert property (@(posedge clk) en |-> ##1 q);",
///     "assert property (@(posedge clk) en |-> ##1 !q);",
/// ] {
///     let a = parse_assertion_str(text).unwrap();
///     let (_result, _check_stats) = session.check(&a).unwrap();
/// }
/// let stats = session.stats();
/// assert_eq!(stats.sessions_opened, 1);
/// assert_eq!(stats.session_checks, 2);
/// ```
pub struct ProofSession<'n> {
    pub(crate) netlist: &'n Netlist,
    pub(crate) consts: Vec<(String, u32, u128)>,
    pub(crate) cfg: ProveConfig,
    g: Aig,
    env: DesignTraceEnv<'n>,
    pub(crate) solver: Solver,
    em: CnfEmitter,
    /// Selector assumed by BMC queries to pin frame 0 to reset.
    init_sel: Lit,
    /// Initial-state bits already pinned into the selector group.
    init_pinned: usize,
    solver_used: bool,
    sim: BitSim,
    tern: TernarySim,
    rng: u64,
    /// Simulation-forced input words (frame-0 registers at reset).
    forced: HashMap<u32, bool>,
    forced_known: usize,
    /// Cumulative counters; `sessions_opened` is charged to the first
    /// check (see [`ProofSession::stats`]).
    pub(crate) stats: ProverStats,
}

impl<'n> ProofSession<'n> {
    /// Opens a proof context over an elaborated design. `consts`
    /// provides testbench parameter bindings (state encodings such as
    /// `S0`) visible to every candidate assertion.
    ///
    /// # Errors
    ///
    /// [`EncodeError::Unsupported`] if the netlist has a combinational
    /// cycle (already rejected by elaboration, so unexpected for
    /// netlists produced by `sv_synth::elaborate`).
    pub fn open(
        netlist: &'n Netlist,
        consts: &[(String, u32, u128)],
        cfg: ProveConfig,
    ) -> Result<ProofSession<'n>, EncodeError> {
        let _span = fv_trace::span!("session.open", atoms = netlist.atoms.len());
        let expander = FrameExpander::new(netlist)
            .map_err(|n| EncodeError::Unsupported(format!("combinational cycle through '{n}'")))?;
        let mut env = DesignTraceEnv::new(expander).with_free_initial_state();
        for (n, w, v) in consts {
            env.bind_const(n.clone(), *w, *v);
        }
        let mut solver = Solver::new();
        let init_sel = solver.new_selector();
        Ok(ProofSession {
            netlist,
            consts: consts.to_vec(),
            cfg,
            g: Aig::new(),
            env,
            solver,
            em: CnfEmitter::new(),
            init_sel,
            init_pinned: 0,
            solver_used: false,
            sim: BitSim::new(),
            tern: TernarySim::new(),
            rng: 0x0BAD_5EED_F00D,
            forced: HashMap::new(),
            forced_known: 0,
            stats: ProverStats::default(),
        })
    }

    /// The prover bounds this session was opened with.
    pub fn config(&self) -> ProveConfig {
        self.cfg
    }

    /// Cumulative counters over the session's lifetime. A session that
    /// checked at least one candidate reports `sessions_opened = 1`
    /// (the open is charged to the first check, so aggregating
    /// per-check deltas yields the same totals).
    pub fn stats(&self) -> ProverStats {
        self.stats
    }

    /// Checks one candidate assertion against the shared proof context,
    /// running the interleaved BMC + k-induction schedule on the shared
    /// unrolling. Returns the verdict plus the counter *delta* this
    /// check added (the first check's delta carries the session's
    /// `sessions_opened`).
    ///
    /// # Errors
    ///
    /// [`EncodeError`] when the assertion references signals absent
    /// from the design scope — scored as an elaboration failure, like
    /// [`prove`]. The session stays usable for further candidates.
    pub fn check(
        &mut self,
        assertion: &Assertion,
    ) -> Result<(ProveResult, ProverStats), EncodeError> {
        let mut span = fv_trace::span!("prove.check");
        if span.is_active() {
            span.attr(
                "engine",
                match self.cfg.engine {
                    ProveEngine::Bounded => "bounded",
                    ProveEngine::Pdr => "pdr",
                    ProveEngine::Portfolio => "portfolio",
                },
            );
        }
        let before = self.stats;
        // The open is charged to the first check so that summing
        // per-check deltas reproduces the cumulative counters.
        self.stats.sessions_opened = 1;
        self.stats.session_checks += 1;
        if assertion.body.has_unbounded() {
            span.attr("result", "undetermined");
            return Ok((ProveResult::Undetermined, self.stats.delta_since(&before)));
        }
        let horizon = horizon_for(assertion, None, self.cfg.slack);
        let outcome = match self.cfg.engine {
            ProveEngine::Bounded => self.check_bounded(assertion, horizon),
            ProveEngine::Pdr => self.check_pdr(assertion),
            ProveEngine::Portfolio => crate::portfolio::race(self, assertion, horizon),
        };
        let outcome = outcome?;
        if span.is_active() {
            span.attr(
                "result",
                match &outcome {
                    ProveResult::Proven { .. } => "proven",
                    ProveResult::Falsified { .. } => "falsified",
                    ProveResult::Undetermined => "undetermined",
                },
            );
            span.attr("sat_calls", self.stats.sat_calls - before.sat_calls);
        }
        Ok((outcome, self.stats.delta_since(&before)))
    }

    /// The bounded BMC + k-induction check on the shared unrolling,
    /// with the session's frame-reuse accounting.
    pub(crate) fn check_bounded(
        &mut self,
        assertion: &Assertion,
        horizon: u32,
    ) -> Result<ProveResult, EncodeError> {
        let frames_before = self.env.num_frames() as u64;
        self.env.reset_touched_frames();
        let outcome = self.run_schedule(assertion, horizon);
        // Frames this check actually revisited that were already
        // unrolled by earlier candidates — counted even when the check
        // errors mid-encode, since the work served was real.
        let frames_used = u64::from(self.env.touched_frames());
        self.stats.unroll_reuse_hits += frames_before.min(frames_used);
        outcome
    }

    /// Discharges one check through the PDR engine alone. PDR builds
    /// its own single-step encoding (its frames are clause groups, not
    /// unrolled time frames), so the session's shared unrolling is
    /// untouched.
    fn check_pdr(&mut self, assertion: &Assertion) -> Result<ProveResult, EncodeError> {
        let out = crate::pdr::run_pdr(
            self.netlist,
            assertion,
            &self.consts,
            self.cfg,
            None,
            &mut self.stats,
        )?;
        if !matches!(out.result, ProveResult::Undetermined) {
            self.stats.pdr_wins += 1;
        }
        Ok(out.result)
    }

    /// The interleaved BMC + k-induction schedule over the one shared
    /// formula: after BMC has cleared anchors `0..k` (the base case),
    /// try the consecution query at `k`. A property inductive at small
    /// k is proven after O(k) queries instead of a full BMC sweep; a
    /// falsifiable one still meets its earliest violating anchor first,
    /// because anchors are cleared in ascending order.
    fn run_schedule(
        &mut self,
        assertion: &Assertion,
        horizon: u32,
    ) -> Result<ProveResult, EncodeError> {
        let cfg = self.cfg;
        let mut holds: Vec<AigLit> = Vec::new();
        let mut bmc_done = 0u32;
        for k in 1..=cfg.max_induction.min(cfg.max_bmc) {
            while bmc_done < k {
                if let Some(cex) = self.bmc_check(assertion, horizon, &mut holds, bmc_done)? {
                    self.debug_replay(assertion, &cex);
                    return Ok(ProveResult::Falsified { cex });
                }
                bmc_done += 1;
            }
            if self.induction_check(assertion, horizon, &mut holds, k)? {
                return Ok(ProveResult::Proven { k });
            }
        }
        // ---- Induction exhausted: finish the BMC sweep. ----
        for t in bmc_done..cfg.max_bmc {
            if let Some(cex) = self.bmc_check(assertion, horizon, &mut holds, t)? {
                self.debug_replay(assertion, &cex);
                return Ok(ProveResult::Falsified { cex });
            }
        }
        Ok(ProveResult::Undetermined)
    }

    fn debug_replay(&self, assertion: &Assertion, cex: &DesignCex) {
        debug_assert_eq!(
            replay_design_cex(self.netlist, assertion, &self.consts, self.cfg, cex),
            Ok(true),
            "counterexample must replay in sv-synth::sim"
        );
    }

    /// Ensures monitors for anchors `0..=t` of this candidate exist on
    /// the shared graph, registering newly created frame-0 register
    /// inputs as simulation-forced.
    fn ensure_anchor(
        &mut self,
        assertion: &Assertion,
        horizon: u32,
        holds: &mut Vec<AigLit>,
        t: u32,
    ) -> Result<AigLit, EncodeError> {
        while holds.len() <= t as usize {
            let anchor = holds.len() as u32;
            let h = encode_assertion_at(
                &mut self.g,
                assertion,
                anchor,
                anchor + horizon,
                &mut self.env,
            )?;
            let bits = self.env.initial_state_bits();
            for &(bit, init) in &bits[self.forced_known..] {
                let idx = self
                    .g
                    .input_index(bit.node())
                    .expect("free initial state bits are primary inputs");
                self.forced.insert(idx, init ^ bit.is_inverted());
            }
            self.forced_known = self.env.initial_state_bits().len();
            holds.push(h);
        }
        Ok(holds[t as usize])
    }

    fn count_sat_call(&mut self) {
        self.stats.sat_calls += 1;
        if self.solver_used {
            self.stats.solver_reuse_hits += 1;
        }
        self.solver_used = true;
    }

    /// BMC base-case check for anchor `t`: ternary simulation, then
    /// random simulation, then SAT under the reset-state selector.
    /// Returns a counterexample if the attempt at `t` can be violated.
    fn bmc_check(
        &mut self,
        assertion: &Assertion,
        horizon: u32,
        holds: &mut Vec<AigLit>,
        t: u32,
    ) -> Result<Option<DesignCex>, EncodeError> {
        let h = self.ensure_anchor(assertion, horizon, holds, t)?;
        // The unrolled formula is purely combinational; a latch node
        // would make the zero-filled latch slots below a fabricated
        // "witness" instead of a real one.
        debug_assert_eq!(
            self.g.num_latches(),
            0,
            "simulation witnesses assume a latch-free unrolling"
        );

        // Layer 1: ternary simulation — reset state pinned, inputs X.
        // A constant-false violation target needs no search at all.
        let forced = &self.forced;
        self.tern.extend(&self.g, &mut |slot| match slot {
            SimSlot::Input(k) => forced
                .get(&k)
                .map_or(Ternary::Unknown, |&b| Ternary::known(b)),
            SimSlot::Latch(_) => Ternary::Unknown,
        });
        if self.tern.lit(!h) == Ternary::False {
            self.stats.ternary_kills += 1;
            return Ok(None);
        }

        // Layer 2: random simulation — any pattern violating the
        // attempt is already a full counterexample.
        let rng = &mut self.rng;
        self.sim.extend(&self.g, &mut |slot| match slot {
            SimSlot::Input(k) => match forced.get(&k) {
                Some(true) => u64::MAX,
                Some(false) => 0,
                None => splitmix64(rng),
            },
            SimSlot::Latch(_) => 0,
        });
        let w = self.sim.lit(!h);
        if w != 0 {
            self.stats.sim_kills += 1;
            return Ok(Some(sim_cex(&self.env, &self.sim, w.trailing_zeros(), t)));
        }

        // Layer 3: SAT under the reset-state selector group. New
        // initial-state bits only appear when frame 0 is first built,
        // so across a whole session this pins each bit exactly once.
        let bits = self.env.initial_state_bits();
        for &(bit, init) in &bits[self.init_pinned..] {
            let l = self.em.emit(&self.g, bit, &mut self.solver);
            self.solver
                .add_clause_selected(self.init_sel, [if init { l } else { !l }]);
        }
        self.init_pinned = self.env.initial_state_bits().len();
        let l = self.em.emit(&self.g, h, &mut self.solver);
        self.count_sat_call();
        if self.solver.solve_with(&[self.init_sel, !l]).is_sat() {
            return Ok(Some(sat_cex(&self.env, &self.em, &self.solver, t)));
        }
        Ok(None)
    }

    /// k-induction consecution at `k`: arbitrary start state (selector
    /// group off), `k` good attempts imply the next one — same formula,
    /// same solver, one extra anchor beyond BMC. Returns `true` if the
    /// step case is unsatisfiable (property proven, given the BMC base
    /// case for anchors `0..k`).
    fn induction_check(
        &mut self,
        assertion: &Assertion,
        horizon: u32,
        holds: &mut Vec<AigLit>,
        k: u32,
    ) -> Result<bool, EncodeError> {
        self.ensure_anchor(assertion, horizon, holds, k)?;
        let mut lits: Vec<Lit> = Vec::with_capacity(k as usize + 1);
        for (i, &hold) in holds.iter().enumerate().take(k as usize + 1) {
            let l = self.em.emit(&self.g, hold, &mut self.solver);
            lits.push(if i == k as usize { !l } else { l });
        }
        self.count_sat_call();
        Ok(self.solver.solve_with(&lits).is_unsat())
    }
}

/// Input-log entries for the frames the *current* check has read —
/// on a shared session this trims a counterexample to the frames its
/// candidate uses (a fresh single-check environment has no others).
fn input_log_entries<'e>(
    env: &'e DesignTraceEnv<'_>,
) -> impl Iterator<Item = (&'e str, i32, &'e BitVec)> + 'e {
    let frames = env.touched_frames();
    env.input_log()
        .iter()
        .filter(move |(_, f, _)| *f < frames)
        .map(|(n, f, bv)| (n.as_str(), *f as i32, bv))
}

/// Decodes one simulation pattern into a counterexample trace.
fn sim_cex(env: &DesignTraceEnv, sim: &BitSim, pattern: u32, anchor: u32) -> DesignCex {
    DesignCex {
        anchor,
        inputs: crate::cex::decode_trace(input_log_entries(env), |bit| sim.lit_bit(bit, pattern)),
    }
}

/// Decodes the solver model into a counterexample trace.
fn sat_cex(env: &DesignTraceEnv, em: &CnfEmitter, solver: &Solver, anchor: u32) -> DesignCex {
    DesignCex {
        anchor,
        inputs: crate::cex::decode_trace(
            input_log_entries(env),
            crate::cex::solver_bit_reader(em, solver),
        ),
    }
}

/// Trace environment over a recorded concrete simulation run: every
/// read resolves to a constant, so monitors fold to a definite verdict.
struct ReplayEnv<'a> {
    netlist: &'a Netlist,
    /// Per-frame values of every atom, as produced by [`Simulator`].
    frames: Vec<Vec<u128>>,
    consts: HashMap<String, (u32, u128)>,
}

impl ReplayEnv<'_> {
    fn read_binding(&self, binding: &NetBinding, frame: usize) -> u128 {
        let mask = |v: u128, w: u32| {
            if w >= 128 {
                v
            } else {
                v & ((1u128 << w) - 1)
            }
        };
        let values = &self.frames[frame];
        let mut acc: u128 = 0;
        let mut off = 0u32;
        for seg in &binding.segs {
            let v = mask(values[seg.atom.index()] >> seg.lo, seg.width);
            acc |= v << off;
            off += seg.width;
        }
        acc
    }
}

impl TraceEnv for ReplayEnv<'_> {
    fn read(&mut self, _g: &mut Aig, name: &str, cycle: i32) -> Result<BitVec, EncodeError> {
        if let Some(&(w, v)) = self.consts.get(name) {
            return Ok(BitVec::constant(w as usize, v));
        }
        // Pre-history clamps to the reset state, mirroring
        // `DesignTraceEnv`.
        let cycle = (cycle.max(0) as usize).min(self.frames.len() - 1);
        let binding = self
            .netlist
            .net(name)
            .ok_or_else(|| EncodeError::UnknownSignal(name.to_string()))?;
        Ok(BitVec::constant(
            binding.width as usize,
            self.read_binding(binding, cycle),
        ))
    }

    fn constant(&self, name: &str) -> Option<(u32, u128)> {
        self.consts.get(name).copied()
    }
}

/// Replays a BMC counterexample through the cycle-accurate
/// [`sv_synth::Simulator`] and re-evaluates the assertion on the
/// concrete trace.
///
/// Returns `Ok(true)` iff the trace genuinely violates the evaluation
/// attempt anchored at `cex.anchor` — the end-to-end soundness check
/// for the bit-blaster, the CNF encoding, and the solver: a
/// counterexample that does not replay would mean one of them is
/// wrong. [`prove`] asserts this in debug builds for every
/// counterexample it returns; the property-test suite replays them
/// through this public entry point.
///
/// # Errors
///
/// [`EncodeError`] as for [`prove`] (plus `Unsupported` if the netlist
/// cannot be simulated).
pub fn replay_design_cex(
    netlist: &Netlist,
    assertion: &Assertion,
    consts: &[(String, u32, u128)],
    cfg: ProveConfig,
    cex: &DesignCex,
) -> Result<bool, EncodeError> {
    let _span = fv_trace::span!("cex.replay", anchor = cex.anchor);
    let horizon = horizon_for(assertion, None, cfg.slack);
    let total = cex.anchor + horizon;
    let mut sim = Simulator::new(netlist).map_err(|e| EncodeError::Unsupported(e.to_string()))?;
    let stimuli: HashMap<(&str, u32), u128> = cex
        .inputs
        .iter()
        .map(|v| ((v.signal.as_str(), v.cycle as u32), v.value))
        .collect();
    let reset = netlist.reset_name.clone();
    let mut frames: Vec<Vec<u128>> = Vec::with_capacity(total as usize);
    for f in 0..total {
        sim.step(&|name: &str, _w| {
            if reset.as_deref() == Some(name) {
                return u128::MAX; // deasserted, as in the formal setup
            }
            stimuli.get(&(name, f)).copied().unwrap_or(0)
        });
        frames.push(
            (0..netlist.atoms.len())
                .map(|i| sim.atom_value(AtomId(i as u32)))
                .collect(),
        );
    }
    let mut env = ReplayEnv {
        netlist,
        frames,
        consts: consts
            .iter()
            .map(|(n, w, v)| (n.clone(), (*w, *v)))
            .collect(),
    };
    let mut g = Aig::new();
    let holds = encode_assertion_at(&mut g, assertion, cex.anchor, total, &mut env)?;
    // Every read was a constant, so the monitor folds; evaluate the
    // residue (if any) with no free inputs.
    let ev = AigEvaluator::combinational(&g, &vec![false; g.num_inputs()]);
    Ok(!ev.lit(holds))
}

/// Checks whether a proven implication is *vacuous*: its antecedent can
/// never fire on any reachable trace within the BMC bound.
///
/// Commercial tools flag vacuously-proven assertions separately; the
/// Design2SVA metric counts them as proven (as the paper does), but this
/// extension lets a harness report them, e.g. to filter trivial model
/// outputs.
///
/// Returns `Ok(None)` for non-implication properties (no antecedent to
/// test), `Ok(Some(true))` when the antecedent cannot fire within the
/// bound, and `Ok(Some(false))` when a firing trace exists.
///
/// # Errors
///
/// [`EncodeError`] as for [`prove`].
pub fn check_vacuity(
    netlist: &Netlist,
    assertion: &Assertion,
    consts: &[(String, u32, u128)],
    cfg: ProveConfig,
) -> Result<Option<bool>, EncodeError> {
    use crate::monitor::encode_seq;
    let ante = match &assertion.body {
        sv_ast::PropExpr::Implication { ante, .. } => ante.clone(),
        _ => return Ok(None),
    };
    let expander = FrameExpander::new(netlist)
        .map_err(|n| EncodeError::Unsupported(format!("combinational cycle through '{n}'")))?;
    let horizon = horizon_for(assertion, None, cfg.slack);
    let mut g = Aig::new();
    let mut env = DesignTraceEnv::new(expander);
    for (n, w, v) in consts {
        env.bind_const(n.clone(), *w, *v);
    }
    let mut solver = Solver::new();
    let mut em = CnfEmitter::new();
    for t in 0..cfg.max_bmc {
        let total = t + horizon;
        let enc = encode_seq(&mut g, &ante, t, total, &mut env)?;
        let fires = enc.any_match(&mut g);
        let l = em.emit(&g, fires, &mut solver);
        if solver.solve_with(&[l]).is_sat() {
            return Ok(Some(false));
        }
    }
    Ok(Some(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_parser::{parse_assertion_str, parse_source};
    use sv_synth::elaborate;

    fn counter() -> Netlist {
        let src = "module m (clk, reset_, en, q, wrapped);\n\
            input clk; input reset_; input en;\n\
            output [1:0] q; output wrapped;\n\
            reg [1:0] cnt;\n\
            always @(posedge clk) begin\n\
            if (!reset_) cnt <= 2'd0;\n\
            else if (en) cnt <= cnt + 2'd1;\nend\n\
            assign q = cnt;\n\
            assign wrapped = (cnt == 2'd3);\nendmodule\n";
        let f = parse_source(src).unwrap();
        elaborate(&f, "m").unwrap()
    }

    fn prove_str(nl: &Netlist, a: &str) -> ProveResult {
        let a = parse_assertion_str(a).unwrap();
        prove(nl, &a, &[], ProveConfig::default()).unwrap()
    }

    #[test]
    fn tautology_is_proven() {
        let nl = counter();
        let r = prove_str(&nl, "assert property (@(posedge clk) en || !en);");
        assert!(r.is_proven());
    }

    #[test]
    fn tautology_needs_one_sat_call() {
        // The violation target folds to constant false at the base-case
        // anchor; the interleaved schedule then closes the proof with a
        // single k=1 consecution query.
        let nl = counter();
        let a = parse_assertion_str("assert property (@(posedge clk) en || !en);").unwrap();
        let (r, stats) = prove_with_stats(&nl, &a, &[], ProveConfig::default()).unwrap();
        assert!(r.is_proven());
        assert_eq!(stats.ternary_kills, 1, "{stats:?}");
        assert_eq!(stats.sat_calls, 1, "only the k=1 induction query");
    }

    #[test]
    fn true_invariant_is_proven() {
        // Counter increments by exactly one when enabled.
        let nl = counter();
        let r = prove_str(
            &nl,
            "assert property (@(posedge clk) (en && q == 2'd1) |-> ##1 q == 2'd2);",
        );
        assert!(r.is_proven(), "got {r:?}");
    }

    #[test]
    fn proven_property_stops_after_small_k() {
        // 1-inductive invariant: the interleaved schedule proves it in
        // O(1) queries instead of a full 12-anchor BMC sweep.
        let nl = counter();
        let a = parse_assertion_str(
            "assert property (@(posedge clk) (en && q == 2'd1) |-> ##1 q == 2'd2);",
        )
        .unwrap();
        let (r, stats) = prove_with_stats(&nl, &a, &[], ProveConfig::default()).unwrap();
        assert_eq!(r, ProveResult::Proven { k: 1 });
        assert!(stats.queries() <= 3, "{stats:?}");
    }

    fn wrapping_counter() -> Netlist {
        // Counts 0..5 then wraps, so 6 and 7 are unreachable — but not
        // k-inductively so (6 can self-loop and step to 7).
        let src = "module m (clk, reset_, en, q);\n\
            input clk; input reset_; input en;\n\
            output [2:0] q;\n\
            reg [2:0] cnt;\n\
            always @(posedge clk) begin\n\
            if (!reset_) cnt <= 3'd0;\n\
            else if (en) cnt <= (cnt == 3'd5) ? 3'd0 : cnt + 3'd1;\nend\n\
            assign q = cnt;\nendmodule\n";
        let f = parse_source(src).unwrap();
        elaborate(&f, "m").unwrap()
    }

    #[test]
    fn undetermined_path_reuses_one_solver() {
        // `q != 7` is true (unreachable) but never inductive, so both
        // bounds are exhausted: every SAT call after the first must run
        // on the same warmed solver.
        let nl = wrapping_counter();
        let a = parse_assertion_str("assert property (@(posedge clk) q != 3'd7);").unwrap();
        let (r, stats) = prove_with_stats(&nl, &a, &[], ProveConfig::default()).unwrap();
        assert_eq!(r, ProveResult::Undetermined);
        assert!(stats.sat_calls >= 2, "{stats:?}");
        assert_eq!(
            stats.solver_reuse_hits,
            stats.sat_calls - 1,
            "every SAT call after the first reuses the solver: {stats:?}"
        );
        assert!(stats.ternary_kills >= 1, "early anchors fold: {stats:?}");
    }

    #[test]
    fn hold_behaviour_is_proven() {
        let nl = counter();
        let r = prove_str(
            &nl,
            "assert property (@(posedge clk) (!en && q == 2'd2) |-> ##1 q == 2'd2);",
        );
        assert!(r.is_proven(), "got {r:?}");
    }

    #[test]
    fn false_property_is_falsified_with_cex() {
        let nl = counter();
        let r = prove_str(&nl, "assert property (@(posedge clk) q != 2'd3);");
        match r {
            ProveResult::Falsified { cex } => {
                assert!(!cex.inputs.is_empty());
            }
            other => panic!("expected falsified, got {other:?}"),
        }
    }

    #[test]
    fn falsification_is_usually_sim_killed() {
        // `q != 3` is violated by any run with enough enables — random
        // stimuli find it without a SAT call.
        let nl = counter();
        let a = parse_assertion_str("assert property (@(posedge clk) q != 2'd3);").unwrap();
        let (r, stats) = prove_with_stats(&nl, &a, &[], ProveConfig::default()).unwrap();
        assert!(matches!(r, ProveResult::Falsified { .. }));
        assert_eq!(stats.sim_kills, 1, "{stats:?}");
        // Anchors the counter provably cannot violate yet are killed by
        // ternary propagation; only the ambiguous middle anchors and the
        // interleaved consecution attempts pay SAT calls.
        assert!(stats.ternary_kills >= 1, "{stats:?}");
        assert!(stats.sat_calls <= 4, "{stats:?}");
    }

    #[test]
    fn cex_replays_in_simulator() {
        let nl = counter();
        let a = parse_assertion_str(
            "assert property (@(posedge clk) (en && q == 2'd1) |-> ##1 q == 2'd3);",
        )
        .unwrap();
        match prove(&nl, &a, &[], ProveConfig::default()).unwrap() {
            ProveResult::Falsified { cex } => {
                assert_eq!(
                    replay_design_cex(&nl, &a, &[], ProveConfig::default(), &cex),
                    Ok(true),
                    "returned counterexample must be a real violation"
                );
                // A doctored trace (all stimuli zeroed) must not replay.
                let mut bogus = cex.clone();
                for v in &mut bogus.inputs {
                    v.value = 0;
                }
                assert_eq!(
                    replay_design_cex(&nl, &a, &[], ProveConfig::default(), &bogus),
                    Ok(false)
                );
            }
            other => panic!("expected falsified, got {other:?}"),
        }
    }

    #[test]
    fn wrong_transition_is_falsified() {
        let nl = counter();
        let r = prove_str(
            &nl,
            "assert property (@(posedge clk) (en && q == 2'd1) |-> ##1 q == 2'd3);",
        );
        assert!(matches!(r, ProveResult::Falsified { .. }), "got {r:?}");
    }

    #[test]
    fn unknown_signal_is_error() {
        let nl = counter();
        let a = parse_assertion_str("assert property (@(posedge clk) hidden == 1'b0);").unwrap();
        assert!(matches!(
            prove(&nl, &a, &[], ProveConfig::default()),
            Err(EncodeError::UnknownSignal(_))
        ));
    }

    #[test]
    fn unbounded_property_is_undetermined() {
        let nl = counter();
        let r = prove_str(
            &nl,
            "assert property (@(posedge clk) en |-> strong(##[0:$] wrapped));",
        );
        assert_eq!(r, ProveResult::Undetermined);
    }

    #[test]
    fn consts_bind_state_names() {
        let nl = counter();
        let a = parse_assertion_str(
            "assert property (@(posedge clk) (en && q == SONE) |-> ##1 q == STWO);",
        )
        .unwrap();
        let consts = vec![("SONE".to_string(), 2, 1u128), ("STWO".to_string(), 2, 2)];
        let r = prove(&nl, &a, &consts, ProveConfig::default()).unwrap();
        assert!(r.is_proven(), "got {r:?}");
    }

    #[test]
    fn vacuity_detection() {
        let nl = counter();
        // Antecedent `q == 1 && q == 2` can never fire: vacuously proven.
        let vac = parse_assertion_str(
            "assert property (@(posedge clk) (q == 2'd1 && q == 2'd2) |-> ##1 en);",
        )
        .unwrap();
        let r = prove(&nl, &vac, &[], ProveConfig::default()).unwrap();
        assert!(r.is_proven(), "vacuous truths are proven: {r:?}");
        assert_eq!(
            check_vacuity(&nl, &vac, &[], ProveConfig::default()).unwrap(),
            Some(true)
        );
        // A real antecedent fires.
        let live = parse_assertion_str(
            "assert property (@(posedge clk) (en && q == 2'd1) |-> ##1 q == 2'd2);",
        )
        .unwrap();
        assert_eq!(
            check_vacuity(&nl, &live, &[], ProveConfig::default()).unwrap(),
            Some(false)
        );
        // Non-implications have no vacuity notion.
        let plain = parse_assertion_str("assert property (@(posedge clk) en || !en);").unwrap();
        assert_eq!(
            check_vacuity(&nl, &plain, &[], ProveConfig::default()).unwrap(),
            None
        );
    }

    #[test]
    fn session_stream_matches_fresh_prove() {
        // One long-lived session must return the same verdict (and the
        // same proof depth / earliest violating anchor — both are
        // semantic) as a fresh per-candidate prove call, for a stream
        // mixing proven, falsified, and undetermined candidates.
        let nl = wrapping_counter();
        let candidates = [
            "assert property (@(posedge clk) en || !en);",
            "assert property (@(posedge clk) q != 3'd7);",
            "assert property (@(posedge clk) q != 3'd2);",
            "assert property (@(posedge clk) (en && q == 3'd1) |-> ##1 q == 3'd2);",
            "assert property (@(posedge clk) (en && q == 3'd1) |-> ##1 q == 3'd4);",
            "assert property (@(posedge clk) en |-> strong(##[0:$] q == 3'd5));",
            "assert property (@(posedge clk) q != 3'd6);",
        ];
        let mut session = ProofSession::open(&nl, &[], ProveConfig::default()).unwrap();
        for src in candidates {
            let a = parse_assertion_str(src).unwrap();
            let fresh = prove(&nl, &a, &[], ProveConfig::default()).unwrap();
            let (via_session, _) = session.check(&a).unwrap();
            match (&fresh, &via_session) {
                (ProveResult::Proven { k: k1 }, ProveResult::Proven { k: k2 }) => {
                    assert_eq!(k1, k2, "{src}");
                }
                (ProveResult::Falsified { cex: c1 }, ProveResult::Falsified { cex: c2 }) => {
                    assert_eq!(c1.anchor, c2.anchor, "{src}");
                }
                (ProveResult::Undetermined, ProveResult::Undetermined) => {}
                (fresh, via) => panic!("{src}: fresh {fresh:?} != session {via:?}"),
            }
        }
        let stats = session.stats();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.session_checks, candidates.len() as u64);
        assert!(
            stats.unroll_reuse_hits > 0,
            "later candidates reuse the shared unrolling: {stats:?}"
        );
    }

    #[test]
    fn session_unknown_signal_leaves_session_usable() {
        let nl = counter();
        let mut session = ProofSession::open(&nl, &[], ProveConfig::default()).unwrap();
        let bad = parse_assertion_str("assert property (@(posedge clk) hidden == 1'b0);").unwrap();
        assert!(matches!(
            session.check(&bad),
            Err(EncodeError::UnknownSignal(_))
        ));
        let good = parse_assertion_str("assert property (@(posedge clk) en || !en);").unwrap();
        let (r, _) = session.check(&good).unwrap();
        assert!(r.is_proven());
        assert_eq!(session.stats().session_checks, 2);
    }

    #[test]
    fn repeated_candidate_strashes_to_warm_queries() {
        // The same candidate text checked twice: the second check's
        // monitors fold onto the existing nodes, so every SAT call it
        // makes runs on the already-warmed solver and no new frames
        // are unrolled.
        let nl = wrapping_counter();
        let a = parse_assertion_str("assert property (@(posedge clk) q != 3'd7);").unwrap();
        let mut session = ProofSession::open(&nl, &[], ProveConfig::default()).unwrap();
        let (r1, first) = session.check(&a).unwrap();
        let frames_after_first = session.env.num_frames();
        let (r2, second) = session.check(&a).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(
            session.env.num_frames(),
            frames_after_first,
            "no new frames for a repeated candidate"
        );
        assert_eq!(
            second.solver_reuse_hits, second.sat_calls,
            "every repeat SAT call reuses the warmed solver: {second:?}"
        );
        assert_eq!(first.sessions_opened, 1, "first delta carries the open");
        assert_eq!(second.sessions_opened, 0);
    }

    #[test]
    fn reset_state_respected_by_bmc() {
        // At cycle 0 the counter is 0: q == 0 initially can only be
        // violated after stepping, so `q == 0 at anchor 0` means BMC
        // must find the violation at a later anchor.
        let nl = counter();
        let r = prove_str(&nl, "assert property (@(posedge clk) q == 2'd0);");
        match r {
            ProveResult::Falsified { cex } => assert!(cex.anchor >= 1),
            other => panic!("expected falsified, got {other:?}"),
        }
    }
}
