//! Experiment harness: one function per paper table/figure.
//!
//! Each function runs the corresponding evaluation end to end — dataset
//! assembly, simulated-model inference, and the real scoring pipeline —
//! and renders a [`Table`] or a text figure. The `fveval` binary wraps
//! these behind subcommands and writes `results/*.md` / `results/*.csv`.
//!
//! All inference-bearing experiments execute on a shared
//! [`EvalEngine`]: its worker pool (`--jobs N`) parallelizes the
//! `model × case × sample` work-list, and its verdict cache scores
//! repeated `(model, case, cfg, sample)` units only once — Tables 1/2
//! and Figure 6 all reuse the human set, so a `run-all` pass gets the
//! repeats for free. Results are byte-identical for every `jobs`
//! setting.
//!
//! Scale: `HarnessOptions::full` reproduces the paper's set sizes
//! (79 human / 300 machine / 96+96 designs); the default quick mode
//! shrinks the expensive Design2SVA sweeps so the whole suite runs in
//! seconds-to-minutes on a laptop. The *shape* of every table is
//! preserved at either scale.

use fv_core::SignalTable;
use fveval_core::{
    compile_design, design_task_specs, histogram, human_task_specs, machine_task_specs, pearson,
    token_count, Design2svaRunner, EvalEngine, MetricSummary, Table, TableCell,
};
use fveval_data::{
    fsm_sweep, human_cases, machine_signal_table, pipeline_sweep, signal_table_for, testbenches,
    MachineGenConfig,
};
use fveval_llm::{profiles, Backend, InferenceConfig, Request, SimulatedModel, TaskSpec};
use std::collections::HashMap;
use std::sync::Arc;

/// Knobs shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessOptions {
    /// Paper-scale runs (96+96 designs, 10 samples) instead of quick.
    pub full: bool,
    /// Global seed.
    pub seed: u64,
}

impl Default for HarnessOptions {
    fn default() -> HarnessOptions {
        HarnessOptions {
            full: false,
            seed: 0xFEED,
        }
    }
}

impl HarnessOptions {
    fn machine_count(&self) -> usize {
        if self.full {
            300
        } else {
            120
        }
    }

    fn design_count(&self) -> usize {
        if self.full {
            96
        } else {
            12
        }
    }

    fn samples(&self) -> u32 {
        if self.full {
            10
        } else {
            6
        }
    }
}

fn human_tables() -> HashMap<&'static str, SignalTable> {
    testbenches()
        .into_iter()
        .map(|tb| {
            let table = signal_table_for(&tb).expect("shipped testbenches elaborate");
            (tb.name, table)
        })
        .collect()
}

/// The human set as an engine work-list (cases + elaborated scopes).
fn human_tasks() -> Vec<Arc<TaskSpec>> {
    human_task_specs(&human_cases(), &human_tables())
}

fn machine_cases(opts: &HarnessOptions) -> Vec<fveval_data::MachineCase> {
    fveval_data::generate_machine_cases(MachineGenConfig {
        count: opts.machine_count(),
        seed: opts.seed,
        ..Default::default()
    })
}

/// The machine set as an engine work-list.
fn machine_tasks(opts: &HarnessOptions) -> Vec<Arc<TaskSpec>> {
    machine_task_specs(&machine_cases(opts), &machine_signal_table())
}

fn as_backends(models: &[SimulatedModel]) -> Vec<&dyn Backend> {
    models.iter().map(|m| m as &dyn Backend).collect()
}

fn models_by_name(names: &[&str]) -> Vec<SimulatedModel> {
    names.iter().map(|n| model_by_name(n)).collect()
}

/// Table 1 — NL2SVA-Human, zero-shot greedy decoding, all 8 models.
pub fn table1(engine: &EvalEngine, opts: &HarnessOptions) -> Table {
    let _ = opts; // the human set is always full-size (79 cases)
    let tasks = human_tasks();
    let models = profiles();
    let mut t = Table::new(
        "Table 1: NL2SVA-Human (zero-shot, greedy)",
        &["Model", "Syntax", "Func.", "Partial Func.", "BLEU"],
    );
    let rows = engine.run_matrix(&as_backends(&models), &tasks, &InferenceConfig::greedy(), 1);
    for (model, evals) in models.iter().zip(&rows) {
        let s = MetricSummary::from_first_samples(evals);
        t.push_row([
            model.name().into(),
            s.syntax.into(),
            s.func.into(),
            s.partial.into(),
            s.bleu.into(),
        ]);
    }
    t
}

/// Table 2 — NL2SVA-Human pass@k under sampling (top models).
pub fn table2(engine: &EvalEngine, opts: &HarnessOptions) -> Table {
    let tasks = human_tasks();
    let n = opts.samples().max(5);
    let models = models_by_name(&["gpt-4o", "gemini-1.5-flash", "llama-3.1-70b"]);
    let mut t = Table::new(
        format!("Table 2: NL2SVA-Human pass@k (n={n}, T=0.8)"),
        &[
            "Model",
            "Syntax@5",
            "Func.@3",
            "Func.@5",
            "Partial.@3",
            "Partial.@5",
        ],
    );
    let rows = engine.run_matrix(
        &as_backends(&models),
        &tasks,
        &InferenceConfig::sampling(),
        n,
    );
    for (model, evals) in models.iter().zip(&rows) {
        t.push_row([
            model.name().into(),
            MetricSummary::mean_pass_at_k(evals, 5, |s| s.syntax).into(),
            MetricSummary::mean_pass_at_k(evals, 3, |s| s.func).into(),
            MetricSummary::mean_pass_at_k(evals, 5, |s| s.func).into(),
            MetricSummary::mean_pass_at_k(evals, 3, |s| s.partial).into(),
            MetricSummary::mean_pass_at_k(evals, 5, |s| s.partial).into(),
        ]);
    }
    t
}

/// Table 3 — NL2SVA-Machine, zero-shot and 3-shot, all 8 models.
pub fn table3(engine: &EvalEngine, opts: &HarnessOptions) -> Table {
    let tasks = machine_tasks(opts);
    let models = profiles();
    let backends = as_backends(&models);
    let mut t = Table::new(
        format!("Table 3: NL2SVA-Machine ({} cases)", tasks.len()),
        &[
            "Model",
            "0-shot Syntax",
            "0-shot Func.",
            "0-shot Partial",
            "0-shot BLEU",
            "3-shot Syntax",
            "3-shot Func.",
            "3-shot Partial",
            "3-shot BLEU",
        ],
    );
    let r0 = engine.run_matrix(&backends, &tasks, &InferenceConfig::greedy(), 1);
    let r3 = engine.run_matrix(
        &backends,
        &tasks,
        &InferenceConfig::greedy().with_shots(3),
        1,
    );
    for ((model, e0), e3) in models.iter().zip(&r0).zip(&r3) {
        let s0 = MetricSummary::from_first_samples(e0);
        let s3 = MetricSummary::from_first_samples(e3);
        t.push_row([
            model.name().into(),
            s0.syntax.into(),
            s0.func.into(),
            s0.partial.into(),
            s0.bleu.into(),
            s3.syntax.into(),
            s3.func.into(),
            s3.partial.into(),
            s3.bleu.into(),
        ]);
    }
    t
}

/// Table 4 — NL2SVA-Machine pass@k under sampling, 3-shot.
pub fn table4(engine: &EvalEngine, opts: &HarnessOptions) -> Table {
    let tasks = machine_tasks(opts);
    let n = opts.samples().max(5);
    let cfg = InferenceConfig::sampling().with_shots(3);
    let models = models_by_name(&["gpt-4o", "gemini-1.5-flash", "llama-3.1-70b"]);
    let mut t = Table::new(
        format!("Table 4: NL2SVA-Machine pass@k (n={n}, 3-shot, top-p 0.95, T=0.8)"),
        &[
            "Model",
            "Syntax@5",
            "Func.@3",
            "Func.@5",
            "Partial.@3",
            "Partial.@5",
        ],
    );
    let rows = engine.run_matrix(&as_backends(&models), &tasks, &cfg, n);
    for (model, evals) in models.iter().zip(&rows) {
        t.push_row([
            model.name().into(),
            MetricSummary::mean_pass_at_k(evals, 5, |s| s.syntax).into(),
            MetricSummary::mean_pass_at_k(evals, 3, |s| s.func).into(),
            MetricSummary::mean_pass_at_k(evals, 5, |s| s.func).into(),
            MetricSummary::mean_pass_at_k(evals, 3, |s| s.partial).into(),
            MetricSummary::mean_pass_at_k(evals, 5, |s| s.partial).into(),
        ]);
    }
    t
}

/// Table 5 — Design2SVA pass@1 / pass@5 per design category.
pub fn table5(engine: &EvalEngine, opts: &HarnessOptions) -> Table {
    let count = opts.design_count();
    let pipeline_tasks = design_task_specs(&pipeline_sweep(count, opts.seed));
    let fsm_tasks = design_task_specs(&fsm_sweep(count, opts.seed.wrapping_add(1)));
    let n = opts.samples().max(5);
    let cfg = InferenceConfig::sampling();
    let models: Vec<SimulatedModel> = profiles()
        .into_iter()
        .filter(|m| m.profile().supports_design2sva)
        .collect();
    let backends = as_backends(&models);
    let mut t = Table::new(
        format!("Table 5: Design2SVA ({count} designs per category, n={n})"),
        &[
            "Model",
            "Pipe Syntax@1",
            "Pipe Syntax@5",
            "Pipe Func.@1",
            "Pipe Func.@5",
            "FSM Syntax@1",
            "FSM Syntax@5",
            "FSM Func.@1",
            "FSM Func.@5",
        ],
    );
    let rp = engine.run_matrix(&backends, &pipeline_tasks, &cfg, n);
    let rf = engine.run_matrix(&backends, &fsm_tasks, &cfg, n);
    for ((model, ep), ef) in models.iter().zip(&rp).zip(&rf) {
        t.push_row([
            model.name().into(),
            MetricSummary::mean_pass_at_k(ep, 1, |s| s.syntax).into(),
            MetricSummary::mean_pass_at_k(ep, 5, |s| s.syntax).into(),
            MetricSummary::mean_pass_at_k(ep, 1, |s| s.func).into(),
            MetricSummary::mean_pass_at_k(ep, 5, |s| s.func).into(),
            MetricSummary::mean_pass_at_k(ef, 1, |s| s.syntax).into(),
            MetricSummary::mean_pass_at_k(ef, 5, |s| s.syntax).into(),
            MetricSummary::mean_pass_at_k(ef, 1, |s| s.func).into(),
            MetricSummary::mean_pass_at_k(ef, 5, |s| s.func).into(),
        ]);
    }
    t
}

/// Table 6 — NL2SVA-Human dataset composition.
pub fn table6() -> Table {
    let cases = human_cases();
    let tbs = testbenches();
    let mut t = Table::new(
        "Table 6: NL2SVA-Human composition",
        &["Name", "# Variations", "# Assertions"],
    );
    let mut classes: Vec<&str> = Vec::new();
    for tb in &tbs {
        if !classes.contains(&tb.class) {
            classes.push(tb.class);
        }
    }
    let mut total_vars = 0usize;
    let mut total_asserts = 0usize;
    for class in classes {
        let names: Vec<&str> = tbs
            .iter()
            .filter(|t| t.class == class)
            .map(|t| t.name)
            .collect();
        let n_assert = cases
            .iter()
            .filter(|c| names.contains(&c.testbench.as_str()))
            .count();
        total_vars += names.len();
        total_asserts += n_assert;
        t.push_row([
            class.into(),
            (names.len() as f64).into(),
            (n_assert as f64).into(),
        ]);
    }
    t.push_row([
        "Total".into(),
        (total_vars as f64).into(),
        (total_asserts as f64).into(),
    ]);
    t
}

/// Figure 2 (right) — NL/SVA token-length distributions, human set.
pub fn figure2() -> String {
    let cases = human_cases();
    let nl: Vec<f64> = cases
        .iter()
        .map(|c| token_count(&c.question) as f64)
        .collect();
    let sva: Vec<f64> = cases
        .iter()
        .map(|c| token_count(&c.reference) as f64)
        .collect();
    format!(
        "Figure 2 (right): NL2SVA-Human token-length distributions\n\n\
         NL specifications ({} cases):\n{}\n\
         Reference SVA solutions:\n{}",
        cases.len(),
        histogram(&nl, 8).render(),
        histogram(&sva, 8).render()
    )
}

/// Figure 3 (right) — NL/SVA token-length distributions, machine set.
pub fn figure3(opts: &HarnessOptions) -> String {
    let cases = machine_cases(opts);
    let nl: Vec<f64> = cases
        .iter()
        .map(|c| token_count(&c.question) as f64)
        .collect();
    let sva: Vec<f64> = cases
        .iter()
        .map(|c| token_count(&c.reference_text) as f64)
        .collect();
    format!(
        "Figure 3 (right): NL2SVA-Machine token-length distributions\n\n\
         NL descriptions ({} cases):\n{}\n\
         Reference SVA assertions:\n{}",
        cases.len(),
        histogram(&nl, 8).render(),
        histogram(&sva, 8).render()
    )
}

/// Figure 4 — generated-logic token lengths across the design sweeps.
pub fn figure4(opts: &HarnessOptions) -> String {
    let count = opts.design_count();
    let pipelines = pipeline_sweep(count, opts.seed);
    let fsms = fsm_sweep(count, opts.seed.wrapping_add(1));
    let p: Vec<f64> = pipelines
        .iter()
        .map(|c| token_count(&c.logic_excerpt) as f64)
        .collect();
    let f: Vec<f64> = fsms
        .iter()
        .map(|c| token_count(&c.logic_excerpt) as f64)
        .collect();
    format!(
        "Figure 4: Design2SVA generated-logic token-length distributions\n\n\
         Arithmetic logic (pipelines, {count} designs):\n{}\n\
         FSM transition logic ({count} designs):\n{}",
        histogram(&p, 8).render(),
        histogram(&f, 8).render()
    )
}

/// Figure 6 — BLEU-vs-functional-equivalence correlation.
pub fn figure6(engine: &EvalEngine, opts: &HarnessOptions) -> (Table, String) {
    let _ = opts;
    let tasks = human_tasks();
    let models = models_by_name(&["gpt-4o", "llama-3.1-70b"]);
    let mut t = Table::new(
        "Figure 6: correlation between Func. and BLEU (NL2SVA-Human)",
        &[
            "Model",
            "Pearson r",
            "Mean BLEU | func",
            "Mean BLEU | !func",
        ],
    );
    let mut notes = String::new();
    let rows = engine.run_matrix(&as_backends(&models), &tasks, &InferenceConfig::greedy(), 1);
    for (model, evals) in models.iter().zip(&rows) {
        let name = model.name();
        let bleus: Vec<f64> = evals.iter().map(|c| c.samples[0].bleu).collect();
        let funcs: Vec<f64> = evals
            .iter()
            .map(|c| f64::from(u8::from(c.samples[0].func)))
            .collect();
        let r = pearson(&bleus, &funcs);
        let mean = |pred: bool| {
            let xs: Vec<f64> = evals
                .iter()
                .filter(|c| c.samples[0].func == pred)
                .map(|c| c.samples[0].bleu)
                .collect();
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        t.push_row([name.into(), r.into(), mean(true).into(), mean(false).into()]);
        notes.push_str(&format!(
            "{name}: corr(BLEU, Func) = {r:.4} over {} cases\n",
            evals.len()
        ));
    }
    (t, notes)
}

/// Figures 7/8/9 — qualitative failure-mode showcase.
pub fn showcase(engine: &EvalEngine, opts: &HarnessOptions) -> String {
    let mut out = String::new();
    let tables = human_tables();
    // Figure 7 flavour: the FIFO eventuality case across models.
    let cases = human_cases();
    let case = cases
        .iter()
        .find(|c| c.id == "fifo_1r1w_bypass_4")
        .expect("case exists");
    out.push_str(&format!(
        "== NL2SVA-Human showcase: {} ==\nQuestion: {}\nReference: {}\n\n",
        case.id, case.question, case.reference
    ));
    let task = Arc::new(TaskSpec::Nl2svaHuman {
        case: case.clone(),
        table: Arc::new(tables[case.testbench.as_str()].clone()),
    });
    for name in ["gpt-4o", "llama-3.1-70b", "llama-3-8b"] {
        let model = model_by_name(name);
        let resp = model.generate(&Request {
            task: Arc::clone(&task),
            cfg: InferenceConfig::greedy(),
            sample_idx: 0,
        });
        let eval = engine.score(&task, &resp);
        out.push_str(&format!(
            "{name}:\n{resp}\nSyntax: {} | Functionality: {}\n\n",
            pass_str(eval.syntax),
            if eval.func {
                "pass"
            } else if eval.partial {
                "partial pass"
            } else {
                "fail"
            }
        ));
    }
    // Figure 9 flavour: a Design2SVA FSM case with multiple attempts.
    let fsm = fsm_sweep(1, opts.seed)[0].clone();
    out.push_str(&format!(
        "== Design2SVA showcase: {} ==\n(design RTL omitted; {} states)\n\n",
        fsm.id,
        match &fsm.kind {
            fveval_data::DesignKind::Fsm { n_states, .. } => *n_states,
            _ => 0,
        }
    ));
    let task = Arc::new(TaskSpec::Design2sva { case: fsm });
    let model = model_by_name("gpt-4o");
    for attempt in 0..2 {
        let resp = model.generate(&Request {
            task: Arc::clone(&task),
            cfg: InferenceConfig::sampling(),
            sample_idx: attempt,
        });
        let eval = engine.score(&task, &resp);
        out.push_str(&format!(
            "gpt-4o | Attempt {}:\n{resp}\nSyntax: {} | Functionality (is proven): {}\n\n",
            attempt + 1,
            pass_str(eval.syntax),
            pass_str(eval.func)
        ));
    }
    out
}

fn pass_str(b: bool) -> &'static str {
    if b {
        "pass"
    } else {
        "fail"
    }
}

/// Validates all shipped and generated collateral end to end: every
/// testbench elaborates, every reference assertion parses and is
/// self-equivalent in its scope, every generated design's golden
/// assertions are proven, and the machine generator round-trips.
/// Returns a human-readable report; errors are collected, not fatal.
pub fn validate(opts: &HarnessOptions) -> (String, usize) {
    use fv_core::{check_equivalence, EquivConfig, Equivalence};
    use sv_parser::parse_assertion_str;

    let mut out = String::new();
    let mut errors = 0usize;
    let check = |out: &mut String, errors: &mut usize, label: &str, ok: bool, detail: &str| {
        if ok {
            out.push_str(&format!("  ok    {label}\n"));
        } else {
            *errors += 1;
            out.push_str(&format!("  FAIL  {label}: {detail}\n"));
        }
    };

    out.push_str("== testbenches ==\n");
    let mut tables = HashMap::new();
    for tb in testbenches() {
        match signal_table_for(&tb) {
            Ok(t) => {
                check(&mut out, &mut errors, tb.name, true, "");
                tables.insert(tb.name, t);
            }
            Err(e) => check(&mut out, &mut errors, tb.name, false, &e),
        }
    }

    out.push_str("== human references (79) ==\n");
    let mut ok_refs = 0;
    for case in human_cases() {
        let verdict = parse_assertion_str(&case.reference)
            .map_err(|e| e.to_string())
            .and_then(|a| {
                tables
                    .get(case.testbench.as_str())
                    .ok_or_else(|| "missing table".to_string())
                    .and_then(|t| {
                        check_equivalence(&a, &a, t, EquivConfig::default())
                            .map_err(|e| e.to_string())
                    })
            });
        match verdict {
            Ok(o) if o.verdict == Equivalence::Equivalent => ok_refs += 1,
            Ok(o) => check(
                &mut out,
                &mut errors,
                &case.id,
                false,
                &format!("{:?}", o.verdict),
            ),
            Err(e) => check(&mut out, &mut errors, &case.id, false, &e),
        }
    }
    out.push_str(&format!("  ok    {ok_refs} references self-equivalent\n"));

    out.push_str("== machine generator ==\n");
    let cases = machine_cases(opts);
    let mut ok_machine = 0;
    for case in &cases {
        if parse_assertion_str(&case.reference_text).is_ok() {
            ok_machine += 1;
        } else {
            check(
                &mut out,
                &mut errors,
                &case.id,
                false,
                "reference unparseable",
            );
        }
    }
    out.push_str(&format!(
        "  ok    {ok_machine}/{} machine references parse\n",
        cases.len()
    ));

    out.push_str("== design sweeps (goldens prove) ==\n");
    let n = if opts.full { 16 } else { 4 };
    let runner = Design2svaRunner::new();
    for case in pipeline_sweep(n, opts.seed)
        .into_iter()
        .chain(fsm_sweep(n, opts.seed + 1))
    {
        match compile_design(&case) {
            Err(e) => check(&mut out, &mut errors, &case.id, false, &e),
            Ok(bound) => {
                let all_proven = case
                    .golden
                    .iter()
                    .all(|g| runner.evaluate_response(&bound, g).func);
                check(
                    &mut out,
                    &mut errors,
                    &case.id,
                    all_proven,
                    "golden not proven",
                );
            }
        }
    }

    out.push_str("== generated scenarios (golden verdicts confirmed) ==\n");
    let suite = fveval_gen::generate_suite(&fveval_data::SuiteConfig {
        per_family: 1,
        seed: opts.seed,
        ..Default::default()
    });
    match fveval_gen::validate_suite(&suite, fv_core::ProveConfig::default()) {
        Err(e) => check(&mut out, &mut errors, "generated suite", false, &e),
        Ok(reports) => {
            for (scenario, report) in suite.scenarios.iter().zip(&reports) {
                check(
                    &mut out,
                    &mut errors,
                    &scenario.id,
                    report.is_clean(),
                    &report.problems.join("; "),
                );
            }
        }
    }

    out.push_str(&format!(
        "\nvalidation {} with {errors} error(s)\n",
        if errors == 0 { "PASSED" } else { "FAILED" }
    ));
    (out, errors)
}

/// The `fveval gen` report: generates a scenario suite, re-proves every
/// candidate's golden verdict through the incremental formal core, and
/// (optionally) runs the full simulated-model roster over the generated
/// task set on the shared engine.
///
/// Returns the per-scenario validation table, free-form notes (golden
/// confirmation summary, any problems, and the optional evaluation
/// table), the generated suite (for [`fveval_gen::write_suite`]), and
/// the number of validation errors.
///
/// # Errors
///
/// Returns a message if generated collateral fails to bind or parse —
/// generator bugs, as opposed to verdict mismatches, which are counted
/// and reported in the table.
pub fn gen_report(
    engine: &EvalEngine,
    cfg: &fveval_data::SuiteConfig,
    run_eval: bool,
) -> Result<(Table, String, fveval_data::Suite, usize), String> {
    use fveval_core::generated_task_specs;
    use fveval_data::task_set_from_suite;

    let suite = fveval_gen::generate_suite(cfg);
    let reports = fveval_gen::validate_suite(&suite, fv_core::ProveConfig::default())?;
    let mut t = Table::new(
        format!(
            "Generated scenarios ({} families, seed {:#x})",
            suite
                .scenarios
                .iter()
                .map(|s| s.family)
                .collect::<std::collections::HashSet<_>>()
                .len(),
            cfg.seed
        ),
        &[
            "Scenario",
            "Family",
            "Depth",
            "Width",
            "Provable",
            "Falsifiable",
            "Confirmed",
            "Problems",
        ],
    );
    let mut errors = 0usize;
    let mut stats = fv_core::ProverStats::default();
    let mut notes = String::new();
    for (scenario, report) in suite.scenarios.iter().zip(&reports) {
        stats.merge(&report.stats);
        errors += (report.mismatches + report.replay_failures) as usize;
        // Parameters and counts are labels, not metrics: text cells
        // keep the renderer from float-formatting and best-bolding them.
        t.push_row([
            scenario.id.clone().into(),
            scenario.family.into(),
            scenario.params.depth.to_string().into(),
            scenario.params.width.to_string().into(),
            scenario.provable().count().to_string().into(),
            scenario.falsifiable().count().to_string().into(),
            report.confirmed.to_string().into(),
            (report.mismatches + report.replay_failures)
                .to_string()
                .into(),
        ]);
        for p in &report.problems {
            notes.push_str(&format!("PROBLEM {}: {p}\n", scenario.id));
        }
    }
    // Validation is prover work this command performed: fold it into
    // the engine's counters so `prover_stats.{md,csv}` and the stderr
    // summary account for it (deep-inductive families surface here as
    // `pdr_wins` even when no scored response needs PDR).
    engine.record_prover_work(&stats);
    notes.push_str(&format!(
        "golden verdicts: {} candidates across {} scenarios confirmed by the prover \
         ({} SAT calls, {} sim kills, {} ternary kills){}\n",
        suite.candidate_count(),
        suite.scenarios.len(),
        stats.sat_calls,
        stats.sim_kills,
        stats.ternary_kills,
        if errors == 0 {
            ""
        } else {
            " — WITH MISMATCHES"
        },
    ));

    if run_eval && errors > 0 {
        notes.push_str(
            "skipping --eval: the suite's golden verdicts did not all confirm, \
             so model metrics against it would be meaningless\n",
        );
    }
    let suite = if run_eval && errors == 0 {
        // The conversion consumes the suite (no clone of the generated
        // sources) and hands it back unchanged.
        let set = task_set_from_suite(suite)?;
        let tasks = generated_task_specs(&set);
        let models = profiles();
        let backends = as_backends(&models);
        let results = engine.run_matrix(&backends, &tasks, &InferenceConfig::greedy(), 1);
        let rows: Vec<(String, Vec<fveval_core::CaseEvals>)> = models
            .iter()
            .map(|m| m.name().to_string())
            .zip(results)
            .collect();
        let et = eval_summary_table(&rows, tasks.len());
        notes.push('\n');
        notes.push_str(&et.to_markdown());
        set.suite
    } else {
        suite
    };

    Ok((t, notes, suite, errors))
}

/// The difficulty-stratified generation table: per-family counts of
/// family-authored candidates and of derived mutants split by mutation
/// operator. Operator columns order follows
/// [`fveval_gen::MutationOp::ALL`]; a trailing `total` row sums every
/// column. Written as `results/gen_difficulty.md` by
/// `fveval gen --stratify` (and whenever `--mutations` is nonzero).
pub fn difficulty_table(suite: &fveval_data::Suite) -> Table {
    use fveval_gen::MutationOp;

    let mut columns: Vec<&str> = vec!["Family", "Scenarios", "Provable", "Falsifiable"];
    let op_names: Vec<String> = MutationOp::ALL
        .iter()
        .map(|op| op.tag().to_string())
        .collect();
    columns.extend(op_names.iter().map(String::as_str));
    columns.push("Mutants");
    let mut t = Table::new(
        format!(
            "Generated-suite difficulty strata (seed {:#x}, {} mutants/scenario requested)",
            suite.config.seed, suite.config.mutations
        ),
        &columns,
    );

    // (scenarios, provable, falsifiable, per-op counts, mutant total)
    type Row = (usize, usize, usize, Vec<usize>, usize);
    let mut families: Vec<&str> = Vec::new();
    let mut rows: std::collections::HashMap<&str, Row> = std::collections::HashMap::new();
    for scenario in &suite.scenarios {
        if !rows.contains_key(scenario.family) {
            families.push(scenario.family);
            rows.insert(
                scenario.family,
                (0, 0, 0, vec![0; MutationOp::ALL.len()], 0),
            );
        }
        let row = rows.get_mut(scenario.family).expect("inserted above");
        row.0 += 1;
        for c in &scenario.candidates {
            match c.mutation {
                Some(op) => {
                    let idx = MutationOp::ALL
                        .iter()
                        .position(|o| *o == op)
                        .expect("ALL is exhaustive");
                    row.3[idx] += 1;
                    row.4 += 1;
                }
                None if c.verdict.is_provable() => row.1 += 1,
                None => row.2 += 1,
            }
        }
    }
    let mut total: Row = (0, 0, 0, vec![0; MutationOp::ALL.len()], 0);
    for family in &families {
        let row = &rows[family];
        total.0 += row.0;
        total.1 += row.1;
        total.2 += row.2;
        for (acc, n) in total.3.iter_mut().zip(&row.3) {
            *acc += n;
        }
        total.4 += row.4;
    }
    for family in families.iter().map(|f| *f as &str).chain(["total"]) {
        let row = if family == "total" {
            &total
        } else {
            &rows[family]
        };
        let mut cells: Vec<TableCell> = vec![
            family.into(),
            row.0.to_string().into(),
            row.1.to_string().into(),
            row.2.to_string().into(),
        ];
        cells.extend(row.3.iter().map(|n| TableCell::from(n.to_string())));
        cells.push(row.4.to_string().into());
        t.push_row(cells);
    }
    t
}

/// Renders the greedy evaluation summary over per-model case evals.
///
/// Shared between the direct path (`fveval gen --eval`) and the
/// server-mediated path (`fveval submit --wait`), so a served
/// evaluation's table is byte-identical to the local one by
/// construction.
pub fn eval_summary_table(rows: &[(String, Vec<fveval_core::CaseEvals>)], n_tasks: usize) -> Table {
    let mut t = Table::new(
        format!("Generated workload, zero-shot greedy ({n_tasks} tasks)"),
        &["Model", "Syntax", "Functionality", "Partial"],
    );
    for (name, evals) in rows {
        let s = MetricSummary::from_first_samples(evals);
        t.push_row([
            name.as_str().into(),
            s.syntax.into(),
            s.func.into(),
            s.partial.into(),
        ]);
    }
    t
}

/// Finds a profile by display name.
///
/// # Panics
///
/// Panics if the name is unknown.
pub fn model_by_name(name: &str) -> SimulatedModel {
    profiles()
        .into_iter()
        .find(|m| m.name() == name)
        .unwrap_or_else(|| panic!("unknown model '{name}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HarnessOptions {
        HarnessOptions {
            full: false,
            seed: 7,
        }
    }

    #[test]
    fn table6_matches_paper_counts() {
        let t = table6();
        let md = t.to_markdown();
        assert!(md.contains("| Total | **13.000** | **79.000** |"), "{md}");
    }

    #[test]
    fn table1_has_eight_rows_and_ordering_shape() {
        let t = table1(&EvalEngine::new(), &quick());
        assert_eq!(t.rows.len(), 8);
        let md = t.to_markdown();
        assert!(md.contains("gpt-4o"));
        assert!(md.contains("llama-3-8b"));
    }

    #[test]
    fn table1_is_jobs_invariant_and_cache_hits_on_rerun() {
        let sequential = EvalEngine::with_jobs(1);
        let parallel = EvalEngine::with_jobs(4);
        let a = table1(&sequential, &quick()).to_markdown();
        let b = table1(&parallel, &quick()).to_markdown();
        assert_eq!(a, b, "parallel table1 must be byte-identical");
        let before = parallel.cache_stats();
        let c = table1(&parallel, &quick()).to_markdown();
        let after = parallel.cache_stats();
        assert_eq!(b, c);
        assert_eq!(
            after.hits - before.hits,
            8 * 79,
            "second run is answered entirely from the verdict cache"
        );
    }

    #[test]
    fn figure2_renders_histograms() {
        let s = figure2();
        assert!(s.contains("NL specifications (79 cases)"));
        assert!(s.contains('#'));
    }

    #[test]
    fn showcase_contains_verdicts() {
        let s = showcase(&EvalEngine::new(), &quick());
        assert!(s.contains("Syntax:"));
        assert!(s.contains("Functionality"));
    }
}
