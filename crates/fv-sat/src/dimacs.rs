//! DIMACS CNF reading and writing, for test corpora and debugging dumps.

use crate::{Lit, Solver, Var};
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_dimacs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseDimacsError {}

fn err(line: usize, message: impl Into<String>) -> ParseDimacsError {
    ParseDimacsError {
        line,
        message: message.into(),
    }
}

/// Parses DIMACS CNF text into a list of clauses plus the variable count.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on malformed headers, non-integer tokens,
/// or variable indices exceeding the declared count.
pub fn parse_dimacs(text: &str) -> Result<(usize, Vec<Vec<Lit>>), ParseDimacsError> {
    let mut n_vars: Option<usize> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(err(ln, "expected 'p cnf <vars> <clauses>'"));
            }
            n_vars = Some(
                parts[1]
                    .parse()
                    .map_err(|_| err(ln, "bad variable count"))?,
            );
            continue;
        }
        let nv = n_vars.ok_or_else(|| err(ln, "clause before 'p cnf' header"))?;
        for tok in line.split_whitespace() {
            let x: i64 = tok
                .parse()
                .map_err(|_| err(ln, format!("bad token '{tok}'")))?;
            if x == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let v = x.unsigned_abs() as usize;
                if v > nv {
                    return Err(err(ln, format!("variable {v} exceeds declared count {nv}")));
                }
                current.push(Lit::new(Var((v - 1) as u32), x < 0));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok((n_vars.unwrap_or(0), clauses))
}

/// Renders clauses as DIMACS CNF text.
pub fn to_dimacs(n_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = format!("p cnf {} {}\n", n_vars, clauses.len());
    for c in clauses {
        for l in c {
            let v = l.var().0 as i64 + 1;
            let x = if l.is_neg() { -v } else { v };
            out.push_str(&x.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

/// Loads DIMACS clauses into a fresh solver.
///
/// # Errors
///
/// Propagates [`ParseDimacsError`] from [`parse_dimacs`].
pub fn solver_from_dimacs(text: &str) -> Result<Solver, ParseDimacsError> {
    let (n_vars, clauses) = parse_dimacs(text)?;
    let mut s = Solver::new();
    for _ in 0..n_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c);
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let (n, cs) = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(n, 3);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0], vec![Lit::pos(Var(0)), Lit::neg(Var(1))]);
    }

    #[test]
    fn round_trip() {
        let text = "p cnf 2 2\n1 2 0\n-1 -2 0\n";
        let (n, cs) = parse_dimacs(text).unwrap();
        assert_eq!(to_dimacs(n, &cs), text);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_dimacs("p cnf x 2\n").is_err());
        assert!(parse_dimacs("1 2 0\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\n5 0\n").is_err());
    }

    #[test]
    fn solver_from_dimacs_solves() {
        let mut s = solver_from_dimacs("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(Var(1)), Some(true));
    }
}
