//! Parser for module definitions, declarations, processes, instances,
//! and generate constructs.

use crate::lexer::{Kw, Punct, Tok};
use crate::parser::{parse_expr, Cursor};
use crate::prop::parse_assertion;
use crate::ParseError;
use sv_ast::{
    Assign, BinaryOp, EdgeKind, EventExpr, Expr, Instance, LValue, Module, ModuleItem, NetDecl,
    NetKind, ParamDecl, PortDecl, PortDir, Range, SourceFile, Stmt,
};

/// Parses a whole source file of modules.
pub fn parse_source_file(cur: &mut Cursor) -> Result<SourceFile, ParseError> {
    let mut modules = Vec::new();
    while !cur.at_eof() {
        modules.push(parse_module(cur)?);
    }
    Ok(SourceFile { modules })
}

fn parse_module(cur: &mut Cursor) -> Result<Module, ParseError> {
    cur.expect_kw(Kw::Module, "'module'")?;
    let name = cur.expect_ident("module name")?;
    let mut params = Vec::new();
    let mut ports: Vec<PortDecl> = Vec::new();
    let mut port_order = Vec::new();

    // Optional `#(parameter X = e, ...)` header.
    if cur.eat_punct(Punct::Hash) {
        cur.expect_punct(Punct::LParen, "'(' of parameter header")?;
        loop {
            cur.eat_kw(Kw::Parameter);
            let pname = cur.expect_ident("parameter name")?;
            cur.expect_punct(Punct::Assign, "'=' in parameter")?;
            let value = parse_expr(cur)?;
            params.push(ParamDecl {
                local: false,
                name: pname,
                value,
            });
            if !cur.eat_punct(Punct::Comma) {
                break;
            }
        }
        cur.expect_punct(Punct::RParen, "')' of parameter header")?;
    }

    // Port header: names only, or full ANSI declarations.
    if cur.eat_punct(Punct::LParen) {
        if !cur.at_punct(Punct::RParen) {
            loop {
                if cur.at_kw(Kw::Input) || cur.at_kw(Kw::Output) || cur.at_kw(Kw::Inout) {
                    // ANSI style.
                    let dir = parse_dir(cur)?;
                    let is_reg =
                        cur.eat_kw(Kw::Reg) || cur.eat_kw(Kw::Logic) || cur.eat_kw(Kw::Wire);
                    let range = parse_opt_range(cur)?;
                    let pname = cur.expect_ident("port name")?;
                    port_order.push(pname.clone());
                    ports.push(PortDecl {
                        dir,
                        range,
                        is_reg,
                        name: pname,
                    });
                } else {
                    let pname = cur.expect_ident("port name")?;
                    port_order.push(pname);
                }
                if !cur.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        cur.expect_punct(Punct::RParen, "')' of port list")?;
    }
    cur.expect_punct(Punct::Semi, "';' after module header")?;

    let mut items = Vec::new();
    while !cur.at_kw(Kw::Endmodule) {
        if cur.at_eof() {
            return Err(cur.err("unexpected end of file inside module"));
        }
        for item in parse_module_item_multi(cur)? {
            match item {
                ModuleItem::Port(p) => {
                    if !port_order.contains(&p.name) {
                        port_order.push(p.name.clone());
                    }
                    ports.push(p);
                }
                ModuleItem::Param(p) => params.push(p),
                other => items.push(other),
            }
        }
    }
    cur.expect_kw(Kw::Endmodule, "'endmodule'")?;
    Ok(Module {
        name,
        params,
        port_order,
        ports,
        items,
    })
}

fn parse_dir(cur: &mut Cursor) -> Result<PortDir, ParseError> {
    if cur.eat_kw(Kw::Input) {
        Ok(PortDir::Input)
    } else if cur.eat_kw(Kw::Output) {
        Ok(PortDir::Output)
    } else if cur.eat_kw(Kw::Inout) {
        Ok(PortDir::Inout)
    } else {
        Err(cur.err("expected port direction"))
    }
}

fn parse_opt_range(cur: &mut Cursor) -> Result<Option<Range>, ParseError> {
    if cur.at_punct(Punct::LBracket) {
        cur.bump();
        let msb = parse_expr(cur)?;
        cur.expect_punct(Punct::Colon, "':' of range")?;
        let lsb = parse_expr(cur)?;
        cur.expect_punct(Punct::RBracket, "']' of range")?;
        Ok(Some(Range { msb, lsb }))
    } else {
        Ok(None)
    }
}

/// Parses one syntactic module item, expanding declaration lists.
pub fn parse_module_item_multi(cur: &mut Cursor) -> Result<Vec<ModuleItem>, ParseError> {
    // Parameters.
    if cur.at_kw(Kw::Parameter) || cur.at_kw(Kw::Localparam) {
        let local = cur.at_kw(Kw::Localparam);
        cur.bump();
        let mut out = Vec::new();
        loop {
            let name = cur.expect_ident("parameter name")?;
            cur.expect_punct(Punct::Assign, "'=' in parameter")?;
            let value = parse_expr(cur)?;
            out.push(ModuleItem::Param(ParamDecl { local, name, value }));
            if !cur.eat_punct(Punct::Comma) {
                break;
            }
        }
        cur.expect_punct(Punct::Semi, "';' after parameter")?;
        return Ok(out);
    }
    // Port declarations in the body.
    if cur.at_kw(Kw::Input) || cur.at_kw(Kw::Output) || cur.at_kw(Kw::Inout) {
        let dir = parse_dir(cur)?;
        let is_reg = cur.eat_kw(Kw::Reg) || cur.eat_kw(Kw::Logic) || cur.eat_kw(Kw::Wire);
        let range = parse_opt_range(cur)?;
        let mut out = Vec::new();
        loop {
            let name = cur.expect_ident("port name")?;
            out.push(ModuleItem::Port(PortDecl {
                dir,
                range: range.clone(),
                is_reg,
                name,
            }));
            if !cur.eat_punct(Punct::Comma) {
                break;
            }
        }
        cur.expect_punct(Punct::Semi, "';' after port declaration")?;
        return Ok(out);
    }
    // Net declarations.
    if cur.at_kw(Kw::Wire) || cur.at_kw(Kw::Reg) || cur.at_kw(Kw::Logic) || cur.at_kw(Kw::Genvar) {
        let kind = match cur.bump() {
            Tok::Keyword(Kw::Wire) => NetKind::Wire,
            Tok::Keyword(Kw::Reg) => NetKind::Reg,
            Tok::Keyword(Kw::Logic) => NetKind::Logic,
            _ => NetKind::Genvar,
        };
        let mut packed = Vec::new();
        while let Some(r) = parse_opt_range(cur)? {
            packed.push(r);
        }
        let mut out = Vec::new();
        loop {
            let name = cur.expect_ident("net name")?;
            let mut unpacked = Vec::new();
            while let Some(r) = parse_opt_range(cur)? {
                unpacked.push(r);
            }
            let init = if cur.eat_punct(Punct::Assign) {
                Some(parse_expr(cur)?)
            } else {
                None
            };
            out.push(ModuleItem::Net(NetDecl {
                kind,
                packed: packed.clone(),
                name,
                unpacked,
                init,
            }));
            if !cur.eat_punct(Punct::Comma) {
                break;
            }
        }
        cur.expect_punct(Punct::Semi, "';' after net declaration")?;
        return Ok(out);
    }
    // Continuous assign.
    if cur.eat_kw(Kw::Assign) {
        let lhs = parse_lvalue(cur)?;
        cur.expect_punct(Punct::Assign, "'=' of assign")?;
        let rhs = parse_expr(cur)?;
        cur.expect_punct(Punct::Semi, "';' after assign")?;
        return Ok(vec![ModuleItem::ContAssign(Assign { lhs, rhs })]);
    }
    // Processes.
    if cur.at_kw(Kw::AlwaysFf) || cur.at_kw(Kw::Always) {
        let is_ff_kw = cur.at_kw(Kw::AlwaysFf);
        cur.bump();
        cur.expect_punct(Punct::At, "'@' of always")?;
        // `@*` or `@(*)` combinational form.
        if cur.eat_punct(Punct::Star) {
            let body = parse_stmt(cur)?;
            return Ok(vec![ModuleItem::AlwaysComb(body)]);
        }
        cur.expect_punct(Punct::LParen, "'(' of sensitivity list")?;
        if cur.eat_punct(Punct::Star) {
            cur.expect_punct(Punct::RParen, "')' of sensitivity list")?;
            let body = parse_stmt(cur)?;
            return Ok(vec![ModuleItem::AlwaysComb(body)]);
        }
        let mut events = Vec::new();
        loop {
            let edge = if cur.eat_kw(Kw::Posedge) {
                EdgeKind::Pos
            } else if cur.eat_kw(Kw::Negedge) {
                EdgeKind::Neg
            } else {
                return Err(cur.err("expected posedge/negedge in sensitivity list"));
            };
            let signal = cur.expect_ident("sensitivity signal")?;
            events.push(EventExpr { edge, signal });
            if !(cur.eat_kw(Kw::Or) || cur.eat_punct(Punct::Comma)) {
                break;
            }
        }
        cur.expect_punct(Punct::RParen, "')' of sensitivity list")?;
        let body = parse_stmt(cur)?;
        return Ok(vec![if is_ff_kw {
            ModuleItem::AlwaysFf { events, body }
        } else {
            ModuleItem::AlwaysAt { events, body }
        }]);
    }
    if cur.eat_kw(Kw::AlwaysComb) {
        let body = parse_stmt(cur)?;
        return Ok(vec![ModuleItem::AlwaysComb(body)]);
    }
    // Generate region.
    if cur.eat_kw(Kw::Generate) {
        let mut inner = Vec::new();
        while !cur.at_kw(Kw::Endgenerate) {
            if cur.at_eof() {
                return Err(cur.err("unexpected end of file inside generate"));
            }
            inner.extend(parse_module_item_multi(cur)?);
        }
        cur.expect_kw(Kw::Endgenerate, "'endgenerate'")?;
        return Ok(inner);
    }
    // Generate-for loop (bare or inside generate).
    if cur.at_kw(Kw::For) {
        return Ok(vec![parse_generate_for(cur)?]);
    }
    if cur.at_kw(Kw::Initial) {
        return Err(cur.err(
            "initial blocks are not allowed in formal testbenches (this is a formal \
             verification context, not RTL simulation)",
        ));
    }
    // Assertion: `label: assert ...` or bare `assert ...`.
    let is_assert_here = cur.at_kw(Kw::Assert) || cur.at_kw(Kw::Assume) || cur.at_kw(Kw::Cover);
    let is_labeled_assert = matches!(cur.peek(), Tok::Ident(_))
        && cur.peek_n(1) == &Tok::Punct(Punct::Colon)
        && matches!(
            cur.peek_n(2),
            Tok::Keyword(Kw::Assert) | Tok::Keyword(Kw::Assume) | Tok::Keyword(Kw::Cover)
        );
    if is_assert_here || is_labeled_assert {
        let a = parse_assertion(cur)?;
        return Ok(vec![ModuleItem::Assertion(a)]);
    }
    // Instance: `mod [#(...)] inst ( .p(e), ... );`
    if matches!(cur.peek(), Tok::Ident(_)) {
        return Ok(vec![parse_instance(cur)?]);
    }
    Err(cur.err(format!("expected module item, found {:?}", cur.peek())))
}

fn parse_generate_for(cur: &mut Cursor) -> Result<ModuleItem, ParseError> {
    cur.expect_kw(Kw::For, "'for'")?;
    cur.expect_punct(Punct::LParen, "'(' of for")?;
    let _ = cur.eat_kw(Kw::Genvar) || cur.eat_kw(Kw::Int);
    let var = cur.expect_ident("loop variable")?;
    cur.expect_punct(Punct::Assign, "'=' of loop init")?;
    let init = parse_expr(cur)?;
    cur.expect_punct(Punct::Semi, "';' after loop init")?;
    let cond = parse_expr(cur)?;
    cur.expect_punct(Punct::Semi, "';' after loop condition")?;
    // Step: `i++`, `i--`, or `i = expr`.
    let step_var = cur.expect_ident("loop variable in step")?;
    if step_var != var {
        return Err(cur.err("loop step must update the loop variable"));
    }
    let step = if cur.eat_punct(Punct::PlusPlus) {
        Expr::bin(BinaryOp::Add, Expr::ident(var.clone()), Expr::num(1))
    } else if cur.eat_punct(Punct::MinusMinus) {
        Expr::bin(BinaryOp::Sub, Expr::ident(var.clone()), Expr::num(1))
    } else {
        cur.expect_punct(Punct::Assign, "'=' of loop step")?;
        parse_expr(cur)?
    };
    cur.expect_punct(Punct::RParen, "')' of for")?;
    cur.expect_kw(Kw::Begin, "'begin' of generate-for body")?;
    let label = if cur.eat_punct(Punct::Colon) {
        Some(cur.expect_ident("generate block label")?)
    } else {
        None
    };
    let mut body = Vec::new();
    while !cur.at_kw(Kw::End) {
        if cur.at_eof() {
            return Err(cur.err("unexpected end of file inside generate-for"));
        }
        body.extend(parse_module_item_multi(cur)?);
    }
    cur.expect_kw(Kw::End, "'end' of generate-for")?;
    Ok(ModuleItem::GenerateFor {
        var,
        init,
        cond,
        step,
        label,
        body,
    })
}

fn parse_instance(cur: &mut Cursor) -> Result<ModuleItem, ParseError> {
    let module = cur.expect_ident("module name")?;
    let mut params = Vec::new();
    if cur.eat_punct(Punct::Hash) {
        cur.expect_punct(Punct::LParen, "'(' of parameter overrides")?;
        loop {
            cur.expect_punct(Punct::Dot, "'.' of parameter override")?;
            let name = cur.expect_ident("parameter name")?;
            cur.expect_punct(Punct::LParen, "'(' of parameter value")?;
            let value = parse_expr(cur)?;
            cur.expect_punct(Punct::RParen, "')' of parameter value")?;
            params.push((name, value));
            if !cur.eat_punct(Punct::Comma) {
                break;
            }
        }
        cur.expect_punct(Punct::RParen, "')' of parameter overrides")?;
    }
    let name = cur.expect_ident("instance name")?;
    cur.expect_punct(Punct::LParen, "'(' of port connections")?;
    let mut conns = Vec::new();
    if !cur.at_punct(Punct::RParen) {
        loop {
            cur.expect_punct(Punct::Dot, "'.' of port connection")?;
            let pname = cur.expect_ident("port name")?;
            cur.expect_punct(Punct::LParen, "'(' of port connection")?;
            let e = parse_expr(cur)?;
            cur.expect_punct(Punct::RParen, "')' of port connection")?;
            conns.push((pname, e));
            if !cur.eat_punct(Punct::Comma) {
                break;
            }
        }
    }
    cur.expect_punct(Punct::RParen, "')' of port connections")?;
    cur.expect_punct(Punct::Semi, "';' after instance")?;
    Ok(ModuleItem::Instance(Instance {
        module,
        name,
        params,
        conns,
    }))
}

fn parse_lvalue(cur: &mut Cursor) -> Result<LValue, ParseError> {
    if cur.eat_punct(Punct::LBrace) {
        let mut parts = Vec::new();
        loop {
            parts.push(parse_lvalue(cur)?);
            if !cur.eat_punct(Punct::Comma) {
                break;
            }
        }
        cur.expect_punct(Punct::RBrace, "'}' of concatenation target")?;
        return Ok(LValue::Concat(parts));
    }
    let name = cur.expect_ident("assignment target")?;
    if cur.eat_punct(Punct::LBracket) {
        let first = parse_expr(cur)?;
        if cur.eat_punct(Punct::Colon) {
            let lo = parse_expr(cur)?;
            cur.expect_punct(Punct::RBracket, "']' of part-select target")?;
            return Ok(LValue::Slice(name, first, lo));
        }
        cur.expect_punct(Punct::RBracket, "']' of bit-select target")?;
        return Ok(LValue::Index(name, first));
    }
    Ok(LValue::Ident(name))
}

/// Parses a procedural statement.
pub fn parse_stmt(cur: &mut Cursor) -> Result<Stmt, ParseError> {
    if cur.eat_kw(Kw::Begin) {
        if cur.eat_punct(Punct::Colon) {
            let _label = cur.expect_ident("block label")?;
        }
        let mut stmts = Vec::new();
        while !cur.at_kw(Kw::End) {
            if cur.at_eof() {
                return Err(cur.err("unexpected end of file inside begin/end"));
            }
            stmts.push(parse_stmt(cur)?);
        }
        cur.expect_kw(Kw::End, "'end'")?;
        return Ok(Stmt::Block(stmts));
    }
    if cur.eat_kw(Kw::If) {
        cur.expect_punct(Punct::LParen, "'(' of if")?;
        let cond = parse_expr(cur)?;
        cur.expect_punct(Punct::RParen, "')' of if")?;
        let then = parse_stmt(cur)?;
        let alt = if cur.eat_kw(Kw::Else) {
            Some(Box::new(parse_stmt(cur)?))
        } else {
            None
        };
        return Ok(Stmt::If {
            cond,
            then: Box::new(then),
            alt,
        });
    }
    if cur.eat_kw(Kw::Case) {
        cur.expect_punct(Punct::LParen, "'(' of case")?;
        let subject = parse_expr(cur)?;
        cur.expect_punct(Punct::RParen, "')' of case")?;
        let mut arms = Vec::new();
        let mut default = None;
        while !cur.at_kw(Kw::Endcase) {
            if cur.at_eof() {
                return Err(cur.err("unexpected end of file inside case"));
            }
            if cur.eat_kw(Kw::Default) {
                cur.expect_punct(Punct::Colon, "':' after default")?;
                default = Some(Box::new(parse_stmt(cur)?));
                continue;
            }
            let mut labels = vec![parse_expr(cur)?];
            while cur.eat_punct(Punct::Comma) {
                labels.push(parse_expr(cur)?);
            }
            cur.expect_punct(Punct::Colon, "':' after case label")?;
            let body = parse_stmt(cur)?;
            arms.push((labels, body));
        }
        cur.expect_kw(Kw::Endcase, "'endcase'")?;
        return Ok(Stmt::Case {
            subject,
            arms,
            default,
        });
    }
    if cur.eat_punct(Punct::Semi) {
        return Ok(Stmt::Empty);
    }
    // Assignment.
    let lhs = parse_lvalue(cur)?;
    if cur.eat_punct(Punct::Le) {
        let rhs = parse_expr(cur)?;
        cur.expect_punct(Punct::Semi, "';' after non-blocking assignment")?;
        return Ok(Stmt::NonBlocking(lhs, rhs));
    }
    if cur.eat_punct(Punct::Assign) {
        let rhs = parse_expr(cur)?;
        cur.expect_punct(Punct::Semi, "';' after blocking assignment")?;
        return Ok(Stmt::Blocking(lhs, rhs));
    }
    Err(cur.err("expected '<=' or '=' in assignment"))
}

#[cfg(test)]
mod tests {
    use crate::{parse_snippet, parse_source};
    use sv_ast::{ModuleItem, PortDir, Stmt};

    #[test]
    fn minimal_module() {
        let src =
            "module m (a, b);\ninput a;\noutput [3:0] b;\nwire w;\nassign w = a;\nendmodule\n";
        let f = parse_source(src).unwrap();
        let m = f.module("m").unwrap();
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.port("b").unwrap().dir, PortDir::Output);
        assert_eq!(m.items.len(), 2);
    }

    #[test]
    fn ansi_header() {
        let src = "module m (input clk, input [7:0] d, output reg [7:0] q);\nendmodule\n";
        let f = parse_source(src).unwrap();
        let m = f.module("m").unwrap();
        assert_eq!(m.ports.len(), 3);
        assert!(m.port("q").unwrap().is_reg);
    }

    #[test]
    fn comma_decls_expand() {
        let src = "module m ();\nreg [1:0] state, next_state;\ninput clk, reset_;\nendmodule\n";
        let f = parse_source(src).unwrap();
        let m = f.module("m").unwrap();
        let nets: Vec<_> = m
            .items
            .iter()
            .filter(|i| matches!(i, ModuleItem::Net(_)))
            .collect();
        assert_eq!(nets.len(), 2);
        assert_eq!(m.ports.len(), 2);
    }

    #[test]
    fn always_ff_with_async_reset() {
        let src = "module m (clk, reset_);\ninput clk; input reset_;\nreg q;\n\
                   always_ff @(posedge clk or negedge reset_) begin\n\
                   if (!reset_) q <= 1'b0; else q <= !q;\nend\nendmodule\n";
        let f = parse_source(src).unwrap();
        let m = f.module("m").unwrap();
        match &m.items[1] {
            ModuleItem::AlwaysFf { events, body } => {
                assert_eq!(events.len(), 2);
                assert!(matches!(body, Stmt::Block(_)));
            }
            other => panic!("expected always_ff, got {other:?}"),
        }
    }

    #[test]
    fn case_statement() {
        let src = "module m ();\nreg [1:0] s, n;\nalways_comb begin\ncase (s)\n\
                   2'b00: n = 2'b10;\n2'b01, 2'b10: n = 2'b11;\ndefault: n = 2'b00;\n\
                   endcase\nend\nendmodule\n";
        let f = parse_source(src).unwrap();
        let m = f.module("m").unwrap();
        match &m.items[2] {
            ModuleItem::AlwaysComb(Stmt::Block(stmts)) => match &stmts[0] {
                Stmt::Case { arms, default, .. } => {
                    assert_eq!(arms.len(), 2);
                    assert_eq!(arms[1].0.len(), 2);
                    assert!(default.is_some());
                }
                other => panic!("expected case, got {other:?}"),
            },
            other => panic!("expected always_comb, got {other:?}"),
        }
    }

    #[test]
    fn generate_for_with_label() {
        let src = "module m ();\nwire [3:0] d;\n\
                   for (genvar i = 1; i < 4; i++) begin : loop_id\n\
                   assign d[i] = d[i-1];\nend\nendmodule\n";
        let f = parse_source(src).unwrap();
        let m = f.module("m").unwrap();
        match &m.items[1] {
            ModuleItem::GenerateFor {
                var, label, body, ..
            } => {
                assert_eq!(var, "i");
                assert_eq!(label.as_deref(), Some("loop_id"));
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected generate-for, got {other:?}"),
        }
    }

    #[test]
    fn generate_endgenerate_region() {
        let src = "module m ();\nwire w;\ngenerate\nfor (genvar i=0; i<2; i=i+1) begin : gen\n\
                   wire x;\nend\nendgenerate\nendmodule\n";
        let f = parse_source(src).unwrap();
        assert!(f
            .module("m")
            .unwrap()
            .items
            .iter()
            .any(|i| matches!(i, ModuleItem::GenerateFor { .. })));
    }

    #[test]
    fn instance_with_params() {
        let src = "module top ();\nwire clk, a, b;\n\
                   exec_unit_0 #(.WIDTH(8)) unit_0 (\n.clk(clk),\n.in_data(a),\n.out_data(b)\n);\n\
                   endmodule\n";
        let f = parse_source(src).unwrap();
        match &f.module("top").unwrap().items[3] {
            ModuleItem::Instance(inst) => {
                assert_eq!(inst.module, "exec_unit_0");
                assert_eq!(inst.params.len(), 1);
                assert_eq!(inst.conns.len(), 3);
            }
            other => panic!("expected instance, got {other:?}"),
        }
    }

    #[test]
    fn module_with_assertion() {
        let src = "module tb (clk);\ninput clk;\nwire a;\n\
                   asrt: assert property (@(posedge clk) a);\nendmodule\n";
        let f = parse_source(src).unwrap();
        let m = f.module("tb").unwrap();
        assert_eq!(m.assertions().count(), 1);
    }

    #[test]
    fn snippet_parsing_design2sva_response_shape() {
        // The exact shape of the paper's Figure 9 / Appendix C responses.
        let src = "logic [1:0] fsm_state, fsm_next_state;\n\
                   assign fsm_state = fsm_out;\n\
                   assert property (@(posedge clk) disable iff (tb_reset)\n\
                   (fsm_state == S2) |-> (fsm_next_state == S0 || fsm_next_state == S1)\n\
                   );\n";
        let items = parse_snippet(src).unwrap();
        assert_eq!(items.len(), 4);
        assert!(matches!(items[3], ModuleItem::Assertion(_)));
    }

    #[test]
    fn initial_block_rejected() {
        let src = "initial begin a = 1; end\n";
        let err = parse_snippet(src).unwrap_err();
        assert!(err.message.contains("initial"));
    }

    #[test]
    fn localparam_with_clog2() {
        let src = "module m ();\nparameter FIFO_DEPTH = 4;\n\
                   localparam FIFO_DEPTH_log2 = $clog2(FIFO_DEPTH);\nendmodule\n";
        let f = parse_source(src).unwrap();
        assert_eq!(f.module("m").unwrap().params.len(), 2);
    }
}
