//! Runner for the Design2SVA sub-benchmark: responses are grafted onto
//! the testbench, elaborated with the design bound in, and checked with
//! the model-checking engine (BMC + k-induction).
//!
//! The flow is compile-once / score-many: [`compile_design`] performs
//! the whole-file elaboration (design + testbench + DUT instantiation)
//! exactly once per case, and [`Design2svaRunner::open_session`] wraps
//! a [`fv_core::ProofSession`] over the compiled base netlist so that
//! every helper-free candidate assertion shares one unrolled formula
//! and one solver. Responses that bring their own helper items change
//! the netlist, so they pay a (cheap, split-elaboration) bind plus a
//! one-shot proof of their own.

use crate::engine::{design_task_specs, EvalEngine};
use crate::metrics::{CaseEvals, SampleEval};
use fv_core::{ProofSession, ProveConfig, ProveResult, ProverStats};
use fveval_data::DesignCase;
use fveval_llm::{Backend, InferenceConfig};
use sv_ast::{Expr, Instance, ModuleItem};
use sv_parser::{parse_snippet, parse_source};
use sv_synth::{elaborate_design, elaborate_design_driver, ElaboratedDesign, Netlist};

/// A Design2SVA case compiled into reusable form: the split-elaborated
/// design (testbench with the DUT bound in) plus the assertion-visible
/// testbench constants. One `CompiledDesign` is shared — via the
/// engine's content-addressed cache — by every backend and sample that
/// scores against the case.
#[derive(Debug, Clone)]
pub struct CompiledDesign {
    design: ElaboratedDesign,
    /// Parameter constants visible to assertions (state encodings).
    consts: Vec<(String, u32, u128)>,
}

/// Parses the design + testbench, builds the DUT binding, and runs the
/// whole-file elaboration — the formal tool's compile step for a
/// Design2SVA case, paid once per design.
///
/// # Errors
///
/// Returns a message if the (generated) collateral itself fails to
/// parse or elaborate — covered by dataset tests, so unexpected here.
pub fn compile_design(case: &DesignCase) -> Result<CompiledDesign, String> {
    let mut src = String::with_capacity(case.design_source.len() + case.tb_source.len() + 1);
    src.push_str(&case.design_source);
    src.push('\n');
    src.push_str(&case.tb_source);
    let file = parse_source(&src).map_err(|e| e.to_string())?;
    let design = file
        .module(&case.top)
        .ok_or_else(|| format!("missing design module {}", case.top))?;
    let conns: Vec<(String, Expr)> = design
        .port_order
        .iter()
        .map(|p| (p.clone(), Expr::ident(p.clone())))
        .collect();
    let dut_instance = ModuleItem::Instance(Instance {
        module: case.top.clone(),
        name: "dut".into(),
        params: vec![],
        conns,
    });
    // One whole-file elaboration validates the collateral, harvests
    // the testbench parameters, and caches the helper-free netlist.
    // `FVEVAL_ELAB=driver` routes it through the parallel elaboration
    // driver (byte-identical output); the sequential walk is the
    // default.
    let extras = std::slice::from_ref(&dut_instance);
    let design = match std::env::var("FVEVAL_ELAB").as_deref() {
        Ok("driver") => elaborate_design_driver(&file, &case.tb_top, extras),
        _ => elaborate_design(&file, &case.tb_top, extras),
    }
    .map_err(|e| e.to_string())?;
    let consts = design
        .params()
        .iter()
        .map(|(n, v)| (n.clone(), 32u32, *v))
        .collect();
    Ok(CompiledDesign { design, consts })
}

impl CompiledDesign {
    /// The helper-free base netlist (testbench with the DUT bound in).
    pub fn netlist(&self) -> &Netlist {
        self.design.netlist()
    }

    /// Testbench parameter bindings visible to candidate assertions.
    pub fn consts(&self) -> &[(String, u32, u128)] {
        &self.consts
    }

    /// Splices a response's helper items into the compiled design —
    /// only the helpers are flattened; the design itself is not
    /// re-elaborated.
    fn netlist_with(&self, helpers: &[ModuleItem]) -> Result<Netlist, String> {
        self.design.bind_extras(helpers).map_err(|e| e.to_string())
    }
}

/// A per-design scoring session: one [`ProofSession`] over the compiled
/// base netlist, opened lazily on the first helper-free candidate and
/// shared by every later one. Obtain via
/// [`Design2svaRunner::open_session`], feed it through
/// [`Design2svaRunner::evaluate_in_session`].
pub struct DesignSession<'c> {
    compiled: &'c CompiledDesign,
    cfg: ProveConfig,
    /// Boxed: the proof context (graph + solver + simulators) is large
    /// and the session struct travels by value inside group scorers.
    session: Option<Box<ProofSession<'c>>>,
}

impl DesignSession<'_> {
    /// Cumulative prover counters for the shared session (zero until a
    /// helper-free candidate opened it; one-shot helper proofs are
    /// reported per sample, not here).
    pub fn stats(&self) -> ProverStats {
        self.session
            .as_ref()
            .map_or_else(ProverStats::default, |s| s.stats())
    }
}

/// The Design2SVA evaluation loop.
#[derive(Debug, Clone)]
pub struct Design2svaRunner {
    prove_cfg: ProveConfig,
}

impl Default for Design2svaRunner {
    fn default() -> Design2svaRunner {
        Design2svaRunner::new()
    }
}

impl Design2svaRunner {
    /// Runner with default prover bounds.
    pub fn new() -> Design2svaRunner {
        Design2svaRunner {
            prove_cfg: ProveConfig::default(),
        }
    }

    /// Overrides the prover bounds.
    pub fn with_prove_config(mut self, cfg: ProveConfig) -> Design2svaRunner {
        self.prove_cfg = cfg;
        self
    }

    /// Opens a scoring session for a compiled design: all helper-free
    /// responses evaluated through it share one proof context (one
    /// unrolled formula, one solver) across every sample and model.
    pub fn open_session<'c>(&self, compiled: &'c CompiledDesign) -> DesignSession<'c> {
        DesignSession {
            compiled,
            cfg: self.prove_cfg,
            session: None,
        }
    }

    /// Scores one response snippet against a compiled design.
    ///
    /// - parse failure, elaboration failure, missing assertion, or a
    ///   reference to an out-of-scope signal → `syntax = false`;
    /// - otherwise `syntax = true` and `func` = "the assertion was
    ///   proven" (the paper's Design2SVA functionality metric).
    pub fn evaluate_response(&self, bound: &CompiledDesign, response: &str) -> SampleEval {
        self.evaluate_response_stats(bound, response).0
    }

    /// [`Design2svaRunner::evaluate_response`], additionally reporting
    /// how the model checker discharged its queries (zero counters when
    /// scoring never reached the prover). One-shot: opens a throwaway
    /// session per call; batch scoring should hold a
    /// [`Design2svaRunner::open_session`] session instead.
    pub fn evaluate_response_stats(
        &self,
        bound: &CompiledDesign,
        response: &str,
    ) -> (SampleEval, ProverStats) {
        let mut session = self.open_session(bound);
        self.evaluate_in_session(&mut session, response)
    }

    /// Scores one response through a shared per-design session. The
    /// verdict is identical to [`Design2svaRunner::evaluate_response`]
    /// — sessions only change *how much work* the proof costs, never
    /// its outcome. Responses carrying helper items get their own
    /// netlist (the helpers change the design), bound via the cheap
    /// split-elaboration path and proven one-shot.
    pub fn evaluate_in_session(
        &self,
        session: &mut DesignSession<'_>,
        response: &str,
    ) -> (SampleEval, ProverStats) {
        let failed = (SampleEval::failed(), ProverStats::default());
        let items = match parse_snippet(response) {
            Ok(items) => items,
            Err(_) => return failed,
        };
        let mut helpers = Vec::new();
        let mut assertion = None;
        for item in items {
            match item {
                ModuleItem::Assertion(a) => {
                    if assertion.is_none() {
                        assertion = Some(a);
                    }
                }
                other => helpers.push(other),
            }
        }
        let Some(assertion) = assertion else {
            return failed;
        };
        let sample = |result: &ProveResult| {
            let proven = matches!(result, ProveResult::Proven { .. });
            SampleEval {
                syntax: true,
                func: proven,
                partial: proven,
                bleu: 0.0,
            }
        };
        // An Err from a check — an unknown signal in the assertion
        // (design-internal reference) — is an elaboration failure; the
        // work the session did before erroring (its open, the check
        // count) still happened, so the counter delta is reported.
        if helpers.is_empty() {
            // The shared base netlist: stream through the session.
            if session.session.is_none() {
                let compiled = session.compiled;
                match ProofSession::open(compiled.netlist(), &compiled.consts, session.cfg) {
                    Ok(open) => session.session = Some(Box::new(open)),
                    // Unreachable for elaborated netlists (cycles are
                    // rejected at elaboration); fail the sample rather
                    // than poison the run.
                    Err(_) => return failed,
                }
            }
            let proof = session.session.as_mut().expect("session opened above");
            let before = proof.stats();
            match proof.check(&assertion) {
                Err(_) => (SampleEval::failed(), proof.stats().delta_since(&before)),
                Ok((result, stats)) => (sample(&result), stats),
            }
        } else {
            // Helper items change the design: a private netlist via the
            // cheap split-elaboration bind, proven one-shot.
            let netlist = match session.compiled.netlist_with(&helpers) {
                Ok(nl) => nl,
                Err(_) => return failed,
            };
            let mut one_shot =
                match ProofSession::open(&netlist, &session.compiled.consts, session.cfg) {
                    Ok(open) => open,
                    Err(_) => return failed,
                };
            match one_shot.check(&assertion) {
                Err(_) => (SampleEval::failed(), one_shot.stats()),
                Ok((result, _)) => (sample(&result), one_shot.stats()),
            }
        }
    }

    /// Runs a model over a set of design cases with `n_samples` each
    /// (sequential convenience wrapper over [`EvalEngine`]; build an
    /// engine directly for parallelism and cross-run caching).
    pub fn run(
        &self,
        model: &dyn Backend,
        cases: &[DesignCase],
        cfg: &InferenceConfig,
        n_samples: u32,
    ) -> Vec<CaseEvals> {
        EvalEngine::with_jobs(1).with_d2s_runner(self.clone()).run(
            model,
            &design_task_specs(cases),
            cfg,
            n_samples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fveval_data::{generate_fsm, generate_pipeline, FsmParams, PipelineParams};

    fn fsm_case() -> DesignCase {
        generate_fsm(&FsmParams {
            n_states: 4,
            n_edges: 3,
            width: 8,
            guard_depth: 1,
            seed: 21,
        })
    }

    #[test]
    fn golden_assertions_score_func() {
        let case = fsm_case();
        let bound = compile_design(&case).unwrap();
        let runner = Design2svaRunner::new();
        for g in &case.golden {
            let e = runner.evaluate_response(&bound, g);
            assert!(e.syntax && e.func, "golden should prove: {g}");
        }
    }

    #[test]
    fn pipeline_golden_scores_func() {
        let case = generate_pipeline(&PipelineParams {
            n_units: 1,
            unit_depths: vec![2],
            width: 8,
            expr_ops: 2,
            seed: 3,
        });
        let bound = compile_design(&case).unwrap();
        let runner = Design2svaRunner::new();
        let e = runner.evaluate_response(&bound, &case.golden[0]);
        assert!(e.syntax && e.func);
    }

    #[test]
    fn malformed_scores_syntax_fail() {
        let case = fsm_case();
        let bound = compile_design(&case).unwrap();
        let runner = Design2svaRunner::new();
        let e = runner.evaluate_response(&bound, "assert property (@(posedge clk) (fsm_out");
        assert!(!e.syntax);
    }

    #[test]
    fn internal_signal_scores_syntax_fail() {
        let case = fsm_case();
        let bound = compile_design(&case).unwrap();
        let runner = Design2svaRunner::new();
        let e = runner.evaluate_response(
            &bound,
            "assert property (@(posedge clk) disable iff (tb_reset) (state == S0) |-> 1'b1);",
        );
        assert!(!e.syntax, "design-internal `state` must not resolve");
    }

    #[test]
    fn wrong_transition_scores_syntax_but_not_func() {
        let case = fsm_case();
        let bound = compile_design(&case).unwrap();
        // Claim S0 -> S0 which the ring backbone makes false unless the
        // graph happens to contain the self-loop; pick a definitely-wrong
        // one by asserting a transition to a state outside the real set.
        let (n, succs) = match &case.kind {
            fveval_data::DesignKind::Fsm {
                n_states,
                transitions,
                ..
            } => (*n_states, transitions[0].clone()),
            _ => unreachable!(),
        };
        let wrong = (0..n)
            .find(|t| !succs.contains(t))
            .expect("wrong successor");
        let runner = Design2svaRunner::new();
        let resp = format!(
            "assert property (@(posedge clk) disable iff (tb_reset) \
             (fsm_out == S0) |-> ##1 (fsm_out == S{wrong}));"
        );
        let e = runner.evaluate_response(&bound, &resp);
        assert!(e.syntax && !e.func, "{resp}");
    }

    #[test]
    fn session_scoring_matches_one_shot() {
        // A stream of mixed-quality responses through one shared
        // session must score identically to per-response one-shot
        // evaluation — including the helper-carrying response that
        // takes the private-netlist path.
        let case = fsm_case();
        let bound = compile_design(&case).unwrap();
        let runner = Design2svaRunner::new();
        let succs = match &case.kind {
            fveval_data::DesignKind::Fsm { transitions, .. } => transitions[1].clone(),
            _ => unreachable!(),
        };
        let disj = succs
            .iter()
            .map(|t| format!("(mirror == S{t})"))
            .collect::<Vec<_>>()
            .join(" || ");
        let helper_resp = format!(
            "logic [FSM_WIDTH-1:0] mirror;\nassign mirror = fsm_out;\n\
             assert property (@(posedge clk) disable iff (tb_reset) \
             (mirror == S1) |-> ##1 ({disj}));"
        );
        let mut responses: Vec<String> = case.golden.clone();
        responses.push("assert property (@(posedge clk) (fsm_out".into());
        responses.push("assert property (@(posedge clk) state == S0);".into());
        responses.push(helper_resp);
        responses.push(case.golden[0].clone()); // repeat: strash reuse
        let mut session = runner.open_session(&bound);
        for resp in &responses {
            let via_session = runner.evaluate_in_session(&mut session, resp).0;
            let one_shot = runner.evaluate_response(&bound, resp);
            assert_eq!(via_session, one_shot, "{resp}");
        }
        let stats = session.stats();
        assert_eq!(stats.sessions_opened, 1, "{stats:?}");
        assert!(
            stats.session_checks > case.golden.len() as u64,
            "helper-free responses stream through the shared session: {stats:?}"
        );
        assert!(stats.unroll_reuse_hits > 0, "{stats:?}");
    }

    #[test]
    fn helper_code_elaborates_into_scope() {
        let case = fsm_case();
        let bound = compile_design(&case).unwrap();
        let succs = match &case.kind {
            fveval_data::DesignKind::Fsm { transitions, .. } => transitions[1].clone(),
            _ => unreachable!(),
        };
        let disj = succs
            .iter()
            .map(|t| format!("(mirror == S{t})"))
            .collect::<Vec<_>>()
            .join(" || ");
        let resp = format!(
            "logic [FSM_WIDTH-1:0] mirror;\nassign mirror = fsm_out;\n\
             assert property (@(posedge clk) disable iff (tb_reset) \
             (mirror == S1) |-> ##1 ({disj}));"
        );
        let runner = Design2svaRunner::new();
        let e = runner.evaluate_response(&bound, &resp);
        assert!(e.syntax && e.func, "{resp}");
    }
}
