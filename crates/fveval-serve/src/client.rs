//! The blocking client for the evaluation service.
//!
//! One [`Client`] per server address; every call opens a fresh
//! connection (the protocol is `Connection: close`), so a client is
//! freely shareable across threads by cloning.

use crate::http;
use crate::json::{parse, Json};
use crate::protocol::{EvalRequest, JobState, JobView};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What a submit attempt came back with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The job was queued.
    Accepted {
        /// The job id to poll.
        job: u64,
        /// The shard it routed to (absent on pre-shard servers).
        shard: Option<u64>,
    },
    /// The shard queue was full (`429`); retry after the hint.
    Busy {
        /// The server's suggested backoff, in milliseconds.
        retry_after_ms: u64,
    },
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// Client for `addr` (e.g. `127.0.0.1:8642`) with a 30 s
    /// per-request timeout.
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the per-request timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn call(&self, method: &str, path: &str, body: &str) -> Result<(u16, Json), String> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|e| format!("cannot set timeouts: {e}"))?;
        http::write_request(&mut stream, method, path, body)
            .map_err(|e| format!("request failed: {e}"))?;
        let (status, text) =
            http::read_response(&mut stream).map_err(|e| format!("response failed: {e}"))?;
        let value = if text.is_empty() {
            Json::Null
        } else {
            parse(&text).map_err(|e| format!("malformed response body: {e}"))?
        };
        Ok((status, value))
    }

    fn expect_ok(&self, method: &str, path: &str, body: &str) -> Result<Json, String> {
        let (status, value) = self.call(method, path, body)?;
        if status == 200 {
            Ok(value)
        } else {
            let detail = value
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("(no detail)");
            Err(format!("{method} {path}: HTTP {status}: {detail}"))
        }
    }

    /// Submits an evaluation job; returns its id.
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure, a full queue (`429`),
    /// or a rejected request.
    pub fn submit(&self, request: &EvalRequest) -> Result<u64, String> {
        match self.try_submit(request)? {
            SubmitOutcome::Accepted { job, .. } => Ok(job),
            SubmitOutcome::Busy { retry_after_ms } => Err(format!(
                "POST /v1/eval: HTTP 429: shard queue is full (retry in {retry_after_ms} ms)"
            )),
        }
    }

    /// Submits an evaluation job, surfacing backpressure as a value
    /// instead of an error: a `429` answer becomes
    /// [`SubmitOutcome::Busy`] carrying the server's `retry_after_ms`
    /// hint.
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure or a rejected (non-429)
    /// request.
    pub fn try_submit(&self, request: &EvalRequest) -> Result<SubmitOutcome, String> {
        let body = request.encode().encode();
        let (status, value) = self.call("POST", "/v1/eval", &body)?;
        match status {
            200 => Ok(SubmitOutcome::Accepted {
                job: value
                    .get("job")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| "submit answer missing 'job'".to_string())?,
                shard: value.get("shard").and_then(Json::as_u64),
            }),
            429 => Ok(SubmitOutcome::Busy {
                retry_after_ms: value
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .unwrap_or(100),
            }),
            _ => {
                let detail = value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("(no detail)");
                Err(format!("POST /v1/eval: HTTP {status}: {detail}"))
            }
        }
    }

    /// Submits with automatic backpressure retries: a `429` sleeps for
    /// the server's `retry_after_ms` hint (capped at 1 s per round)
    /// and tries again until `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure, a rejected request, or
    /// a queue that never drained within `timeout`.
    pub fn submit_retrying(&self, request: &EvalRequest, timeout: Duration) -> Result<u64, String> {
        let started = Instant::now();
        loop {
            match self.try_submit(request)? {
                SubmitOutcome::Accepted { job, .. } => return Ok(job),
                SubmitOutcome::Busy { retry_after_ms } => {
                    if started.elapsed() > timeout {
                        return Err(format!("queue still full after {timeout:?}"));
                    }
                    std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(10, 1000)));
                }
            }
        }
    }

    /// Fetches one job's current status.
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure or an unknown id.
    pub fn job(&self, id: u64) -> Result<JobView, String> {
        let value = self.expect_ok("GET", &format!("/v1/jobs/{id}"), "")?;
        JobView::decode(&value)
    }

    /// Long-polls one job: the server parks the request until the
    /// job's observable state changes (a case group completes, the job
    /// finishes) or `wait_ms` elapses, then answers with the current
    /// progress frame. `wait_ms = 0` degenerates to [`Client::job`].
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure or an unknown id.
    pub fn job_wait(&self, id: u64, wait_ms: u64) -> Result<JobView, String> {
        let value = self.expect_ok("GET", &format!("/v1/jobs/{id}?wait_ms={wait_ms}"), "")?;
        JobView::decode(&value)
    }

    /// Waits for a job to finish via long-polling (each round parks on
    /// the server for up to 2 s instead of busy-polling), until
    /// `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure, job failure, or
    /// timeout.
    pub fn wait(&self, id: u64, timeout: Duration) -> Result<JobView, String> {
        let started = Instant::now();
        loop {
            let view = self.job_wait(id, 2_000)?;
            match view.state {
                JobState::Done => return Ok(view),
                JobState::Failed => {
                    return Err(format!(
                        "job {id} failed: {}",
                        view.error.as_deref().unwrap_or("(no detail)")
                    ))
                }
                JobState::Queued | JobState::Running => {
                    if started.elapsed() > timeout {
                        return Err(format!(
                            "job {id} still {} after {timeout:?}",
                            view.state.as_str()
                        ));
                    }
                }
            }
        }
    }

    /// Fetches the server's `/v1/stats` document.
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure.
    pub fn stats(&self) -> Result<Json, String> {
        self.expect_ok("GET", "/v1/stats", "")
    }

    /// Fetches the Prometheus text exposition from `GET /metrics`
    /// verbatim (it is not JSON, unlike every other endpoint).
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure or a non-200 answer.
    pub fn metrics(&self) -> Result<String, String> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("cannot connect to {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|e| format!("cannot set timeouts: {e}"))?;
        http::write_request(&mut stream, "GET", "/metrics", "")
            .map_err(|e| format!("request failed: {e}"))?;
        let (status, text) =
            http::read_response(&mut stream).map_err(|e| format!("response failed: {e}"))?;
        if status == 200 {
            Ok(text)
        } else {
            Err(format!("GET /metrics: HTTP {status}"))
        }
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure.
    pub fn shutdown(&self) -> Result<(), String> {
        self.expect_ok("POST", "/v1/shutdown", "").map(|_| ())
    }

    /// Whether the server currently answers `/v1/stats`.
    pub fn is_up(&self) -> bool {
        self.stats().is_ok()
    }
}
