// NL2SVA-Human collateral: 1R1W FIFO formal testbench (depth 4).
//
// The testbench models the FIFO bookkeeping (pointers, occupancy,
// storage) and exposes the interface nets the dataset's assertions
// reference. Stimulus ports (wr_vld, rd_vld, rd_data, ...) are
// free inputs: the model checker explores all of their values.
module fifo_1r1w_tb (
    input clk,
    input reset_,
    input wr_vld,
    input wr_ready,
    input [3:0] wr_data,
    input rd_vld,
    input rd_ready,
    input [3:0] rd_data
);
  parameter FIFO_DEPTH = 4;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  // Interface events: a push or pop request completes when both sides
  // agree; the environment is unconstrained, so over/underflow are
  // genuinely checkable (and falsifiable without assumptions).
  wire wr_push;
  wire rd_pop;
  assign wr_push = wr_vld && wr_ready;
  assign rd_pop = rd_vld && rd_ready;

  reg [1:0] fifo_wr_ptr;
  reg [1:0] fifo_rd_ptr;
  reg [2:0] fifo_count;
  reg [3:0] mem0;
  reg [3:0] mem1;
  reg [3:0] mem2;
  reg [3:0] mem3;

  wire fifo_empty;
  wire fifo_full;
  assign fifo_empty = (fifo_count == 3'd0);
  assign fifo_full = (fifo_count == 3'd4);

  wire [3:0] fifo_out_data;
  assign fifo_out_data = (fifo_rd_ptr == 2'd0) ? mem0
                       : (fifo_rd_ptr == 2'd1) ? mem1
                       : (fifo_rd_ptr == 2'd2) ? mem2
                       : mem3;

  always_ff @(posedge clk or negedge reset_) begin
    if (!reset_) begin
      fifo_wr_ptr <= 2'd0;
      fifo_rd_ptr <= 2'd0;
      fifo_count <= 3'd0;
      mem0 <= 4'd0;
      mem1 <= 4'd0;
      mem2 <= 4'd0;
      mem3 <= 4'd0;
    end else begin
      if (wr_push) begin
        if (fifo_wr_ptr == 2'd0) mem0 <= wr_data;
        if (fifo_wr_ptr == 2'd1) mem1 <= wr_data;
        if (fifo_wr_ptr == 2'd2) mem2 <= wr_data;
        if (fifo_wr_ptr == 2'd3) mem3 <= wr_data;
        fifo_wr_ptr <= fifo_wr_ptr + 2'd1;
      end
      if (rd_pop) begin
        fifo_rd_ptr <= fifo_rd_ptr + 2'd1;
      end
      if (wr_push && !rd_pop) fifo_count <= fifo_count + 3'd1;
      if (!wr_push && rd_pop) fifo_count <= fifo_count - 3'd1;
    end
  end
endmodule
