//! Substrate micro-benchmarks: SAT solving, parsing, assertion
//! equivalence, BMC/k-induction scaling, and the evaluation engine's
//! parallel speed-up and verdict-cache behaviour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fv_core::{check_equivalence, prove, EquivConfig, ProveConfig, SignalTable};
use fveval_bench::pigeonhole;
use fveval_core::{design_task_specs, machine_task_specs, EvalEngine};
use fveval_data::{
    fsm_sweep, generate_machine_cases, generate_pipeline, human_cases, machine_signal_table,
    signal_table_for, testbenches, MachineGenConfig, PipelineParams,
};
use fveval_llm::{profiles, Backend, InferenceConfig};
use std::hint::black_box;
use std::time::Duration;
use sv_parser::{parse_assertion_str, parse_source};
use sv_synth::elaborate;

fn bench_sat(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat");
    g.sample_size(10).measurement_time(Duration::from_secs(6));
    for n in [5usize, 6, 7] {
        g.bench_with_input(BenchmarkId::new("pigeonhole_unsat", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                black_box(s.solve())
            })
        });
    }
    g.finish();
}

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("parser");
    g.sample_size(30);
    let fifo = testbenches()
        .into_iter()
        .find(|t| t.name == "fifo_1r1w")
        .unwrap();
    g.bench_function("parse_fifo_testbench", |b| {
        b.iter(|| black_box(parse_source(fifo.source).unwrap()))
    });
    let assertion = "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
                     (a && b) |-> strong(##[0:$] (c || $onehot0({a, b, c}))));";
    // Pre-extend the scope so parsing is the only cost measured.
    g.bench_function("parse_assertion", |b| {
        b.iter(|| black_box(parse_assertion_str(assertion).unwrap()))
    });
    g.bench_function("elaborate_fifo_testbench", |b| {
        let file = parse_source(fifo.source).unwrap();
        b.iter(|| black_box(elaborate(&file, fifo.top).unwrap()))
    });
    g.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut g = c.benchmark_group("equivalence");
    g.sample_size(20);
    let table: SignalTable = [
        ("wr_push", 1u32),
        ("rd_pop", 1),
        ("tb_reset", 1),
        ("sig_H", 4),
        ("sig_F", 1),
    ]
    .into_iter()
    .collect();
    let cases = [
        (
            "bounded_pair",
            "assert property (@(posedge clk) wr_push |-> ##2 rd_pop);",
            "assert property (@(posedge clk) wr_push |=> ##1 rd_pop);",
        ),
        (
            "unbounded_pair",
            "assert property (@(posedge clk) disable iff (tb_reset) \
             wr_push |-> strong(##[0:$] rd_pop));",
            "assert property (@(posedge clk) disable iff (tb_reset) \
             wr_push |-> ##[1:$] rd_pop);",
        ),
        (
            "countones_pair",
            "assert property (@(posedge clk) (^sig_H) && sig_F);",
            "assert property (@(posedge clk) ($countones(sig_H) % 2 == 1) && sig_F);",
        ),
    ];
    for (name, r, cand) in cases {
        let reference = parse_assertion_str(r).unwrap();
        let candidate = parse_assertion_str(cand).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    check_equivalence(&reference, &candidate, &table, EquivConfig::default())
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

fn bench_model_checking(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_checking");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for depth in [2u32, 4, 6] {
        let case = generate_pipeline(&PipelineParams {
            n_units: 2,
            unit_depths: vec![depth / 2, depth - depth / 2],
            width: 16,
            expr_ops: 3,
            seed: 77,
        });
        let mut src = case.design_source.clone();
        src.push('\n');
        src.push_str(&case.tb_source);
        let file = parse_source(&src).unwrap();
        let design = file.module(&case.top).unwrap();
        let conns: Vec<(String, sv_ast::Expr)> = design
            .port_order
            .iter()
            .map(|p| (p.clone(), sv_ast::Expr::ident(p.clone())))
            .collect();
        let inst = sv_ast::ModuleItem::Instance(sv_ast::Instance {
            module: case.top.clone(),
            name: "dut".into(),
            params: vec![],
            conns,
        });
        let netlist = sv_synth::elaborate_with_extras(&file, &case.tb_top, &[inst]).unwrap();
        let assertion = parse_assertion_str(&case.golden[0]).unwrap();
        g.bench_with_input(
            BenchmarkId::new("prove_pipeline_depth", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    black_box(prove(&netlist, &assertion, &[], ProveConfig::default()).unwrap())
                })
            },
        );
    }
    g.finish();
}

/// The formal core at benchmark scale, isolated from inference: the
/// equivalence prover over Table-2-scale assertion suites (every query
/// an LLM answer would trigger, minus the LLM) and the BMC/k-induction
/// prover over a Design2SVA FSM golden suite. These are the groups the
/// incremental-core work is measured against.
fn bench_formal_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("formal_core");
    g.sample_size(10).measurement_time(Duration::from_secs(20));

    // Table-2 scale: the 79 human references, each checked against
    // itself (the UNSAT-proof path) and against a neighbour from the
    // same testbench scope (the falsification path) — the same query
    // mix a pass@k sampling run produces.
    let tables: std::collections::HashMap<&str, SignalTable> = testbenches()
        .into_iter()
        .map(|tb| {
            let t = signal_table_for(&tb).expect("testbench elaborates");
            (tb.name, t)
        })
        .collect();
    let human = human_cases();
    let parsed: Vec<(sv_ast::Assertion, &str)> = human
        .iter()
        .map(|c| {
            (
                parse_assertion_str(&c.reference).unwrap(),
                c.testbench.as_str(),
            )
        })
        .collect();
    let mut pairs: Vec<(usize, usize)> = (0..parsed.len()).map(|i| (i, i)).collect();
    for i in 0..parsed.len() {
        let j = (i + 1) % parsed.len();
        if parsed[i].1 == parsed[j].1 {
            pairs.push((i, j));
        }
    }
    g.bench_function("equiv_human_table2_scale", |b| {
        b.iter(|| {
            for &(i, j) in &pairs {
                let table = &tables[parsed[i].1];
                let _ = black_box(check_equivalence(
                    &parsed[i].0,
                    &parsed[j].0,
                    table,
                    EquivConfig::default(),
                ));
            }
        })
    });

    // The machine set at quick-mode scale (120 cases): identity plus
    // cross pairs in the shared symbolic scope.
    let machine = generate_machine_cases(MachineGenConfig {
        count: 120,
        seed: 0xF0CA,
        ..Default::default()
    });
    let machine_table = machine_signal_table();
    g.bench_function("equiv_machine_pairs", |b| {
        b.iter(|| {
            for (i, case) in machine.iter().enumerate() {
                let other = &machine[(i + 1) % machine.len()];
                let _ = black_box(check_equivalence(
                    &case.reference,
                    &case.reference,
                    &machine_table,
                    EquivConfig::default(),
                ));
                let _ = black_box(check_equivalence(
                    &case.reference,
                    &other.reference,
                    &machine_table,
                    EquivConfig::default(),
                ));
            }
        })
    });

    // Design2SVA FSM goldens through the model checker: each golden is
    // proven (BMC sweep + k-induction), the dominant cost of Table 5.
    let mut proven_suite = Vec::new();
    for case in fsm_sweep(6, 0xF0CB) {
        let mut src = case.design_source.clone();
        src.push('\n');
        src.push_str(&case.tb_source);
        let file = parse_source(&src).unwrap();
        let design = file.module(&case.top).unwrap();
        let conns: Vec<(String, sv_ast::Expr)> = design
            .port_order
            .iter()
            .map(|p| (p.clone(), sv_ast::Expr::ident(p.clone())))
            .collect();
        let inst = sv_ast::ModuleItem::Instance(sv_ast::Instance {
            module: case.top.clone(),
            name: "dut".into(),
            params: vec![],
            conns,
        });
        let netlist = sv_synth::elaborate_with_extras(&file, &case.tb_top, &[inst]).unwrap();
        let consts: Vec<(String, u32, u128)> = netlist
            .params
            .iter()
            .map(|(n, v)| (n.clone(), 32u32, *v))
            .collect();
        let assertions: Vec<sv_ast::Assertion> = case
            .golden
            .iter()
            .filter_map(|snippet| {
                sv_parser::parse_snippet(snippet)
                    .ok()?
                    .into_iter()
                    .find_map(|item| match item {
                        sv_ast::ModuleItem::Assertion(a) => Some(a),
                        _ => None,
                    })
            })
            .collect();
        proven_suite.push((netlist, assertions, consts));
    }
    g.bench_function("prove_fsm_goldens", |b| {
        b.iter(|| {
            for (netlist, assertions, consts) in &proven_suite {
                for a in assertions {
                    let _ = black_box(prove(netlist, a, consts, ProveConfig::default()));
                }
            }
        })
    });

    // Observability overhead (fv-trace). The span sites are always
    // compiled in (the workspace carries no feature flags), so the
    // compile-time-off and runtime-off cost are the same quantity: the
    // price of crossing a `span!` site whose enable flags are false —
    // one relaxed atomic load. Three arms bound it:
    //   trace_overhead/span_site_disabled  1000 disabled sites/iter
    //   trace_overhead/span_site_baseline  the same loop, no site
    //   trace_overhead/prove_fsm_goldens_timing_on
    //       the suite above with timing histograms recording
    // and the derivation below multiplies the measured per-site cost
    // by the sites a real prove pass crosses, asserting the disabled
    // overhead stays under 1% of the pass.
    g.bench_function("trace_overhead/span_site_disabled", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                let _g = fv_trace::span!("bench.site");
                black_box(i);
            }
        })
    });
    g.bench_function("trace_overhead/span_site_baseline", |b| {
        b.iter(|| {
            for i in 0..1000u64 {
                black_box(i);
            }
        })
    });
    g.bench_function("trace_overhead/prove_fsm_goldens_timing_on", |b| {
        fv_trace::set_timing_enabled(true);
        b.iter(|| {
            for (netlist, assertions, consts) in &proven_suite {
                for a in assertions {
                    let _ = black_box(prove(netlist, a, consts, ProveConfig::default()));
                }
            }
        });
        fv_trace::set_timing_enabled(false);
    });

    // Derived bound: disabled per-site nanoseconds × sites per pass,
    // as a fraction of the pass itself.
    let one_pass = || {
        for (netlist, assertions, consts) in &proven_suite {
            for a in assertions {
                let _ = black_box(prove(netlist, a, consts, ProveConfig::default()));
            }
        }
    };
    const SITES: u64 = 2_000_000;
    let t0 = std::time::Instant::now();
    for i in 0..SITES {
        let _g = fv_trace::span!("bench.site");
        black_box(i);
    }
    let with_site = t0.elapsed();
    let t0 = std::time::Instant::now();
    for i in 0..SITES {
        black_box(i);
    }
    let per_site_ns = with_site.saturating_sub(t0.elapsed()).as_nanos() as f64 / SITES as f64;
    fv_trace::set_spans_enabled(true);
    let _ = fv_trace::take_spans();
    one_pass();
    let sites_per_pass = fv_trace::take_spans().len();
    fv_trace::set_spans_enabled(false);
    let t0 = std::time::Instant::now();
    one_pass();
    let pass_ns = t0.elapsed().as_nanos() as f64;
    let overhead_pct = 100.0 * per_site_ns * sites_per_pass as f64 / pass_ns;
    println!(
        "formal_core/trace_overhead: {per_site_ns:.2} ns/site disabled × \
         {sites_per_pass} sites = {overhead_pct:.4}% of a prove_fsm_goldens pass"
    );
    assert!(
        overhead_pct <= 1.0,
        "disabled tracing must cost <=1% of prove_fsm_goldens, got {overhead_pct:.4}%"
    );
    g.finish();
}

/// The `EvalEngine` worker pool at Table 4/5-scale workloads: on
/// multi-core hosts the parallel engine beats the sequential baseline
/// (work units are embarrassingly parallel); on any host a cached
/// re-run beats both by orders of magnitude. The parallel arm always
/// uses at least 4 workers so single-core CI still exercises the pool
/// (and shows its overhead is negligible).
fn bench_eval_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("eval_engine");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    let cpus = std::thread::available_parallelism().map_or(4, |n| n.get().max(4));

    // Table 4 scale (quick mode): 3 models x 60 machine cases x 5
    // samples through inference + parse + formal equivalence + BLEU.
    let cases = generate_machine_cases(MachineGenConfig {
        count: 60,
        seed: 0xBE7C,
        ..Default::default()
    });
    let tasks = machine_task_specs(&cases, &machine_signal_table());
    let models = profiles();
    let backends: Vec<&dyn Backend> = models[..3].iter().map(|m| m as &dyn Backend).collect();
    let cfg = InferenceConfig::sampling().with_shots(3);
    for jobs in [1usize, cpus] {
        g.bench_with_input(
            BenchmarkId::new("table4_scale_jobs", jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    let engine = EvalEngine::with_jobs(jobs);
                    black_box(engine.run_matrix(&backends, &tasks, &cfg, 5))
                })
            },
        );
    }

    // Table 5 scale (quick mode): 6 models x 8 FSM designs x 5 samples
    // through the model checker.
    let designs = fsm_sweep(8, 0xBE7D);
    let design_tasks = design_task_specs(&designs);
    let d2s_backends: Vec<&dyn Backend> = models
        .iter()
        .filter(|m| m.profile().supports_design2sva)
        .map(|m| m as &dyn Backend)
        .collect();
    let d2s_cfg = InferenceConfig::sampling();
    for jobs in [1usize, cpus] {
        g.bench_with_input(
            BenchmarkId::new("table5_scale_jobs", jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    let engine = EvalEngine::with_jobs(jobs);
                    black_box(engine.run_matrix(&d2s_backends, &design_tasks, &d2s_cfg, 5))
                })
            },
        );
    }

    // Verdict-cache hit path: the engine is warmed once, every
    // iteration replays the whole Table 4-scale work-list from cache.
    let warmed = EvalEngine::with_jobs(cpus);
    warmed.run_matrix(&backends, &tasks, &cfg, 5);
    g.bench_function("table4_scale_cached_rerun", |b| {
        b.iter(|| black_box(warmed.run_matrix(&backends, &tasks, &cfg, 5)))
    });
    g.finish();
}

/// The scenario generator subsystem at Table-2 scale: pure suite
/// generation (no proving), the golden-verdict validation pass that
/// pushes every generated candidate through the incremental prover
/// (~120 properties, the same order as Table 2's 79-reference query
/// mix), and a full `EvalEngine` pass over a generated Design2SVA
/// work-list.
fn bench_scenario_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario_gen");
    g.sample_size(10).measurement_time(Duration::from_secs(20));

    let cfg = fveval_data::SuiteConfig {
        per_family: 4,
        seed: 0x5CE7,
        ..Default::default()
    };
    g.bench_function("generate_suite_24", |b| {
        b.iter(|| black_box(fveval_gen::generate_suite(&cfg)))
    });

    let suite = fveval_gen::generate_suite(&cfg);
    assert!(
        suite.candidate_count() >= 100,
        "Table-2-order query count ({})",
        suite.candidate_count()
    );
    g.bench_function("validate_goldens_table2_scale", |b| {
        b.iter(|| {
            let reports =
                fveval_gen::validate_suite(&suite, ProveConfig::default()).expect("binds");
            for r in &reports {
                assert!(r.is_clean(), "{}: {:?}", r.id, r.problems);
            }
            black_box(reports)
        })
    });

    // The mutation path: OP-Tree derivation is prove-gated (every
    // tentative mutant is proven falsifiable and its counterexample
    // replayed before acceptance), so this measures derivation-time
    // prover throughput on a mutation-rich family.
    let fifo = fveval_gen::generator("fifo").expect("registered");
    let scenario = fifo.generate(&fveval_gen::GenParams {
        depth: 4,
        width: 8,
        seed: 0x5CE7,
    });
    g.bench_function("derive_mutants_fifo_8", |b| {
        b.iter(|| {
            let mutants = fveval_gen::derive_mutants(&scenario, 8);
            assert!(!mutants.is_empty(), "fifo yields mutants");
            black_box(mutants)
        })
    });

    // One strong model over the generated Design2SVA set through the
    // engine (bind cache + model checker; fresh engine per iteration).
    let set = fveval_data::task_set_from_suite(suite).expect("converts");
    let design_tasks = design_task_specs(&set.designs);
    let models = profiles();
    let backend = &models[0];
    let d2s_cfg = InferenceConfig::sampling();
    g.bench_function("engine_generated_design2sva", |b| {
        b.iter(|| {
            let engine = EvalEngine::with_jobs(1);
            black_box(engine.run(backend, &design_tasks, &d2s_cfg, 3))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sat,
    bench_parser,
    bench_equivalence,
    bench_model_checking,
    bench_formal_core,
    bench_eval_engine,
    bench_scenario_gen
);
criterion_main!(benches);
