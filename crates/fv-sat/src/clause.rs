//! Clause storage for the CDCL solver.
//!
//! Clauses live in a single arena ([`ClauseDb`], crate-internal) and are
//! referenced by stable [`ClauseRef`] handles. Learned clauses carry an
//! activity score used by database reduction.

use crate::Lit;

/// Stable handle to a clause in the solver's clause arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    pub(crate) const UNDEF: ClauseRef = ClauseRef(u32::MAX);

    /// Whether this reference points at an actual clause.
    #[inline]
    pub(crate) fn is_defined(self) -> bool {
        self != ClauseRef::UNDEF
    }
}

/// A disjunction of literals.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    lits: Vec<Lit>,
    /// Activity for learned-clause reduction; original clauses keep 0.
    pub(crate) activity: f64,
    pub(crate) learnt: bool,
    pub(crate) deleted: bool,
}

impl Clause {
    pub(crate) fn new(lits: Vec<Lit>, learnt: bool) -> Clause {
        Clause {
            lits,
            activity: 0.0,
            learnt,
            deleted: false,
        }
    }

    /// The literals of the clause. The first two are the watched ones.
    #[inline]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    #[inline]
    pub(crate) fn lits_mut(&mut self) -> &mut Vec<Lit> {
        &mut self.lits
    }

    /// Number of literals.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `true` if the clause has no literals (the empty, unsatisfiable clause).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// `true` if this clause was learned during conflict analysis.
    #[inline]
    pub fn is_learnt(&self) -> bool {
        self.learnt
    }
}

/// Arena of clauses addressed by [`ClauseRef`].
#[derive(Debug, Default)]
pub(crate) struct ClauseDb {
    clauses: Vec<Clause>,
    /// Indices of deleted slots available for reuse.
    free: Vec<u32>,
}

impl ClauseDb {
    pub fn new() -> ClauseDb {
        ClauseDb::default()
    }

    pub fn alloc(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        let clause = Clause::new(lits, learnt);
        if let Some(slot) = self.free.pop() {
            self.clauses[slot as usize] = clause;
            ClauseRef(slot)
        } else {
            self.clauses.push(clause);
            ClauseRef((self.clauses.len() - 1) as u32)
        }
    }

    pub fn free(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        debug_assert!(!c.deleted);
        c.deleted = true;
        c.lits_mut().clear();
        self.free.push(cref.0);
    }

    #[inline]
    pub fn get(&self, cref: ClauseRef) -> &Clause {
        &self.clauses[cref.0 as usize]
    }

    #[inline]
    pub fn get_mut(&mut self, cref: ClauseRef) -> &mut Clause {
        &mut self.clauses[cref.0 as usize]
    }

    /// Iterates over the refs of all live learned clauses.
    pub fn learnt_refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
    }

    pub fn live_count(&self) -> usize {
        self.clauses.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    #[test]
    fn alloc_and_reuse() {
        let mut db = ClauseDb::new();
        let a = Lit::pos(Var(0));
        let r0 = db.alloc(vec![a], false);
        let r1 = db.alloc(vec![a, !a], true);
        assert_eq!(db.live_count(), 2);
        assert_eq!(db.get(r1).len(), 2);
        db.free(r0);
        assert_eq!(db.live_count(), 1);
        let r2 = db.alloc(vec![!a], true);
        assert_eq!(r2, r0, "freed slot is reused");
        assert!(db.get(r2).is_learnt());
    }

    #[test]
    fn learnt_refs_skips_deleted_and_original() {
        let mut db = ClauseDb::new();
        let a = Lit::pos(Var(0));
        let _orig = db.alloc(vec![a], false);
        let l1 = db.alloc(vec![!a], true);
        let l2 = db.alloc(vec![a, !a], true);
        db.free(l1);
        let live: Vec<_> = db.learnt_refs().collect();
        assert_eq!(live, vec![l2]);
    }
}
