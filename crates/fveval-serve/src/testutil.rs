//! Test and benchmark support: self-cleaning temp dirs and the
//! deterministic load generator.
//!
//! The workspace has no `tempfile`/`rand`/load-testing dependency
//! (offline builds), so the serve crate's tests, the workspace
//! integration tests, and the `serve` bench group share this instead.
//!
//! [`run_load`] is the many-concurrent-clients driver behind both the
//! saturation bench family and the integration tests: a seeded arrival
//! schedule fans mixed submit/long-poll/stats traffic over N client
//! threads, retries backpressure (`429`) using the server's hint,
//! records p50/p99 job latency and throughput, and collects each
//! request template's result bytes so two servers (e.g. `--shards 1`
//! vs `--shards 4`) can be byte-compared.

use crate::client::{Client, SubmitOutcome};
use crate::protocol::{EvalRequest, JobState};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `fveval-serve-<label>-<pid>-<n>` under the system temp
    /// directory.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn new(label: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "fveval-serve-{label}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// SplitMix64: the deterministic PRNG behind the load generator's
/// arrival schedule and traffic mix (the same generator the data and
/// scenario crates use for seeding).
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `[0, bound)`; `0` when `bound` is `0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Load-generator knobs. The whole run is a pure function of these:
/// the same config against byte-identical servers produces the same
/// submit schedule, traffic mix, and collected result bytes (timing
/// metrics, of course, vary).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Schedule seed.
    pub seed: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Jobs each client submits.
    pub submits_per_client: usize,
    /// Request templates; each submit draws one by seeded schedule.
    pub templates: Vec<EvalRequest>,
    /// Upper bound on the seeded inter-arrival delay per client, in
    /// milliseconds (0 = submit as fast as possible: saturation mode).
    pub max_think_ms: u64,
    /// Long-poll window per progress request, in milliseconds.
    pub poll_wait_ms: u64,
    /// Per-job completion deadline.
    pub job_timeout: Duration,
}

impl LoadConfig {
    /// A saturation-mode config (no think time) over `templates`.
    pub fn saturating(
        seed: u64,
        clients: usize,
        submits_per_client: usize,
        templates: Vec<EvalRequest>,
    ) -> LoadConfig {
        LoadConfig {
            seed,
            clients,
            submits_per_client,
            templates,
            max_think_ms: 0,
            poll_wait_ms: 500,
            job_timeout: Duration::from_secs(120),
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Jobs accepted by the server.
    pub submitted: u64,
    /// Jobs that reached `done`.
    pub completed: u64,
    /// `429` answers encountered (each was retried with the server's
    /// `retry_after_ms` hint until accepted).
    pub backpressure_hits: u64,
    /// `GET /v1/stats` calls mixed into the traffic.
    pub stats_calls: u64,
    /// Long-poll progress frames observed before completion.
    pub progress_frames: u64,
    /// Completed jobs per wall-clock second over the whole run.
    pub throughput_jobs_per_sec: f64,
    /// Median submit→done latency, in milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile submit→done latency, in milliseconds.
    pub p99_latency_ms: f64,
    /// Per-template canonical result JSON (indexed like
    /// [`LoadConfig::templates`]); `None` when the schedule never drew
    /// that template. Every client that ran a template got exactly
    /// these bytes — [`run_load`] fails on any divergence.
    pub results: Vec<Option<String>>,
}

impl LoadReport {
    /// All collected template results joined into one string — the
    /// byte-compare handle for cross-server determinism checks.
    pub fn results_digest(&self) -> String {
        let mut out = String::new();
        for (i, result) in self.results.iter().enumerate() {
            out.push_str(&format!("template {i}: "));
            out.push_str(result.as_deref().unwrap_or("(not drawn)"));
            out.push('\n');
        }
        out
    }
}

fn percentile(sorted_ms: &[u64], pct: u64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as u64 * pct).div_ceil(100) as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)] as f64
}

/// Drives a live server at `addr` with [`LoadConfig`] traffic: each
/// client thread follows its own seeded schedule of think time and
/// template choice, submits with backpressure retries, long-polls the
/// job to completion (mixing in stats calls), and verifies that every
/// observation of a template's result is byte-identical.
///
/// # Errors
///
/// Returns a message when any client hits a transport error, a job
/// fails or times out, or two clients observe different result bytes
/// for the same template.
pub fn run_load(addr: &str, cfg: &LoadConfig) -> Result<LoadReport, String> {
    if cfg.templates.is_empty() {
        return Err("load config needs at least one template".to_string());
    }
    let client = Client::new(addr.to_string());
    let started = Instant::now();
    let submitted = AtomicU64::new(0);
    let backpressure = AtomicU64::new(0);
    let stats_calls = AtomicU64::new(0);
    let progress_frames = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let results: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; cfg.templates.len()]);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for c in 0..cfg.clients.max(1) {
            let client = client.clone();
            let (submitted, backpressure, stats_calls, progress_frames) =
                (&submitted, &backpressure, &stats_calls, &progress_frames);
            let (latencies, results, errors) = (&latencies, &results, &errors);
            scope.spawn(move || {
                let mut rng =
                    SplitMix64::new(cfg.seed ^ (c as u64).wrapping_mul(0xA076_1D64_78BD_642F));
                for _ in 0..cfg.submits_per_client {
                    if let Err(e) = drive_one_job(
                        &client,
                        cfg,
                        &mut rng,
                        submitted,
                        backpressure,
                        stats_calls,
                        progress_frames,
                        latencies,
                        results,
                    ) {
                        errors.lock().expect("errors poisoned").push(e);
                        return;
                    }
                }
            });
        }
    });
    let errors = errors.into_inner().expect("errors poisoned");
    if let Some(first) = errors.first() {
        return Err(format!("{} client error(s); first: {first}", errors.len()));
    }
    let mut latencies = latencies.into_inner().expect("latencies poisoned");
    latencies.sort_unstable();
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    Ok(LoadReport {
        submitted: submitted.load(Ordering::Relaxed),
        completed: latencies.len() as u64,
        backpressure_hits: backpressure.load(Ordering::Relaxed),
        stats_calls: stats_calls.load(Ordering::Relaxed),
        progress_frames: progress_frames.load(Ordering::Relaxed),
        throughput_jobs_per_sec: latencies.len() as f64 / elapsed,
        p50_latency_ms: percentile(&latencies, 50),
        p99_latency_ms: percentile(&latencies, 99),
        results: results.into_inner().expect("results poisoned"),
    })
}

#[allow(clippy::too_many_arguments)]
fn drive_one_job(
    client: &Client,
    cfg: &LoadConfig,
    rng: &mut SplitMix64,
    submitted: &AtomicU64,
    backpressure: &AtomicU64,
    stats_calls: &AtomicU64,
    progress_frames: &AtomicU64,
    latencies: &Mutex<Vec<u64>>,
    results: &Mutex<Vec<Option<String>>>,
) -> Result<(), String> {
    let think = rng.below(cfg.max_think_ms.saturating_add(1));
    if think > 0 {
        std::thread::sleep(Duration::from_millis(think));
    }
    let template_idx = rng.below(cfg.templates.len() as u64) as usize;
    let mix_in_stats = rng.below(4) == 0;
    let t0 = Instant::now();
    // Submit, honoring backpressure hints until accepted.
    let id = loop {
        match client.try_submit(&cfg.templates[template_idx])? {
            SubmitOutcome::Accepted { job, .. } => break job,
            SubmitOutcome::Busy { retry_after_ms } => {
                backpressure.fetch_add(1, Ordering::Relaxed);
                if t0.elapsed() > cfg.job_timeout {
                    return Err("queue never drained within the job timeout".to_string());
                }
                std::thread::sleep(Duration::from_millis(retry_after_ms.clamp(5, 500)));
            }
        }
    };
    submitted.fetch_add(1, Ordering::Relaxed);
    // Long-poll to completion, mixing stats traffic per the schedule.
    let view = loop {
        let view = client.job_wait(id, cfg.poll_wait_ms)?;
        match view.state {
            JobState::Done => break view,
            JobState::Failed => {
                return Err(format!(
                    "job {id} failed: {}",
                    view.error.as_deref().unwrap_or("(no detail)")
                ))
            }
            JobState::Queued | JobState::Running => {
                progress_frames.fetch_add(1, Ordering::Relaxed);
                if mix_in_stats {
                    client.stats()?;
                    stats_calls.fetch_add(1, Ordering::Relaxed);
                }
                if t0.elapsed() > cfg.job_timeout {
                    return Err(format!("job {id} exceeded {:?}", cfg.job_timeout));
                }
            }
        }
    };
    let latency_ms = t0.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
    latencies
        .lock()
        .expect("latencies poisoned")
        .push(latency_ms);
    let result = view
        .result
        .ok_or_else(|| format!("job {id} done without a result"))?;
    let bytes = result.encode().encode();
    let mut results = results.lock().expect("results poisoned");
    match &results[template_idx] {
        None => results[template_idx] = Some(bytes),
        Some(seen) if *seen == bytes => {}
        Some(_) => {
            return Err(format!(
                "template {template_idx}: two clients observed different result bytes"
            ))
        }
    }
    Ok(())
}
