// NL2SVA-Human collateral: "two consecutive ones" sequence detector.
//
// S_ZERO tracks a low input, S_ONE one high bit, S_TWO (detected) two
// in a row. Any low bit returns the detector to S_ZERO.
module fsm_sequence_tb (
    input clk,
    input reset_,
    input bit_in
);
  parameter S_ZERO = 0;
  parameter S_ONE = 1;
  parameter S_TWO = 2;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  reg [1:0] state;

  wire detected;
  assign detected = (state == 2'd2);

  always_ff @(posedge clk or negedge reset_) begin
    if (!reset_) begin
      state <= 2'd0;
    end else begin
      if (!bit_in) begin
        state <= 2'd0;
      end else if (state == 2'd0) begin
        state <= 2'd1;
      end else begin
        state <= 2'd2;
      end
    end
  end
endmodule
