//! Design2SVA end to end: generate a synthetic FSM, let simulated
//! models draft assertions from the RTL alone, and score them with the
//! model checker — the paper's most agentic scenario (Figure 9).
//!
//! ```text
//! cargo run --example design2sva_agent
//! ```

use fveval_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate one FSM design instance (a point from the Table 5 sweep).
    let case = generate_fsm(&FsmParams {
        n_states: 4,
        n_edges: 5,
        width: 16,
        guard_depth: 2,
        seed: 2025,
    });
    println!("=== design RTL ({}) ===\n{}", case.id, case.design_source);
    println!("=== testbench header ===\n{}", case.tb_source);

    let bound = compile_design(&case).map_err(std::io::Error::other)?;
    let runner = Design2svaRunner::new();
    let cfg = InferenceConfig::sampling();
    let task = std::sync::Arc::new(TaskSpec::Design2sva { case: case.clone() });

    for model in profiles() {
        if !model.profile().supports_design2sva {
            continue;
        }
        println!("--- {} ---", model.name());
        let mut successes = 0u32;
        let n = 5;
        for attempt in 0..n {
            let response = model.generate(&Request {
                task: std::sync::Arc::clone(&task),
                cfg,
                sample_idx: attempt,
            });
            let eval = runner.evaluate_response(&bound, &response);
            if attempt == 0 {
                println!("first attempt:\n{response}");
            }
            println!(
                "attempt {}: syntax={} proven={}",
                attempt + 1,
                eval.syntax,
                eval.func
            );
            successes += u32::from(eval.func);
        }
        println!(
            "pass@1 = {:.3}   pass@5 = {:.3}\n",
            pass_at_k(n, successes, 1),
            pass_at_k(n, successes, 5.min(n))
        );
    }
    Ok(())
}
