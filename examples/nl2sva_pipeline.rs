//! The NL2SVA-Machine pipeline end to end: generate synthetic
//! (NL, SVA) pairs with the critic loop, run a model in 0-shot and
//! 3-shot, and print the per-metric gains — the Table 3 story for one
//! model on a small slice.
//!
//! ```text
//! cargo run --example nl2sva_pipeline
//! ```

use fveval_repro::prelude::*;

fn main() {
    let cases = generate_machine_cases(MachineGenConfig {
        count: 40,
        seed: 7,
        corruption_rate: 0.25,
    });
    let retried = cases.iter().filter(|c| c.retries > 0).count();
    println!(
        "generated {} cases; critic rejected and regenerated {} drafts",
        cases.len(),
        retried
    );
    println!(
        "\nsample case:\n  Q: {}\n  A: {}\n",
        cases[0].question, cases[0].reference_text
    );

    let table = machine_signal_table();
    let runner = Nl2svaRunner::new();
    let models = profiles();
    let model = models
        .iter()
        .find(|m| m.name() == "llama-3.1-70b")
        .expect("profile exists");

    for shots in [0u32, 3] {
        let cfg = InferenceConfig::greedy().with_shots(shots);
        let evals = runner.run_machine(model, &cases, &table, &cfg, 1);
        let s = MetricSummary::from_first_samples(&evals);
        println!(
            "{} {shots}-shot: syntax={:.3} func={:.3} partial={:.3} bleu={:.3}",
            model.name(),
            s.syntax,
            s.func,
            s.partial,
            s.bleu
        );
    }

    // Show one scored response in detail.
    let case = &cases[1];
    let response = model.generate(&Request {
        task: std::sync::Arc::new(TaskSpec::Nl2svaMachine {
            case: case.clone(),
            table: std::sync::Arc::new(table.clone()),
        }),
        cfg: InferenceConfig::greedy(),
        sample_idx: 0,
    });
    let eval = runner.evaluate_response(&case.reference_text, &response, &table);
    println!("\nworked example:\n  Q: {}", case.question);
    println!("  reference: {}", case.reference_text);
    println!("  response : {response}");
    println!(
        "  verdict  : syntax={} func={} partial={} bleu={:.3}",
        eval.syntax, eval.func, eval.partial, eval.bleu
    );
}
