//! Mutation-layer contract coverage: every OP-Tree mutant derived from
//! any family, at any (seed, depth, width), under any single operator,
//! must come back golden `Falsified` with a counterexample that replays
//! on the reference simulator — and derivation must be byte-identical
//! across runs.

use fveval_gen::{
    derive_mutants, derive_mutants_with_ops, generate_suite, generators, validate_scenario,
    GenParams, GoldenVerdict, MutationOp, ProveConfig, SuiteConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sweeps (family, seed, depth, width, op): mutants keep their
    /// golden `Falsified` verdict under the prover and their
    /// counterexamples replay. `validate_scenario` turns any mutant
    /// that stays provable (or whose cex fails to replay) into a hard
    /// error naming the operator and seed, so a rule violation fails
    /// loudly here.
    #[test]
    fn every_mutant_is_falsified_with_replaying_cex(
        seed in 0u64..2000,
        depth in 1u32..10,
        width in 2u32..20,
        op_idx in 0usize..MutationOp::ALL.len(),
    ) {
        let op = MutationOp::ALL[op_idx];
        for gen in generators() {
            let mut scenario = gen.generate(&GenParams { depth, width, seed });
            let mutants = derive_mutants_with_ops(&scenario, 4, &[op]);
            if mutants.is_empty() {
                continue;
            }
            for m in &mutants {
                prop_assert_eq!(m.verdict, GoldenVerdict::Falsifiable);
                prop_assert_eq!(m.mutation, Some(op));
            }
            scenario.candidates.extend(mutants);
            let report = validate_scenario(&scenario, ProveConfig::default())
                .unwrap_or_else(|e| panic!("{e}"));
            prop_assert!(
                report.is_clean(),
                "{} + {}: {:?}",
                scenario.id,
                op.tag(),
                report.problems
            );
        }
    }

    /// Same (seed, family, op) → byte-identical mutated assertion text,
    /// independent of how often derivation runs.
    #[test]
    fn mutation_is_deterministic_per_seed_family_op(
        seed in 0u64..5000,
        op_idx in 0usize..MutationOp::ALL.len(),
    ) {
        let op = MutationOp::ALL[op_idx];
        for gen in generators() {
            let params = GenParams { depth: 4, width: 8, seed };
            let a = derive_mutants_with_ops(&gen.generate(&params), 8, &[op]);
            let b = derive_mutants_with_ops(&gen.generate(&params), 8, &[op]);
            prop_assert_eq!(a, b, "{} + {}", gen.family(), op.tag());
        }
    }
}

#[test]
fn suite_level_mutation_is_deterministic_and_tagged() {
    let cfg = SuiteConfig {
        per_family: 2,
        seed: 0xD1F,
        mutations: 3,
        ..Default::default()
    };
    let a = generate_suite(&cfg);
    let b = generate_suite(&cfg);
    assert_eq!(a, b, "byte-identical under a fixed seed and mutation count");
    let mutants: Vec<_> = a
        .scenarios
        .iter()
        .flat_map(|s| s.candidates.iter())
        .filter(|c| c.mutation.is_some())
        .collect();
    assert!(
        !mutants.is_empty(),
        "a mutated suite must actually contain mutants"
    );
    for m in &mutants {
        assert_eq!(m.verdict, GoldenVerdict::Falsifiable);
        let tag = m.mutation.unwrap().tag();
        assert!(m.name.ends_with(tag), "{} carries its operator tag", m.name);
    }
}

#[test]
fn zero_mutations_leaves_the_default_suite_untouched() {
    let base = generate_suite(&SuiteConfig::default());
    let explicit = generate_suite(&SuiteConfig {
        mutations: 0,
        ..Default::default()
    });
    assert_eq!(base, explicit);
    assert!(base
        .scenarios
        .iter()
        .all(|s| s.candidates.iter().all(|c| c.mutation.is_none())));
}

#[test]
fn round_robin_covers_all_operators_on_a_mutation_rich_family() {
    let scenario = fveval_gen::generator("fifo").unwrap().generate(&GenParams {
        depth: 4,
        width: 8,
        seed: 42,
    });
    let mutants = derive_mutants(&scenario, 8);
    for op in MutationOp::ALL {
        assert!(
            mutants.iter().any(|m| m.mutation == Some(op)),
            "round-robin must reach {}",
            op.tag()
        );
    }
}
