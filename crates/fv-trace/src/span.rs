//! Span guards, the thread-local span stack, and the global collector.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Whether finished spans are appended to the global collector
/// (needed for Chrome-trace export).
static SPANS_ENABLED: AtomicBool = AtomicBool::new(false);
/// Whether span durations are recorded into `span.<name>.us`
/// histograms in the metrics registry.
static TIMING_ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotonic span-id source, shared by all threads.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Small integer thread-id source (`std::thread::ThreadId` has no
/// stable numeric form).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// The trace epoch: all span start times are microseconds since this
/// instant. Set once, the first time any span becomes active.
fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Finished spans awaiting [`take_spans`].
fn collector() -> &'static Mutex<Vec<SpanRecord>> {
    static COLLECTOR: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// Ids of the currently-open spans on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's small integer id, assigned on first use.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Enables or disables collection of full span records.
pub fn set_spans_enabled(on: bool) {
    if on {
        epoch();
    }
    SPANS_ENABLED.store(on, Ordering::Relaxed);
}

/// Returns whether span records are being collected.
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables span-duration histograms (`span.<name>.us`).
pub fn set_timing_enabled(on: bool) {
    if on {
        epoch();
    }
    TIMING_ENABLED.store(on, Ordering::Relaxed);
}

/// Returns whether span-duration histograms are being recorded.
pub fn timing_enabled() -> bool {
    TIMING_ENABLED.load(Ordering::Relaxed)
}

/// Drains and returns every span finished since the last call.
/// Records appear in completion order (inner spans before the outer
/// spans that contain them).
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *collector().lock().unwrap())
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Owned string.
    Str(String),
}

macro_rules! attr_from {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for AttrValue {
            fn from(v: $t) -> AttrValue {
                AttrValue::$variant(v as $cast)
            }
        }
    )*};
}

attr_from! {
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> AttrValue {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> AttrValue {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> AttrValue {
        AttrValue::Str(v)
    }
}

/// One finished span, as drained by [`take_spans`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (static, dotted: `sat.solve`, `serve.job`).
    pub name: &'static str,
    /// Small integer id of the recording thread.
    pub tid: u64,
    /// Start time, microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Typed attributes, in the order they were attached.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// The live half of an active span guard.
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
    /// Whether a full record goes to the collector on drop (captured
    /// at entry so enable flips mid-span cannot unbalance the stack).
    collect: bool,
}

/// RAII guard for one span. Created by [`crate::span!`]; the span
/// closes when the guard drops. Guards on one thread must drop in
/// LIFO order (the natural order for scope-bound `let` bindings).
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Opens a span named `name`. Inert (one relaxed atomic load)
    /// unless span collection or timing is enabled.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        let collect = SPANS_ENABLED.load(Ordering::Relaxed);
        if !collect && !TIMING_ENABLED.load(Ordering::Relaxed) {
            return SpanGuard { active: None };
        }
        SpanGuard::enter_active(name, collect)
    }

    #[inline(never)]
    fn enter_active(name: &'static str, collect: bool) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        SpanGuard {
            active: Some(ActiveSpan {
                id,
                parent,
                name,
                start: Instant::now(),
                attrs: Vec::new(),
                collect,
            }),
        }
    }

    /// Attaches one typed attribute. A no-op on an inert guard.
    #[inline]
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(active) = self.active.as_mut() {
            active.attrs.push((key, value.into()));
        }
    }

    /// Returns whether this guard is actually recording (tracing was
    /// enabled when it was created).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_us = active.start.elapsed().as_micros() as u64;
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // LIFO discipline: the innermost open span is this one.
            // Be tolerant of misuse (out-of-order drops) rather than
            // panicking inside a destructor.
            if stack.last() == Some(&active.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        if TIMING_ENABLED.load(Ordering::Relaxed) {
            crate::metrics::observe_span_us(active.name, dur_us);
        }
        if active.collect {
            let start_us = active
                .start
                .duration_since(*epoch())
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            let record = SpanRecord {
                id: active.id,
                parent: active.parent,
                name: active.name,
                tid: TID.with(|t| *t),
                start_us,
                dur_us,
                attrs: active.attrs,
            };
            collector().lock().unwrap().push(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Span tests share process-global state, so they run under one
    /// lock to avoid interleaving with each other.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _serial = serial();
        set_spans_enabled(false);
        set_timing_enabled(false);
        let _ = take_spans();
        {
            let mut g = crate::span!("quiet", n = 3u64);
            assert!(!g.is_active());
            g.attr("late", "ignored");
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nesting_links_parents_within_a_thread() {
        let _serial = serial();
        set_spans_enabled(true);
        let _ = take_spans();
        {
            let _outer = crate::span!("outer", depth = 0u64);
            {
                let _inner = crate::span!("inner", kind = "leaf");
            }
            let _sibling = crate::span!("sibling");
        }
        set_spans_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 3);
        // Completion order: inner, sibling, outer.
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let sibling = spans.iter().find(|s| s.name == "sibling").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert_eq!(inner.attrs, vec![("kind", AttrValue::Str("leaf".into()))]);
        assert!(outer.dur_us >= inner.dur_us);
        assert!(outer.start_us <= inner.start_us);
    }

    #[test]
    fn parallel_threads_get_independent_stacks() {
        let _serial = serial();
        set_spans_enabled(true);
        let _ = take_spans();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _root = crate::span!("root");
                    let _leaf = crate::span!("leaf");
                });
            }
        });
        set_spans_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 8);
        for leaf in spans.iter().filter(|s| s.name == "leaf") {
            let root = spans
                .iter()
                .find(|s| Some(s.id) == leaf.parent)
                .expect("leaf has a parent");
            assert_eq!(root.name, "root");
            assert_eq!(root.tid, leaf.tid, "parent links stay on-thread");
        }
    }
}
