//! Bit-blasting netlist time frames into an [`Aig`].
//!
//! Rather than building a sequential AIG with latches, the expander
//! instantiates the combinational cone once per clock cycle and lets the
//! caller stitch register values between frames. This is exactly the
//! shape BMC, k-induction, and the bounded equivalence prover need.

use crate::netexpr::{Nx, NxBin, NxRed};
use crate::netlist::{AtomId, AtomKind, NetBinding, Netlist};
use fv_aig::{Aig, BitVec};
use std::collections::HashMap;

/// Values of every atom (and register next-state) for one clock cycle.
#[derive(Debug, Clone)]
pub struct FrameValues {
    /// Per-atom value, indexed by atom id.
    pub atoms: Vec<BitVec>,
    /// Next-state value per register atom.
    pub reg_next: HashMap<AtomId, BitVec>,
}

impl FrameValues {
    /// Reads a full net in this frame.
    ///
    /// # Panics
    ///
    /// Panics if the binding references atoms outside this frame.
    pub fn read_net(&self, binding: &NetBinding) -> BitVec {
        let mut bits = Vec::with_capacity(binding.width as usize);
        for seg in &binding.segs {
            let av = &self.atoms[seg.atom.index()];
            for i in 0..seg.width {
                bits.push(av.bit((seg.lo + i) as usize));
            }
        }
        BitVec::from_bits(bits)
    }
}

/// Expands netlist clock cycles into an AIG.
#[derive(Debug)]
pub struct FrameExpander<'a> {
    netlist: &'a Netlist,
    topo: Vec<AtomId>,
}

impl<'a> FrameExpander<'a> {
    /// Prepares an expander (topologically sorts combinational atoms).
    ///
    /// # Errors
    ///
    /// Returns the offending atom name if the netlist has a
    /// combinational cycle.
    pub fn new(netlist: &'a Netlist) -> Result<FrameExpander<'a>, String> {
        let topo = netlist.comb_topo_order()?;
        Ok(FrameExpander { netlist, topo })
    }

    /// The underlying netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Expands one cycle. `reg_values` supplies each register's current
    /// value (constants for the initial BMC frame, fresh inputs for
    /// induction, previous `reg_next` otherwise); `input_fn` supplies
    /// primary-input values (usually fresh AIG inputs).
    pub fn expand(
        &self,
        g: &mut Aig,
        reg_values: &HashMap<AtomId, BitVec>,
        input_fn: &mut dyn FnMut(&mut Aig, AtomId, u32) -> BitVec,
    ) -> FrameValues {
        let n = self.netlist.atoms.len();
        let mut atoms: Vec<Option<BitVec>> = vec![None; n];
        for (i, def) in self.netlist.atoms.iter().enumerate() {
            match def.kind {
                AtomKind::Input => {
                    atoms[i] = Some(input_fn(g, AtomId(i as u32), def.width));
                }
                AtomKind::Reg { .. } => {
                    let v = reg_values
                        .get(&AtomId(i as u32))
                        .cloned()
                        .unwrap_or_else(|| BitVec::constant(def.width as usize, 0));
                    atoms[i] = Some(v);
                }
                AtomKind::Comb(_) => {}
            }
        }
        for &id in &self.topo {
            if let AtomKind::Comb(e) = &self.netlist.atoms[id.index()].kind {
                let v = self.blast(g, e, &atoms);
                atoms[id.index()] = Some(v);
            }
        }
        let atoms: Vec<BitVec> = atoms
            .into_iter()
            .map(|v| v.expect("all atoms computed"))
            .collect();
        let mut reg_next = HashMap::new();
        for (id, def) in self.netlist.regs() {
            if let AtomKind::Reg { next, .. } = &def.kind {
                let wrapped: Vec<Option<BitVec>> = atoms.iter().cloned().map(Some).collect();
                let v = self.blast(g, next, &wrapped);
                reg_next.insert(id, v);
            }
        }
        FrameValues { atoms, reg_next }
    }

    /// Initial register values (reset state) as constants.
    pub fn initial_state(&self) -> HashMap<AtomId, BitVec> {
        let mut m = HashMap::new();
        for (id, def) in self.netlist.regs() {
            if let AtomKind::Reg { init, .. } = def.kind {
                m.insert(id, BitVec::constant(def.width as usize, init));
            }
        }
        m
    }

    fn blast(&self, g: &mut Aig, nx: &Nx, atoms: &[Option<BitVec>]) -> BitVec {
        match nx {
            Nx::Const { width, value } => BitVec::constant(*width as usize, *value),
            Nx::Atom(a) => atoms[a.index()]
                .clone()
                .expect("atom evaluated before use (topological order)"),
            Nx::Slice { inner, lo, width } => {
                let v = self.blast(g, inner, atoms);
                v.slice((*lo + *width - 1) as usize, *lo as usize)
            }
            Nx::DynSlice {
                inner,
                index,
                elem_width,
            } => {
                let v = self.blast(g, inner, atoms);
                let idx = self.blast(g, index, atoms);
                let ew = *elem_width as usize;
                let count = v.width() / ew;
                let mut acc = BitVec::constant(ew, 0);
                for i in 0..count {
                    let elem = v.slice(i * ew + ew - 1, i * ew);
                    let iw = idx.width();
                    let sel = idx.eq(g, &BitVec::constant(iw, i as u128));
                    acc = BitVec::mux(g, sel, &elem, &acc);
                }
                acc
            }
            Nx::Concat(parts) => {
                let mut bits = Vec::new();
                for p in parts {
                    bits.extend_from_slice(self.blast(g, p, atoms).bits());
                }
                BitVec::from_bits(bits)
            }
            Nx::Not(i) => self.blast(g, i, atoms).not(),
            Nx::Neg(i) => {
                let v = self.blast(g, i, atoms);
                v.neg(g)
            }
            Nx::Bin { op, a, b } => {
                let x = self.blast(g, a, atoms);
                let y = self.blast(g, b, atoms);
                match op {
                    NxBin::Add => x.add(g, &y),
                    NxBin::Sub => x.sub(g, &y),
                    NxBin::Mul => x.mul(g, &y),
                    NxBin::Div => x.udivrem(g, &y).0,
                    NxBin::Mod => x.udivrem(g, &y).1,
                    NxBin::And => x.and(g, &y),
                    NxBin::Or => x.or(g, &y),
                    NxBin::Xor => x.xor(g, &y),
                    NxBin::Shl => x.shl(g, &y),
                    NxBin::LShr => x.lshr(g, &y),
                    NxBin::AShr => x.ashr(g, &y),
                    NxBin::Eq => BitVec::from_lit(x.eq(g, &y)),
                    NxBin::Ult => BitVec::from_lit(x.ult(g, &y)),
                    NxBin::Ule => BitVec::from_lit(x.ule(g, &y)),
                }
            }
            Nx::Reduce { op, inner } => {
                let v = self.blast(g, inner, atoms);
                BitVec::from_lit(match op {
                    NxRed::And => v.reduce_and(g),
                    NxRed::Or => v.reduce_or(g),
                    NxRed::Xor => v.reduce_xor(g),
                })
            }
            Nx::Mux { sel, t, e } => {
                let s = self.blast(g, sel, atoms);
                let tv = self.blast(g, t, atoms);
                let ev = self.blast(g, e, atoms);
                BitVec::mux(g, s.bit(0), &tv, &ev)
            }
            Nx::Countones { inner, width } => {
                let v = self.blast(g, inner, atoms);
                v.countones(g).resize(*width as usize)
            }
            Nx::Onehot(i) => {
                let v = self.blast(g, i, atoms);
                BitVec::from_lit(v.onehot(g))
            }
            Nx::Onehot0(i) => {
                let v = self.blast(g, i, atoms);
                BitVec::from_lit(v.onehot0(g))
            }
            Nx::Resize { inner, width } => self.blast(g, inner, atoms).resize(*width as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_aig::AigEvaluator;
    use sv_parser::parse_source;

    fn counter_netlist() -> Netlist {
        let src = "module m (clk, reset_, q);\ninput clk; input reset_; output [2:0] q;\n\
                   reg [2:0] cnt;\n\
                   always @(posedge clk) begin\n\
                   if (!reset_) cnt <= 3'd0; else cnt <= cnt + 3'd1;\nend\n\
                   assign q = cnt;\nendmodule\n";
        let f = parse_source(src).unwrap();
        crate::elaborate(&f, "m").unwrap()
    }

    #[test]
    fn unrolled_counter_counts() {
        let nl = counter_netlist();
        let exp = FrameExpander::new(&nl).unwrap();
        let mut g = Aig::new();
        let reset_atom = nl
            .inputs()
            .find(|(_, d)| d.name == "reset_")
            .map(|(id, _)| id)
            .unwrap();
        let mut state = exp.initial_state();
        let mut q_values = Vec::new();
        let q_binding = nl.net("q").unwrap().clone();
        for _ in 0..4 {
            let frame = exp.expand(&mut g, &state, &mut |_g, id, w| {
                if id == reset_atom {
                    BitVec::constant(w as usize, 1) // reset deasserted
                } else {
                    BitVec::constant(w as usize, 0)
                }
            });
            q_values.push(frame.read_net(&q_binding));
            state = frame.reg_next.clone();
        }
        // Everything is constant, so evaluation needs no inputs.
        let ev = AigEvaluator::combinational(&g, &[]);
        let vals: Vec<u32> = q_values
            .iter()
            .map(|v| {
                v.bits()
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| (ev.lit(b) as u32) << i)
                    .sum()
            })
            .collect();
        assert_eq!(vals, vec![0, 1, 2, 3]);
    }

    #[test]
    fn initial_state_uses_reset_values() {
        let nl = counter_netlist();
        let exp = FrameExpander::new(&nl).unwrap();
        let init = exp.initial_state();
        assert_eq!(init.len(), 1);
        let (_, bv) = init.iter().next().unwrap();
        assert_eq!(bv.width(), 3);
    }
}
