//! Chaos tests: the event loop survives hostile clients, and the
//! persistent store survives a SIGKILLed server.
//!
//! The SIGKILL test re-executes this very test binary as the victim
//! server process (`chaos_server_role` below becomes a server when the
//! chaos env var is set), kills it with no warning mid-job, restarts
//! on the same store directory, and requires the warm re-submit to be
//! byte-identical and entirely store-served.

use fveval_llm::InferenceConfig;
use fveval_serve::testutil::TempDir;
use fveval_serve::{Client, EvalRequest, Server, ServerConfig, TaskSetRef};
use std::io::Write;
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

/// The env var that turns a re-exec of this binary into a server.
const CHAOS_DIR_VAR: &str = "FVEVAL_CHAOS_DIR";

fn small_request(seed: u64) -> EvalRequest {
    EvalRequest {
        tasks: TaskSetRef::Machine { count: 3, seed },
        models: vec!["gpt-4o".to_string()],
        cfg: InferenceConfig::greedy(),
        samples: 1,
    }
}

#[test]
fn stalled_readers_cannot_block_other_clients() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        queue_depth: 8,
        engine_jobs: 1,
        cache_dir: None,
        ..ServerConfig::default()
    })
    .expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    // Several connections send a partial request and then stall with
    // the socket held open. A blocking accept loop would be wedged; the
    // readiness-driven loop must keep serving everyone else.
    let stalled: Vec<TcpStream> = (0..4)
        .map(|_| {
            let mut s = TcpStream::connect(&addr).expect("connect");
            s.write_all(b"POST /v1/eval HTTP/1.1\r\nContent-Length: 100000\r\n\r\n{\"partial")
                .expect("partial write");
            s.flush().expect("flush");
            s
        })
        .collect();
    let client = Client::new(addr);
    let id = client
        .submit(&small_request(1))
        .expect("submit succeeds past stallers");
    let view = client.wait(id, WAIT).expect("job completes past stallers");
    assert!(view.result.is_some());
    drop(stalled);
    client.shutdown().expect("shutdown");
    handle.join().unwrap().expect("clean exit");
}

/// Kills (SIGKILL) and reaps the child when dropped, so a failing
/// assertion never leaks a server process.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Re-executes this test binary as a victim server on `dir` (see
/// [`chaos_server_role`]) and waits for it to publish its address.
fn spawn_server_process(dir: &Path) -> (KillOnDrop, Client) {
    let addr_file = dir.join("addr");
    let _ = std::fs::remove_file(&addr_file);
    let child = Command::new(std::env::current_exe().expect("own path"))
        .args(["--exact", "chaos_server_role", "--nocapture"])
        .env(CHAOS_DIR_VAR, dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim server");
    let mut child = KillOnDrop(child);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            let client = Client::new(addr.trim().to_string());
            if client.is_up() {
                return (child, client);
            }
        }
        if let Ok(Some(status)) = child.0.try_wait() {
            panic!("victim server exited before coming up: {status}");
        }
        assert!(Instant::now() < deadline, "victim server never came up");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Not an assertion-bearing test: when re-executed with the chaos env
/// var set, this binary becomes the victim server process for
/// [`sigkill_mid_job_is_recovered_by_a_restart`]. Without the env var
/// (a normal `cargo test` run) it does nothing.
#[test]
fn chaos_server_role() {
    let Some(dir) = std::env::var_os(CHAOS_DIR_VAR) else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 2,
        queue_depth: 8,
        engine_jobs: 1,
        cache_dir: Some(dir.join("store")),
        ..ServerConfig::default()
    })
    .expect("victim server binds");
    let addr = server.local_addr().to_string();
    // Publish the ephemeral address atomically so the parent never
    // reads a half-written file.
    let tmp = dir.join("addr.tmp");
    std::fs::write(&tmp, &addr).expect("write addr");
    std::fs::rename(&tmp, dir.join("addr")).expect("publish addr");
    // Runs until the parent SIGKILLs this process.
    let _ = server.run();
}

#[test]
fn sigkill_mid_job_is_recovered_by_a_restart() {
    let tmp = TempDir::new("chaos-kill");
    let request = small_request(7);

    // Round 1: finish one job (its verdicts flush to the store), then
    // SIGKILL the server with a second job still in flight — no drain,
    // no flush, no goodbye.
    let (mut victim, client) = spawn_server_process(tmp.path());
    let id = client.submit(&request).expect("submit");
    let cold = client.wait(id, WAIT).expect("cold job").result.unwrap();
    client.submit(&small_request(8)).expect("second submit");
    victim.0.kill().expect("SIGKILL delivered");
    victim.0.wait().expect("victim reaped");
    drop(victim);

    // Round 2: a fresh server on the same store directory must come
    // up (recovering any torn segment tail), preload the flushed
    // verdicts, and serve the warm re-submit byte-identically with
    // zero recomputation.
    let (victim, client) = spawn_server_process(tmp.path());
    let id = client.submit(&request).expect("warm submit");
    let warm = client.wait(id, WAIT).expect("warm job").result.unwrap();
    assert_eq!(warm, cold, "SIGKILL + restart changes no served bytes");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").unwrap();
    assert_eq!(
        cache.get("misses").and_then(|v| v.as_u64()),
        Some(0),
        "nothing is recomputed after the crash"
    );
    let rate = cache
        .get("persisted_hit_rate")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(
        rate >= 0.999,
        "warm run is served entirely from the recovered store ({rate})"
    );
    assert_eq!(
        stats
            .get("prover")
            .and_then(|p| p.get("queries"))
            .and_then(|v| v.as_u64()),
        Some(0),
        "zero prover work on the recovered warm path"
    );
    let preloaded = stats
        .get("store")
        .and_then(|s| s.get("preloaded"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(preloaded > 0, "the restart preloaded the flushed verdicts");
    client.shutdown().expect("shutdown");
    drop(victim);
}
