//! Work counters describing how a formal query was discharged.

/// Counters for one prover invocation (or an aggregate over many).
///
/// The incremental core answers each query by the cheapest applicable
/// layer, in order:
///
/// 1. **constant folding / structural hashing** while the monitor is
///    built (free — a query whose target folds to a constant is counted
///    under `ternary_kills`, since three-valued propagation subsumes
///    it),
/// 2. **ternary simulation** (`ternary_kills`): the target is constant
///    under every input assignment, so the SAT query is decided without
///    the solver,
/// 3. **random simulation** (`sim_kills`): 64-way bit-parallel patterns
///    found a concrete witness, so a falsification query is SAT without
///    the solver,
/// 4. **SAT** (`sat_calls`): everything else goes to the CDCL solver;
///    `solver_reuse_hits` counts the calls that were answered by a
///    solver already warmed by a previous query of the same
///    equivalence check / proof (learned clauses and variable
///    activities carry over instead of being rebuilt).
///
/// The session counters describe *proof-context reuse* across
/// candidate assertions (see [`crate::ProofSession`] and
/// [`crate::EquivSession`]): `sessions_opened` counts how many shared
/// contexts (unrolled AIG + solver, or reference encoding + solver)
/// were built, `session_checks` how many candidate assertions streamed
/// through them, and `unroll_reuse_hits` how much already-built
/// encoding state (unrolled time frames, cached reference monitors)
/// was served to a check instead of being rebuilt. A compile-once /
/// score-many workload shows `sessions_opened` far below
/// `session_checks`; the legacy one-shot entry points open one session
/// per check, so there the two are equal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// Queries discharged by the CDCL SAT solver.
    pub sat_calls: u64,
    /// Falsification queries killed by random simulation (a witness
    /// pattern was found before any SAT call).
    pub sim_kills: u64,
    /// Queries killed by ternary simulation / constant folding (the
    /// target was provably constant without search).
    pub ternary_kills: u64,
    /// SAT calls served by a reused (already-warmed) solver instead of
    /// a freshly built one.
    pub solver_reuse_hits: u64,
    /// Proof contexts (shared unrolling/solver sessions) built.
    pub sessions_opened: u64,
    /// Candidate assertions checked through a session.
    pub session_checks: u64,
    /// Already-built session state (unrolled time frames, cached
    /// reference-assertion encodings) served to a check instead of
    /// being re-encoded from scratch.
    pub unroll_reuse_hits: u64,
    /// Frames opened by the IC3/PDR engine (summed across checks).
    pub pdr_frames: u64,
    /// Blocked-cube clauses the PDR engine learned after
    /// relative-induction generalization.
    pub pdr_clauses_learned: u64,
    /// Checks whose reported verdict came from the PDR engine (PDR ran
    /// alone, or answered first / rescued an undetermined base schedule
    /// in a portfolio race).
    pub pdr_wins: u64,
    /// Portfolio checks whose reported verdict came from the bounded
    /// BMC + k-induction schedule.
    pub bounded_wins: u64,
    /// Engines cancelled mid-run because the other side of a portfolio
    /// race answered first (or a budget expired).
    pub engine_cancellations: u64,
    /// Compiled designs served from a content-digest cache instead of
    /// being re-elaborated (the compile-once half of compile-once /
    /// score-many observed across identical design sources).
    pub digest_reuse: u64,
}

impl ProverStats {
    /// Total queries decided across all layers.
    pub fn queries(&self) -> u64 {
        self.sat_calls + self.sim_kills + self.ternary_kills
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &ProverStats) {
        self.sat_calls += other.sat_calls;
        self.sim_kills += other.sim_kills;
        self.ternary_kills += other.ternary_kills;
        self.solver_reuse_hits += other.solver_reuse_hits;
        self.sessions_opened += other.sessions_opened;
        self.session_checks += other.session_checks;
        self.unroll_reuse_hits += other.unroll_reuse_hits;
        self.pdr_frames += other.pdr_frames;
        self.pdr_clauses_learned += other.pdr_clauses_learned;
        self.pdr_wins += other.pdr_wins;
        self.bounded_wins += other.bounded_wins;
        self.engine_cancellations += other.engine_cancellations;
        self.digest_reuse += other.digest_reuse;
    }

    /// The counter delta `self - earlier`, where `earlier` is a prior
    /// snapshot of the same monotonically growing counter set. Sessions
    /// use this to report per-check work on top of cumulative totals.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds the
    /// corresponding counter of `self` (not a prior snapshot).
    pub fn delta_since(&self, earlier: &ProverStats) -> ProverStats {
        let sub = |a: u64, b: u64| {
            debug_assert!(a >= b, "delta_since needs a prior snapshot");
            a - b
        };
        ProverStats {
            sat_calls: sub(self.sat_calls, earlier.sat_calls),
            sim_kills: sub(self.sim_kills, earlier.sim_kills),
            ternary_kills: sub(self.ternary_kills, earlier.ternary_kills),
            solver_reuse_hits: sub(self.solver_reuse_hits, earlier.solver_reuse_hits),
            sessions_opened: sub(self.sessions_opened, earlier.sessions_opened),
            session_checks: sub(self.session_checks, earlier.session_checks),
            unroll_reuse_hits: sub(self.unroll_reuse_hits, earlier.unroll_reuse_hits),
            pdr_frames: sub(self.pdr_frames, earlier.pdr_frames),
            pdr_clauses_learned: sub(self.pdr_clauses_learned, earlier.pdr_clauses_learned),
            pdr_wins: sub(self.pdr_wins, earlier.pdr_wins),
            bounded_wins: sub(self.bounded_wins, earlier.bounded_wins),
            engine_cancellations: sub(self.engine_cancellations, earlier.engine_cancellations),
            digest_reuse: sub(self.digest_reuse, earlier.digest_reuse),
        }
    }
}

impl std::ops::AddAssign for ProverStats {
    fn add_assign(&mut self, rhs: ProverStats) {
        self.merge(&rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ProverStats {
            sat_calls: 1,
            sim_kills: 2,
            ternary_kills: 3,
            solver_reuse_hits: 0,
            sessions_opened: 1,
            session_checks: 2,
            unroll_reuse_hits: 3,
            ..ProverStats::default()
        };
        a += ProverStats {
            sat_calls: 10,
            sim_kills: 20,
            ternary_kills: 30,
            solver_reuse_hits: 5,
            sessions_opened: 1,
            session_checks: 4,
            unroll_reuse_hits: 7,
            pdr_frames: 2,
            pdr_clauses_learned: 9,
            pdr_wins: 1,
            bounded_wins: 3,
            engine_cancellations: 1,
            digest_reuse: 2,
        };
        assert_eq!(a.sat_calls, 11);
        assert_eq!(a.sim_kills, 22);
        assert_eq!(a.ternary_kills, 33);
        assert_eq!(a.solver_reuse_hits, 5);
        assert_eq!(a.sessions_opened, 2);
        assert_eq!(a.session_checks, 6);
        assert_eq!(a.unroll_reuse_hits, 10);
        assert_eq!(a.pdr_frames, 2);
        assert_eq!(a.pdr_clauses_learned, 9);
        assert_eq!(a.pdr_wins, 1);
        assert_eq!(a.bounded_wins, 3);
        assert_eq!(a.engine_cancellations, 1);
        assert_eq!(a.digest_reuse, 2);
        assert_eq!(a.queries(), 66, "session counters are not queries");
    }

    #[test]
    fn delta_since_subtracts_per_counter() {
        let earlier = ProverStats {
            sat_calls: 1,
            sim_kills: 2,
            ternary_kills: 3,
            solver_reuse_hits: 0,
            sessions_opened: 1,
            session_checks: 1,
            unroll_reuse_hits: 0,
            ..ProverStats::default()
        };
        let mut later = earlier;
        later += ProverStats {
            sat_calls: 4,
            session_checks: 1,
            unroll_reuse_hits: 6,
            pdr_frames: 3,
            pdr_wins: 1,
            digest_reuse: 4,
            ..ProverStats::default()
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.sat_calls, 4);
        assert_eq!(delta.sessions_opened, 0);
        assert_eq!(delta.session_checks, 1);
        assert_eq!(delta.unroll_reuse_hits, 6);
        assert_eq!(delta.pdr_frames, 3);
        assert_eq!(delta.pdr_wins, 1);
        assert_eq!(delta.digest_reuse, 4);
    }
}
