//! # FVEval-rs
//!
//! A from-scratch Rust reproduction of *"FVEval: Understanding Language
//! Model Capabilities in Formal Verification of Digital Hardware"*
//! (DATE 2025). This facade crate re-exports the whole stack; see the
//! individual crates for details:
//!
//! - [`fv_sat`] — CDCL SAT solver.
//! - [`fv_aig`] — and-inverter graphs + bit-vector layer + CNF.
//! - [`sv_ast`] / [`sv_parser`] — SystemVerilog + SVA front-end.
//! - [`sv_synth`] — elaboration, bit-blasting, simulation.
//! - [`fv_core`] — assertion equivalence, BMC, k-induction.
//! - [`fveval_gen`] — the scenario generator subsystem (open-ended
//!   benchmark families with golden verdicts).
//! - [`fveval_data`] — the three benchmark datasets + generated task
//!   sets.
//! - [`fveval_llm`] — calibrated simulated models.
//! - [`fveval_core`] — the evaluation framework (metrics + runners).
//!
//! # Quickstart
//!
//! ```
//! use fveval_repro::prelude::*;
//!
//! let reference = parse_assertion_str(
//!     "assert property (@(posedge clk) a |-> strong(##[0:$] b));",
//! )?;
//! let candidate = parse_assertion_str(
//!     "assert property (@(posedge clk) a |-> ##[1:$] b);",
//! )?;
//! let table: SignalTable = [("a", 1u32), ("b", 1)].into_iter().collect();
//! let out = check_equivalence(&reference, &candidate, &table, EquivConfig::default())?;
//! assert_eq!(out.verdict, Equivalence::RefImpliesCand); // partial credit
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use fv_aig;
pub use fv_core;
pub use fv_sat;
pub use fveval_core;
pub use fveval_data;
pub use fveval_gen;
pub use fveval_llm;
pub use sv_ast;
pub use sv_parser;
pub use sv_synth;

/// The most common imports in one place.
pub mod prelude {
    pub use fv_core::{
        check_equivalence, prove, prove_with_stats, replay_design_cex, EquivConfig, EquivSession,
        Equivalence, ProofSession, ProveConfig, ProveResult, ProverStats, SignalTable,
    };
    pub use fveval_core::{
        bleu, compile_design, design_task_specs, generated_task_specs, human_task_specs,
        machine_task_specs, pass_at_k, CacheStats, CompiledDesign, Design2svaRunner, EvalEngine,
        MetricSummary, Nl2svaRunner, SampleEval,
    };
    pub use fveval_data::{
        fsm_sweep, generate_fsm, generate_machine_cases, generate_pipeline, generated_task_set,
        human_cases, machine_signal_table, pipeline_sweep, signal_table_for, testbenches,
        FsmParams, MachineGenConfig, PipelineParams, SuiteConfig,
    };
    pub use fveval_gen::{
        bind_scenario, derive_mutants, derive_mutants_with_ops, generate_suite, generators,
        mutate_scenario, validate_scenario, validate_suite, GenParams, MutationOp, Scenario, Suite,
    };
    pub use fveval_llm::{profiles, Backend, InferenceConfig, Request, TaskSpec};
    pub use sv_parser::{parse_assertion_str, parse_snippet, parse_source};
    pub use sv_synth::{elaborate, elaborate_design, elaborate_with_extras, Simulator};
}
