//! The `elaboration` group: the cold front-end wall, at current scale
//! and at 10× scale.
//!
//! Elaboration is paid once per design per suite generation and per
//! shard warm-up, so its cold cost bounds how fast a fresh server or a
//! regenerated suite can come up. The workload is the worst case the
//! generator families produce: a *wide* hierarchy (many instantiated
//! cells, each inlined with hierarchical names) where every cell
//! unrolls a *deep* generate pipeline over unpacked array elements.
//!
//! - `cold_elaborate/{1x,10x}` — full `elaborate_design` walk: module
//!   inlining, generate unrolling, parameter resolution, netlist
//!   passes.
//! - `bind_extras/{1x,10x}` — the score-many half: splicing a
//!   response's helper items into the already-elaborated design.
//! - `driver_elaborate/{1x,10x}` — the same cold walk routed through
//!   the frontend-agnostic driver (parallel per-instance fragment
//!   pre-build + splice); identical output, measured separately.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use sv_parser::{parse_snippet, parse_source};
use sv_synth::{elaborate_design, elaborate_design_driver};

/// A wide-hierarchy design: `cells` instantiated copies of a pipeline
/// cell, each unrolling `depth` generate stages over array elements.
pub fn wide_hier_source(cells: u32, depth: u32) -> String {
    let mut src = String::new();
    src.push_str(&format!(
        "module cell (clk, reset_, din, dout);\n\
         input clk; input reset_; input [7:0] din; output [7:0] dout;\n\
         parameter DEPTH = {depth};\n\
         logic [7:0] st [DEPTH:0];\n\
         assign st[0] = din;\n\
         for (genvar i = 0; i < DEPTH; i = i + 1) begin : g\n\
         always @(posedge clk) begin\n\
         if (!reset_) st[i+1] <= 'd0; else st[i+1] <= st[i] + 8'd1;\n\
         end\nend\n\
         assign dout = st[DEPTH];\nendmodule\n"
    ));
    src.push_str("module top (clk, reset_, in, out);\n");
    src.push_str("input clk; input reset_; input [7:0] in; output [7:0] out;\n");
    for i in 0..cells {
        src.push_str(&format!("logic [7:0] o{i};\n"));
        src.push_str(&format!(
            "cell c{i} (.clk(clk), .reset_(reset_), .din(in), .dout(o{i}));\n"
        ));
    }
    src.push_str("assign out = ");
    for i in 0..cells {
        if i > 0 {
            src.push_str(" ^ ");
        }
        src.push_str(&format!("o{i}"));
    }
    src.push_str(";\nendmodule\n");
    src
}

/// `(label, cells, depth)` — 10× is ten times the total stage count.
const SIZES: [(&str, u32, u32); 2] = [("1x", 8, 8), ("10x", 40, 16)];

fn bench_elaboration(c: &mut Criterion) {
    let mut g = c.benchmark_group("elaboration");
    g.sample_size(20).measurement_time(Duration::from_secs(10));

    for (label, cells, depth) in SIZES {
        let file = parse_source(&wide_hier_source(cells, depth)).unwrap();
        g.bench_function(format!("cold_elaborate/{label}"), |b| {
            b.iter(|| black_box(elaborate_design(black_box(&file), "top", &[]).unwrap()));
        });

        g.bench_function(format!("driver_elaborate/{label}"), |b| {
            b.iter(|| black_box(elaborate_design_driver(black_box(&file), "top", &[]).unwrap()));
        });

        let design = elaborate_design(&file, "top", &[]).unwrap();
        let helpers = parse_snippet(
            "logic [7:0] mirror;\nassign mirror = out;\n\
             logic seen;\nalways @(posedge clk) begin seen <= mirror[0]; end\n",
        )
        .unwrap();
        g.bench_function(format!("bind_extras/{label}"), |b| {
            b.iter(|| black_box(design.bind_extras(black_box(&helpers)).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_elaboration);
criterion_main!(benches);
