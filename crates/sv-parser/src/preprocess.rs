//! A minimal `` `define `` preprocessor.
//!
//! Handles object-like macros (`` `define WIDTH 32 ``) and their uses
//! (`` `WIDTH ``), which is all the FVEval corpora require. Directives
//! such as `` `timescale `` are dropped; unknown macro uses are errors
//! (mirroring the elaboration failure a real tool reports).

use crate::ParseError;
use std::collections::HashMap;

/// Expands `` `define `` macros and strips directives.
///
/// # Errors
///
/// Returns [`ParseError`] for uses of undefined macros.
pub fn preprocess(src: &str) -> Result<String, ParseError> {
    let mut defines: HashMap<String, String> = HashMap::new();
    let mut out = String::with_capacity(src.len());
    for (ln, line) in src.lines().enumerate() {
        let ln = ln + 1;
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("`define") {
            let rest = rest.trim_start();
            let name_end = rest
                .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                .unwrap_or(rest.len());
            let name = &rest[..name_end];
            if name.is_empty() {
                return Err(ParseError::new(ln, 1, "`define without a name"));
            }
            let body = rest[name_end..].trim().to_string();
            defines.insert(name.to_string(), body);
            out.push('\n'); // keep line numbering stable
            continue;
        }
        if trimmed.starts_with("`timescale")
            || trimmed.starts_with("`default_nettype")
            || trimmed.starts_with("`resetall")
        {
            out.push('\n');
            continue;
        }
        // Expand macro uses in the line.
        let mut rest = line;
        loop {
            match rest.find('`') {
                None => {
                    out.push_str(rest);
                    break;
                }
                Some(i) => {
                    out.push_str(&rest[..i]);
                    let after = &rest[i + 1..];
                    let name_end = after
                        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                        .unwrap_or(after.len());
                    let name = &after[..name_end];
                    match defines.get(name) {
                        Some(body) => out.push_str(body),
                        None => {
                            return Err(ParseError::new(
                                ln,
                                i + 1,
                                format!("use of undefined macro `{name}"),
                            ))
                        }
                    }
                    rest = &after[name_end..];
                }
            }
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_expand() {
        let s = preprocess("`define WIDTH 32\nparameter W = `WIDTH;\n").unwrap();
        assert!(s.contains("parameter W = 32;"));
    }

    #[test]
    fn undefined_macro_is_error() {
        assert!(preprocess("x = `NOPE;").is_err());
    }

    #[test]
    fn line_numbers_preserved() {
        let s = preprocess("`define A 1\n\nx\n").unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2], "x");
    }

    #[test]
    fn timescale_dropped() {
        let s = preprocess("`timescale 1ns/1ps\nmodule m;\n").unwrap();
        assert!(!s.contains("timescale"));
        assert!(s.contains("module m;"));
    }

    #[test]
    fn redefinition_uses_latest() {
        let s = preprocess("`define W 8\n`define W 16\np = `W;\n").unwrap();
        assert!(s.contains("p = 16;"));
    }
}
