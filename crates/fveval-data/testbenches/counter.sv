// NL2SVA-Human collateral: 8-bit loadable up/down counter.
//
// load has priority; otherwise en counts up (up_down = 1) or
// down. at_max/at_min flag the saturation endpoints.
module counter_tb (
    input clk,
    input reset_,
    input en,
    input up_down,
    input load,
    input [7:0] load_val
);
  parameter WIDTH = 8;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  reg [7:0] cnt;

  wire at_max;
  wire at_min;
  assign at_max = (cnt == 8'd255);
  assign at_min = (cnt == 8'd0);

  always_ff @(posedge clk or negedge reset_) begin
    if (!reset_) begin
      cnt <= 8'd0;
    end else begin
      if (load) begin
        cnt <= load_val;
      end else if (en && up_down) begin
        cnt <= cnt + 8'd1;
      end else if (en && !up_down) begin
        cnt <= cnt - 8'd1;
      end
    end
  end
endmodule
