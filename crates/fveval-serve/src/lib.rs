//! `fveval-serve` — the persistent evaluation service.
//!
//! FVEval's cost model is dominated by re-running the same formal
//! queries: every table and figure re-proves verdicts an earlier run
//! already settled, and the in-process verdict cache dies with the
//! process. This crate adds the serving layer that amortizes that work
//! *across* processes, in three layers:
//!
//! 1. [`VerdictStore`] — a persistent, content-addressed verdict store:
//!    append-only JSON-lines segments keyed by the engine's `(model,
//!    task-id, content-digest, cfg, sample)` cache key, with atomic
//!    tmp+rename writes, crash-safe torn-tail recovery, and
//!    deterministic compaction. The `fveval` CLI flushes through it
//!    too, so every run — not just the server — survives restarts.
//! 2. [`Server`] — a non-blocking readiness-driven event loop ([`poll`]
//!    wraps `epoll` with no new dependencies) in front of N engine
//!    shards ([`shard`]): each shard owns a private
//!    [`fveval_core::EvalEngine`] and a bounded queue, jobs route by
//!    task-content digest so per-design caches stay shard-local,
//!    full queues answer `429` with a `Retry-After` hint, long-poll
//!    `GET /v1/jobs/<id>?wait_ms=` streams per-case progress, and a
//!    maintenance thread compacts the store while serving.
//! 3. The protocol + [`Client`] — minimal HTTP/1.1 over
//!    `std::net::TcpListener` and a hand-rolled [`json`] module (the
//!    same offline-shim philosophy as `crates/shims/`): `POST
//!    /v1/eval`, `GET /v1/jobs/<id>`, `GET /v1/stats`, `POST
//!    /v1/shutdown`, surfaced as the `fveval serve` / `submit` /
//!    `poll` / `stats` / `stop` subcommands.
//!
//! Determinism is the design invariant: a server-mediated evaluation is
//! byte-identical to a direct [`fveval_core::EvalEngine`] run — for any
//! shard count — and a warm restart re-serves it from the store with
//! zero prover calls. See `docs/SERVICE.md` for the wire protocol,
//! sharding/backpressure semantics, and store format.

#![deny(missing_docs)]

mod client;
pub mod http;
pub mod json;
pub mod poll;
mod protocol;
mod server;
pub mod shard;
mod store;
pub mod testutil;

pub use client::{Client, SubmitOutcome};
pub use protocol::{EvalRequest, EvalResult, JobState, JobView, TaskSetRef};
pub use server::{build_tasks, resolve_backends, Server, ServerConfig, DEFAULT_RETAINED_FINISHED};
pub use shard::{shard_of, Shard};
pub use store::{decode_record, encode_record, VerdictStore};
