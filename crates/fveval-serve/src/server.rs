//! The evaluation server: a job queue and worker pool wrapped around
//! one shared [`EvalEngine`], fronted by the minimal HTTP layer.
//!
//! Lifecycle: [`Server::bind`] opens the persistent [`VerdictStore`]
//! (when configured), preloads the engine with every stored verdict,
//! and starts the worker threads; [`Server::run`] then accepts
//! connections until a `POST /v1/shutdown` arrives, drains the queue,
//! and joins the workers. After every finished job the engine's newly
//! computed verdicts are flushed to the store — so a server killed
//! between jobs never loses a settled verdict, and a restarted server
//! re-serves warm work with zero prover calls.
//!
//! Every job is evaluated by the same deterministic engine the CLI
//! uses, so a server-mediated run is byte-identical to a direct one.

use crate::http;
use crate::json::{parse, Json};
use crate::protocol::{EvalRequest, EvalResult, JobState, JobView, TaskSetRef};
use crate::store::VerdictStore;
use fveval_core::{generated_task_specs, human_task_specs, machine_task_specs, EvalEngine};
use fveval_data::{
    generate_machine_cases, human_cases, machine_signal_table, signal_table_for, testbenches,
    MachineGenConfig, SuiteConfig,
};
use fveval_llm::{profiles, Backend, SimulatedModel, TaskSpec};
use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8642` (`:0` picks a free port).
    pub addr: String,
    /// Job worker threads (each runs one job at a time on the shared
    /// engine).
    pub workers: usize,
    /// Bound on in-flight jobs (queued + running); submissions beyond
    /// it are answered `429`.
    pub max_jobs: usize,
    /// Worker threads *inside* the engine (`--jobs`; 0 = all CPUs).
    pub engine_jobs: usize,
    /// Verdict-store directory; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// How many finished jobs (with their full result payloads) stay
    /// addressable; older ones answer `404`. Must be at least 1 —
    /// [`Server::bind`] rejects `0`, which would evict every result
    /// before its poller could read it.
    pub retain_finished: usize,
    /// Design2SVA proving configuration for the shared engine (the
    /// CLI's `--engine` / `--prove-budget-ms` flags); the default is
    /// the plain bounded schedule.
    pub prove_cfg: fv_core::ProveConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8642".to_string(),
            workers: 2,
            max_jobs: 64,
            engine_jobs: 0,
            cache_dir: None,
            retain_finished: DEFAULT_RETAINED_FINISHED,
            prove_cfg: fv_core::ProveConfig::default(),
        }
    }
}

#[derive(Debug)]
struct Job {
    request: EvalRequest,
    state: JobState,
    result: Option<EvalResult>,
    error: Option<String>,
}

#[derive(Debug, Default)]
struct State {
    jobs: HashMap<u64, Job>,
    queue: VecDeque<u64>,
    /// Finished (done/failed) job ids in completion order; bounded by
    /// [`ServerConfig::retain_finished`] so a long-lived server cannot
    /// grow without limit — the oldest results are evicted first.
    finished: VecDeque<u64>,
    next_id: u64,
    running: usize,
}

/// Default for [`ServerConfig::retain_finished`] (the `--retain` flag).
pub const DEFAULT_RETAINED_FINISHED: usize = 64;

/// Grace period between "nothing left to do" and the accept loop
/// exiting, so clients polling a just-finished job still collect its
/// result (pollers cycle every 50 ms).
const DRAIN_GRACE: Duration = Duration::from_millis(300);

#[derive(Debug)]
struct Shared {
    engine: EvalEngine,
    store: Mutex<Option<VerdictStore>>,
    state: Mutex<State>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    started: Instant,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    preloaded: usize,
    max_jobs: usize,
    retain_finished: usize,
    /// The bound address, used to wake the blocking accept loop.
    addr: std::net::SocketAddr,
}

impl Shared {
    /// Shutdown requested and nothing queued or running.
    fn drained(&self) -> bool {
        if !self.shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let state = self.state.lock().expect("state poisoned");
        state.queue.is_empty() && state.running == 0
    }

    /// Wakes the blocking accept loop (after `delay`) with a throwaway
    /// connection so it can re-check the drain condition.
    fn poke_acceptor(&self, delay: Duration) {
        let addr = self.addr;
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        });
    }
}

/// The bound, not-yet-running server. Call [`Server::run`] to serve.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, opens + preloads the verdict store, and
    /// starts the worker pool.
    ///
    /// # Errors
    ///
    /// Returns a message if the address cannot be bound, the store
    /// cannot be opened, or `retain_finished` is `0`.
    pub fn bind(config: ServerConfig) -> Result<Server, String> {
        if config.retain_finished == 0 {
            return Err(
                "retain_finished must be at least 1 (a server that retains no finished \
                 jobs could never deliver a result)"
                    .to_string(),
            );
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let engine = EvalEngine::with_jobs(config.engine_jobs).with_d2s_runner(
            fveval_core::Design2svaRunner::new().with_prove_config(config.prove_cfg),
        );
        let mut preloaded = 0usize;
        let store = match &config.cache_dir {
            Some(dir) => {
                let store = VerdictStore::open(dir)
                    .map_err(|e| format!("cannot open store {}: {e}", dir.display()))?;
                preloaded = engine.load_verdicts(store.records());
                Some(store)
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            engine,
            store: Mutex::new(store),
            state: Mutex::new(State::default()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            preloaded,
            max_jobs: config.max_jobs.max(1),
            retain_finished: config.retain_finished,
            addr,
        });
        shared.state.lock().expect("state poisoned").next_id = 1;
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            listener,
            shared,
            workers,
        })
    }

    /// The bound address (useful after binding port `0`).
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the local address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// Number of verdicts preloaded from the persistent store.
    pub fn preloaded(&self) -> usize {
        self.shared.preloaded
    }

    /// Serves until a `POST /v1/shutdown` arrives, then drains the job
    /// queue (still answering polls so in-flight results stay
    /// reachable), joins the workers, and compacts a fragmented store.
    ///
    /// Each connection is handled on its own short-lived thread, so a
    /// slow or stalled client never blocks the other endpoints.
    ///
    /// # Errors
    ///
    /// Returns a message on an unrecoverable listener error. Broken
    /// individual connections are logged to stderr and survived.
    pub fn run(self) -> Result<(), String> {
        for connection in self.listener.incoming() {
            match connection {
                Ok(stream) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || {
                        let mut stream = stream;
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                        if let Err(e) = handle_connection(&shared, &mut stream) {
                            // Wake-up pokes connect and close without a
                            // request; don't log those as errors.
                            if e.kind() != std::io::ErrorKind::UnexpectedEof {
                                eprintln!("[serve] connection error: {e}");
                            }
                        }
                    });
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
            if self.shared.drained() {
                break;
            }
        }
        self.shared.queue_cv.notify_all();
        for worker in self.workers {
            let _ = worker.join();
        }
        let mut store = self.shared.store.lock().expect("store poisoned");
        if let Some(store) = store.as_mut() {
            // Bound fragmentation across restarts: many short runs each
            // append one segment; fold them once at shutdown.
            if store.segment_count() > 4 {
                store
                    .compact()
                    .map_err(|e| format!("compaction failed: {e}"))?;
            }
        }
        Ok(())
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: &mut TcpStream) -> std::io::Result<()> {
    let request = match http::read_request(stream) {
        Ok(r) => r,
        // An empty connection (liveness probe / acceptor wake-up) has
        // nobody listening for a response; just propagate quietly.
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Err(e),
        Err(e) => {
            let body = error_body(&format!("bad request: {e}"));
            return http::write_response(stream, 400, "Bad Request", &body);
        }
    };
    let (status, reason, body) = route(shared, &request);
    http::write_response(stream, status, reason, &body)
}

fn error_body(message: &str) -> String {
    Json::obj([("error", message.into())]).encode()
}

fn route(shared: &Arc<Shared>, request: &http::Request) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/eval") => submit(shared, &request.body),
        ("GET", "/v1/stats") => (200, "OK", stats_json(shared).encode()),
        ("POST", "/v1/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            // Wake the acceptor once the grace window has passed so an
            // already-drained server exits promptly but pending pollers
            // still collect their results.
            shared.poke_acceptor(DRAIN_GRACE);
            (200, "OK", Json::obj([("ok", true.into())]).encode())
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            match path["/v1/jobs/".len()..].parse::<u64>() {
                Ok(id) => job_status(shared, id),
                Err(_) => (400, "Bad Request", error_body("job ids are integers")),
            }
        }
        _ => (
            404,
            "Not Found",
            error_body(&format!("no route for {} {}", request.method, request.path)),
        ),
    }
}

fn submit(shared: &Arc<Shared>, body: &[u8]) -> (u16, &'static str, String) {
    if shared.shutdown.load(Ordering::SeqCst) {
        return (
            503,
            "Service Unavailable",
            error_body("server is draining; submissions are closed"),
        );
    }
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (400, "Bad Request", error_body("body is not UTF-8")),
    };
    let request = match parse(text).and_then(|v| EvalRequest::decode(&v)) {
        Ok(r) => r,
        Err(e) => return (400, "Bad Request", error_body(&e)),
    };
    // Reject what a worker could never evaluate while the client is
    // still connected, instead of parking a doomed job in the queue.
    if let Err(e) = resolve_backends(&request.models) {
        return (400, "Bad Request", error_body(&e));
    }
    if let TaskSetRef::Suite { families, .. } = &request.tasks {
        for family in families {
            if fveval_gen::generator(family).is_none() {
                return (
                    400,
                    "Bad Request",
                    error_body(&format!("unknown family '{family}'")),
                );
            }
        }
    }
    let mut state = shared.state.lock().expect("state poisoned");
    if state.queue.len() + state.running >= shared.max_jobs {
        return (
            429,
            "Too Many Requests",
            error_body("job queue is full; retry later"),
        );
    }
    let id = state.next_id;
    state.next_id += 1;
    state.jobs.insert(
        id,
        Job {
            request,
            state: JobState::Queued,
            result: None,
            error: None,
        },
    );
    state.queue.push_back(id);
    drop(state);
    shared.queue_cv.notify_one();
    (200, "OK", Json::obj([("job", id.into())]).encode())
}

fn job_status(shared: &Arc<Shared>, id: u64) -> (u16, &'static str, String) {
    let state = shared.state.lock().expect("state poisoned");
    let Some(job) = state.jobs.get(&id) else {
        return (404, "Not Found", error_body(&format!("no job {id}")));
    };
    let view = JobView {
        id,
        state: job.state,
        position: state
            .queue
            .iter()
            .position(|&queued| queued == id)
            .map(|p| p as u64),
        result: job.result.clone(),
        error: job.error.clone(),
    };
    (200, "OK", view.encode().encode())
}

fn stats_json(shared: &Arc<Shared>) -> Json {
    let cache = shared.engine.cache_stats();
    let prover = shared.engine.prover_stats();
    let state = shared.state.lock().expect("state poisoned");
    let queued = state.queue.len();
    let running = state.running;
    let submitted = state.next_id.saturating_sub(1);
    drop(state);
    let store = shared.store.lock().expect("store poisoned");
    let store_json = match store.as_ref() {
        Some(store) => Json::obj([
            ("entries", store.len().into()),
            ("segments", store.segment_count().into()),
            ("torn_lines", store.torn_lines().into()),
            ("preloaded", shared.preloaded.into()),
        ]),
        None => Json::Null,
    };
    drop(store);
    Json::obj([
        ("uptime_secs", shared.started.elapsed().as_secs_f64().into()),
        (
            "jobs",
            Json::obj([
                ("submitted", submitted.into()),
                ("queued", queued.into()),
                ("running", running.into()),
                ("done", shared.jobs_done.load(Ordering::Relaxed).into()),
                ("failed", shared.jobs_failed.load(Ordering::Relaxed).into()),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("hits", cache.hits.into()),
                ("persisted_hits", cache.persisted_hits.into()),
                ("misses", cache.misses.into()),
                ("entries", cache.entries.into()),
                ("persisted_hit_rate", cache.persisted_hit_rate().into()),
            ]),
        ),
        (
            "prover",
            Json::obj([
                ("queries", prover.queries().into()),
                ("sat_calls", prover.sat_calls.into()),
                ("sim_kills", prover.sim_kills.into()),
                ("ternary_kills", prover.ternary_kills.into()),
                ("solver_reuse_hits", prover.solver_reuse_hits.into()),
                ("sessions_opened", prover.sessions_opened.into()),
                ("session_checks", prover.session_checks.into()),
                ("unroll_reuse_hits", prover.unroll_reuse_hits.into()),
                ("pdr_frames", prover.pdr_frames.into()),
                ("pdr_clauses_learned", prover.pdr_clauses_learned.into()),
                ("pdr_wins", prover.pdr_wins.into()),
                ("bounded_wins", prover.bounded_wins.into()),
                ("engine_cancellations", prover.engine_cancellations.into()),
            ]),
        ),
        ("store", store_json),
    ])
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let claimed = {
            let mut state = shared.state.lock().expect("state poisoned");
            loop {
                if let Some(id) = state.queue.pop_front() {
                    state.running += 1;
                    if let Some(job) = state.jobs.get_mut(&id) {
                        job.state = JobState::Running;
                    }
                    break Some(id);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                state = shared
                    .queue_cv
                    .wait_timeout(state, Duration::from_millis(200))
                    .expect("state poisoned")
                    .0;
            }
        };
        let Some(id) = claimed else {
            return;
        };
        let request = shared
            .state
            .lock()
            .expect("state poisoned")
            .jobs
            .get(&id)
            .map(|j| j.request.clone())
            .expect("claimed job exists");
        let outcome = run_job(shared, &request);
        // Persist what this job settled before reporting it done, so a
        // client that sees `done` can rely on the verdicts surviving a
        // kill -9 right after.
        let fresh = shared.engine.take_unpersisted();
        if let Some(store) = shared.store.lock().expect("store poisoned").as_mut() {
            if let Err(e) = store.append(&fresh) {
                eprintln!("[serve] store flush failed: {e}");
            }
        }
        let mut state = shared.state.lock().expect("state poisoned");
        state.running -= 1;
        if let Some(job) = state.jobs.get_mut(&id) {
            match outcome {
                Ok(result) => {
                    job.state = JobState::Done;
                    job.result = Some(result);
                    shared.jobs_done.fetch_add(1, Ordering::Relaxed);
                }
                Err(error) => {
                    job.state = JobState::Failed;
                    job.error = Some(error);
                    shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Bound memory: retain only the most recent finished results.
        state.finished.push_back(id);
        while state.finished.len() > shared.retain_finished {
            if let Some(evicted) = state.finished.pop_front() {
                state.jobs.remove(&evicted);
            }
        }
        drop(state);
        if shared.drained() {
            // Last job under shutdown: give pending pollers the grace
            // window, then let the accept loop exit.
            shared.poke_acceptor(DRAIN_GRACE);
        }
    }
}

fn run_job(shared: &Arc<Shared>, request: &EvalRequest) -> Result<EvalResult, String> {
    let tasks = build_tasks(&request.tasks)?;
    let models = resolve_backends(&request.models)?;
    let backends: Vec<&dyn Backend> = models.iter().map(|m| m as &dyn Backend).collect();
    let rows = shared
        .engine
        .run_matrix(&backends, &tasks, &request.cfg, request.samples.max(1));
    Ok(EvalResult {
        models: models
            .iter()
            .map(|m| m.name().to_string())
            .zip(rows)
            .collect(),
    })
}

/// Materializes a task-set reference into an engine work-list. Public
/// so the direct-path CLI and the integration tests evaluate *the
/// same* task list a server would, making byte-identical comparisons
/// meaningful.
///
/// # Errors
///
/// Returns a message when generated collateral fails to bind (a
/// generator bug) or a family name is unknown.
pub fn build_tasks(tasks: &TaskSetRef) -> Result<Vec<Arc<TaskSpec>>, String> {
    match tasks {
        TaskSetRef::Human => {
            let tables: HashMap<&str, _> = testbenches()
                .into_iter()
                .map(|tb| {
                    let table = signal_table_for(&tb)?;
                    Ok((tb.name, table))
                })
                .collect::<Result<_, String>>()?;
            Ok(human_task_specs(&human_cases(), &tables))
        }
        TaskSetRef::Machine { count, seed } => {
            let cases = generate_machine_cases(MachineGenConfig {
                count: *count,
                seed: *seed,
                ..Default::default()
            });
            Ok(machine_task_specs(&cases, &machine_signal_table()))
        }
        TaskSetRef::Suite {
            families,
            per_family,
            seed,
            depth,
            width,
            mutations,
        } => {
            for family in families {
                if fveval_gen::generator(family).is_none() {
                    return Err(format!("unknown family '{family}'"));
                }
            }
            let set = fveval_data::generated_task_set(&SuiteConfig {
                families: families.clone(),
                per_family: *per_family,
                seed: *seed,
                depth: *depth,
                width: *width,
                mutations: *mutations,
            })?;
            Ok(generated_task_specs(&set))
        }
    }
}

/// Resolves a model roster by name (empty = the full profile roster).
///
/// # Errors
///
/// Returns a message naming the first unknown model.
pub fn resolve_backends(names: &[String]) -> Result<Vec<SimulatedModel>, String> {
    let roster = profiles();
    if names.is_empty() {
        return Ok(roster);
    }
    names
        .iter()
        .map(|name| {
            roster
                .iter()
                .find(|m| m.name() == name)
                .cloned()
                .ok_or_else(|| {
                    format!(
                        "unknown model '{name}' (known: {})",
                        roster
                            .iter()
                            .map(|m| m.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
        })
        .collect()
}
