//! Loadable task sets from the `fveval-gen` scenario generator.
//!
//! One generated [`Suite`] feeds all three FVEval task types:
//!
//! - **NL2SVA-Human-style** cases: each candidate's NL description
//!   becomes the specification, its SVA the reference, scored by
//!   formal equivalence in the scenario's testbench scope;
//! - **NL2SVA-Machine-style** cases: the same pairs in the machine
//!   set's shape (parsed reference AST + canonical text);
//! - **Design2SVA** cases: the scenario's design + testbench with the
//!   provable candidates as goldens and the falsifiable ones carried
//!   for the simulated models' plausible-but-wrong failure mode.
//!
//! Everything stays deterministic under the suite seed, and ids are
//! prefixed with the scenario id so generated sets never collide with
//! the shipped corpora.

use crate::design::{DesignCase, DesignKind};
use crate::human::HumanCase;
use crate::machine::MachineCase;
use fv_core::SignalTable;
use fveval_gen::{bind_scenario, generate_suite, Scenario, Suite, SuiteConfig};
use std::collections::HashMap;

/// One generated suite converted into engine-ready task sets.
#[derive(Debug, Clone)]
pub struct GeneratedTaskSet {
    /// The underlying suite (scenario sources, candidates, verdicts).
    pub suite: Suite,
    /// NL2SVA-Human-style cases; `testbench` is the owning scenario id.
    pub human: Vec<HumanCase>,
    /// Per-scenario signal scopes, keyed by scenario id.
    pub tables: HashMap<String, SignalTable>,
    /// NL2SVA-Machine-style cases, each paired with its owning
    /// scenario id (the key into [`GeneratedTaskSet::tables`]).
    pub machine: Vec<(String, MachineCase)>,
    /// Design2SVA cases ([`DesignKind::Scenario`]).
    pub designs: Vec<DesignCase>,
}

/// Generates a suite and converts it (see [`task_set_from_suite`]).
///
/// # Errors
///
/// Propagates collateral binding/parse failures — generator bugs,
/// covered by `fveval-gen`'s own tests.
pub fn generated_task_set(config: &SuiteConfig) -> Result<GeneratedTaskSet, String> {
    task_set_from_suite(generate_suite(config))
}

/// Converts an existing suite into the three task-set shapes.
///
/// # Errors
///
/// Propagates collateral binding/parse failures.
pub fn task_set_from_suite(suite: Suite) -> Result<GeneratedTaskSet, String> {
    let mut human = Vec::new();
    let mut tables = HashMap::new();
    let mut machine = Vec::new();
    let mut designs = Vec::new();
    for scenario in &suite.scenarios {
        let bound = bind_scenario(scenario)?;
        tables.insert(scenario.id.clone(), bound.table);
        for cand in &scenario.candidates {
            let id = format!("{}_{}", scenario.id, cand.name);
            let mutation = cand.mutation.map(|op| op.tag().to_string());
            human.push(HumanCase {
                id: id.clone(),
                testbench: scenario.id.clone(),
                question: format!("Create a SVA assertion that checks: {}", cand.nl),
                reference: cand.sva.clone(),
                mutation: mutation.clone(),
            });
            let reference =
                sv_parser::parse_assertion_str(&cand.sva).map_err(|e| format!("{id}: {e}"))?;
            let reference_text = sv_ast::print_assertion(&reference);
            // The `_m` suffix keeps ids unique across the human-style
            // and machine-style views of the same candidate.
            machine.push((
                scenario.id.clone(),
                MachineCase {
                    id: format!("{id}_m"),
                    question: cand.nl.clone(),
                    reference,
                    reference_text,
                    retries: 0,
                    mutation,
                },
            ));
        }
        designs.push(design_case(scenario));
    }
    Ok(GeneratedTaskSet {
        suite,
        human,
        tables,
        machine,
        designs,
    })
}

/// The Design2SVA view of one scenario.
fn design_case(scenario: &Scenario) -> DesignCase {
    DesignCase {
        id: scenario.id.clone(),
        design_source: scenario.design_source.clone(),
        tb_source: scenario.tb_source.clone(),
        top: scenario.top.clone(),
        tb_top: scenario.tb_top.clone(),
        golden: scenario.provable().map(|c| c.sva.clone()).collect(),
        logic_excerpt: scenario.logic_excerpt.clone(),
        kind: DesignKind::Scenario {
            family: scenario.family.to_string(),
            falsifiable: scenario.falsifiable().map(|c| c.sva.clone()).collect(),
            internal_signal: scenario.internal_signal.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_set() -> GeneratedTaskSet {
        generated_task_set(&SuiteConfig {
            families: vec!["fifo".into(), "handshake".into()],
            per_family: 2,
            seed: 11,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn conversion_covers_all_three_task_types() {
        let set = small_set();
        assert_eq!(set.suite.scenarios.len(), 4);
        assert_eq!(set.designs.len(), 4);
        assert_eq!(set.human.len(), set.suite.candidate_count());
        assert_eq!(set.machine.len(), set.suite.candidate_count());
        for s in &set.suite.scenarios {
            assert!(set.tables.contains_key(&s.id), "{} table", s.id);
        }
        for d in &set.designs {
            assert!(!d.golden.is_empty(), "{} goldens", d.id);
            match &d.kind {
                DesignKind::Scenario { falsifiable, .. } => {
                    assert!(!falsifiable.is_empty(), "{} falsifiable", d.id)
                }
                other => panic!("wrong kind {other:?}"),
            }
        }
    }

    #[test]
    fn human_references_are_self_equivalent_in_scope() {
        use fv_core::{check_equivalence, EquivConfig, Equivalence};
        let set = small_set();
        for case in &set.human {
            let a = sv_parser::parse_assertion_str(&case.reference)
                .unwrap_or_else(|e| panic!("{}: {e}", case.id));
            let table = &set.tables[&case.testbench];
            let out = check_equivalence(&a, &a, table, EquivConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", case.id));
            assert_eq!(out.verdict, Equivalence::Equivalent, "{}", case.id);
        }
    }

    #[test]
    fn machine_cases_round_trip_in_their_scope() {
        let set = small_set();
        for (scenario_id, case) in &set.machine {
            assert!(set.tables.contains_key(scenario_id), "{}", case.id);
            let parsed = sv_parser::parse_assertion_str(&case.reference_text)
                .unwrap_or_else(|e| panic!("{}: {e}", case.id));
            assert_eq!(sv_ast::print_assertion(&parsed), case.reference_text);
        }
    }

    #[test]
    fn conversion_is_deterministic() {
        let a = small_set();
        let b = small_set();
        assert_eq!(a.human, b.human);
        assert_eq!(a.machine, b.machine);
        assert_eq!(a.designs, b.designs);
    }
}
