//! Model checking: is an assertion *proven* on a design?
//!
//! This is the Design2SVA functional metric. The engine runs bounded
//! model checking (counterexample search) over unrolled time frames,
//! then k-induction for a proof. Properties with unbounded temporal
//! operators are reported [`ProveResult::Undetermined`] (the bounded
//! engine cannot conclude liveness), matching how a tool timeout is
//! scored.

use crate::env::DesignTraceEnv;
use crate::error::EncodeError;
use crate::monitor::{encode_assertion_at, horizon_for};
use fv_aig::{Aig, CnfEmitter};
use fv_sat::Solver;
use sv_ast::Assertion;
use sv_synth::{FrameExpander, Netlist};

/// Configuration for the prover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProveConfig {
    /// Maximum BMC depth (number of anchor cycles checked).
    pub max_bmc: u32,
    /// Maximum k for k-induction.
    pub max_induction: u32,
    /// Horizon slack (see [`crate::EquivConfig::slack`]).
    pub slack: u32,
}

impl Default for ProveConfig {
    fn default() -> ProveConfig {
        ProveConfig {
            max_bmc: 12,
            max_induction: 6,
            slack: 4,
        }
    }
}

/// A concrete counterexample trace from BMC.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DesignCex {
    /// Anchor cycle of the violated evaluation attempt.
    pub anchor: u32,
    /// `(input, frame, value)` triples.
    pub inputs: Vec<(String, u32, u128)>,
}

impl std::fmt::Display for DesignCex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation of attempt anchored at cycle {}:", self.anchor)?;
        for (name, frame, v) in &self.inputs {
            writeln!(f, "  cycle {frame:>3}: {name} = {v:#x}")?;
        }
        Ok(())
    }
}

/// Outcome of [`prove`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProveResult {
    /// Proven by k-induction at the given k (with BMC base).
    Proven {
        /// Induction depth that closed the proof.
        k: u32,
    },
    /// Falsified: a reachable violation exists.
    Falsified {
        /// The counterexample.
        cex: DesignCex,
    },
    /// Bounds exhausted without a verdict (scored as not-proven).
    Undetermined,
}

impl ProveResult {
    /// The Design2SVA functional metric: the assertion was proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, ProveResult::Proven { .. })
    }
}

/// Checks `assertion` against the elaborated design `netlist`.
///
/// The design starts from its reset state with the reset input held
/// deasserted. `consts` provides testbench parameter bindings (state
/// encodings such as `S0`) visible to the assertion.
///
/// # Errors
///
/// [`EncodeError`] when the assertion references signals absent from
/// the testbench scope (including design-internal signals the prompt
/// forbids) — scored as an elaboration failure.
pub fn prove(
    netlist: &Netlist,
    assertion: &Assertion,
    consts: &[(String, u32, u128)],
    cfg: ProveConfig,
) -> Result<ProveResult, EncodeError> {
    if assertion.body.has_unbounded() {
        return Ok(ProveResult::Undetermined);
    }
    let expander = FrameExpander::new(netlist)
        .map_err(|n| EncodeError::Unsupported(format!("combinational cycle through '{n}'")))?;
    let horizon = horizon_for(assertion, None, cfg.slack);

    // ---- BMC: search for a violated attempt anchored at t. ----
    {
        let mut g = Aig::new();
        let mut env = DesignTraceEnv::new(&expander);
        for (n, w, v) in consts {
            env.bind_const(n.clone(), *w, *v);
        }
        let mut solver = Solver::new();
        let mut em = CnfEmitter::new();
        for t in 0..cfg.max_bmc {
            let total = t + horizon;
            let holds = encode_assertion_at(&mut g, assertion, t, total, &mut env)?;
            let l = em.emit(&g, !holds, &mut solver);
            if solver.solve_with(&[l]).is_sat() {
                let mut inputs = Vec::new();
                for (name, frame, bv) in env.input_log() {
                    let mut v: u128 = 0;
                    for (i, &bit) in bv.bits().iter().enumerate() {
                        let val = em
                            .lookup(bit.node())
                            .and_then(|var| solver.value(var))
                            .map(|b| b ^ bit.is_inverted())
                            .unwrap_or(false);
                        if val {
                            v |= 1 << i;
                        }
                    }
                    inputs.push((name.clone(), *frame, v));
                }
                inputs.sort_by_key(|a| (a.1, a.0.clone()));
                return Ok(ProveResult::Falsified {
                    cex: DesignCex { anchor: t, inputs },
                });
            }
        }
    }

    // ---- k-induction: arbitrary start state, k good attempts imply
    //      the next one. ----
    for k in 1..=cfg.max_induction {
        let mut g = Aig::new();
        let mut env = DesignTraceEnv::new(&expander).with_free_initial_state();
        for (n, w, v) in consts {
            env.bind_const(n.clone(), *w, *v);
        }
        let total = k + horizon;
        let mut assumptions = Vec::new();
        let mut solver = Solver::new();
        let mut em = CnfEmitter::new();
        for i in 0..k {
            let holds = encode_assertion_at(&mut g, assertion, i, total, &mut env)?;
            assumptions.push(holds);
        }
        let target = encode_assertion_at(&mut g, assertion, k, total, &mut env)?;
        let mut lits = Vec::new();
        for h in assumptions {
            lits.push(em.emit(&g, h, &mut solver));
        }
        lits.push(em.emit(&g, !target, &mut solver));
        if solver.solve_with(&lits).is_unsat() {
            // Base case: BMC above covered anchors 0..max_bmc >= k.
            if k <= cfg.max_bmc {
                return Ok(ProveResult::Proven { k });
            }
        }
    }
    Ok(ProveResult::Undetermined)
}

/// Checks whether a proven implication is *vacuous*: its antecedent can
/// never fire on any reachable trace within the BMC bound.
///
/// Commercial tools flag vacuously-proven assertions separately; the
/// Design2SVA metric counts them as proven (as the paper does), but this
/// extension lets a harness report them, e.g. to filter trivial model
/// outputs.
///
/// Returns `Ok(None)` for non-implication properties (no antecedent to
/// test), `Ok(Some(true))` when the antecedent cannot fire within the
/// bound, and `Ok(Some(false))` when a firing trace exists.
///
/// # Errors
///
/// [`EncodeError`] as for [`prove`].
pub fn check_vacuity(
    netlist: &Netlist,
    assertion: &Assertion,
    consts: &[(String, u32, u128)],
    cfg: ProveConfig,
) -> Result<Option<bool>, EncodeError> {
    use crate::monitor::encode_seq;
    let ante = match &assertion.body {
        sv_ast::PropExpr::Implication { ante, .. } => ante.clone(),
        _ => return Ok(None),
    };
    let expander = FrameExpander::new(netlist)
        .map_err(|n| EncodeError::Unsupported(format!("combinational cycle through '{n}'")))?;
    let horizon = horizon_for(assertion, None, cfg.slack);
    let mut g = Aig::new();
    let mut env = DesignTraceEnv::new(&expander);
    for (n, w, v) in consts {
        env.bind_const(n.clone(), *w, *v);
    }
    let mut solver = Solver::new();
    let mut em = CnfEmitter::new();
    for t in 0..cfg.max_bmc {
        let total = t + horizon;
        let enc = encode_seq(&mut g, &ante, t, total, &mut env)?;
        let fires = enc.any_match(&mut g);
        let l = em.emit(&g, fires, &mut solver);
        if solver.solve_with(&[l]).is_sat() {
            return Ok(Some(false));
        }
    }
    Ok(Some(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_parser::{parse_assertion_str, parse_source};
    use sv_synth::elaborate;

    fn counter() -> Netlist {
        let src = "module m (clk, reset_, en, q, wrapped);\n\
            input clk; input reset_; input en;\n\
            output [1:0] q; output wrapped;\n\
            reg [1:0] cnt;\n\
            always @(posedge clk) begin\n\
            if (!reset_) cnt <= 2'd0;\n\
            else if (en) cnt <= cnt + 2'd1;\nend\n\
            assign q = cnt;\n\
            assign wrapped = (cnt == 2'd3);\nendmodule\n";
        let f = parse_source(src).unwrap();
        elaborate(&f, "m").unwrap()
    }

    fn prove_str(nl: &Netlist, a: &str) -> ProveResult {
        let a = parse_assertion_str(a).unwrap();
        prove(nl, &a, &[], ProveConfig::default()).unwrap()
    }

    #[test]
    fn tautology_is_proven() {
        let nl = counter();
        let r = prove_str(&nl, "assert property (@(posedge clk) en || !en);");
        assert!(r.is_proven());
    }

    #[test]
    fn true_invariant_is_proven() {
        // Counter increments by exactly one when enabled.
        let nl = counter();
        let r = prove_str(
            &nl,
            "assert property (@(posedge clk) (en && q == 2'd1) |-> ##1 q == 2'd2);",
        );
        assert!(r.is_proven(), "got {r:?}");
    }

    #[test]
    fn hold_behaviour_is_proven() {
        let nl = counter();
        let r = prove_str(
            &nl,
            "assert property (@(posedge clk) (!en && q == 2'd2) |-> ##1 q == 2'd2);",
        );
        assert!(r.is_proven(), "got {r:?}");
    }

    #[test]
    fn false_property_is_falsified_with_cex() {
        let nl = counter();
        let r = prove_str(&nl, "assert property (@(posedge clk) q != 2'd3);");
        match r {
            ProveResult::Falsified { cex } => {
                assert!(!cex.inputs.is_empty());
            }
            other => panic!("expected falsified, got {other:?}"),
        }
    }

    #[test]
    fn wrong_transition_is_falsified() {
        let nl = counter();
        let r = prove_str(
            &nl,
            "assert property (@(posedge clk) (en && q == 2'd1) |-> ##1 q == 2'd3);",
        );
        assert!(matches!(r, ProveResult::Falsified { .. }), "got {r:?}");
    }

    #[test]
    fn unknown_signal_is_error() {
        let nl = counter();
        let a = parse_assertion_str("assert property (@(posedge clk) hidden == 1'b0);").unwrap();
        assert!(matches!(
            prove(&nl, &a, &[], ProveConfig::default()),
            Err(EncodeError::UnknownSignal(_))
        ));
    }

    #[test]
    fn unbounded_property_is_undetermined() {
        let nl = counter();
        let r = prove_str(
            &nl,
            "assert property (@(posedge clk) en |-> strong(##[0:$] wrapped));",
        );
        assert_eq!(r, ProveResult::Undetermined);
    }

    #[test]
    fn consts_bind_state_names() {
        let nl = counter();
        let a = parse_assertion_str(
            "assert property (@(posedge clk) (en && q == SONE) |-> ##1 q == STWO);",
        )
        .unwrap();
        let consts = vec![("SONE".to_string(), 2, 1u128), ("STWO".to_string(), 2, 2)];
        let r = prove(&nl, &a, &consts, ProveConfig::default()).unwrap();
        assert!(r.is_proven(), "got {r:?}");
    }

    #[test]
    fn vacuity_detection() {
        let nl = counter();
        // Antecedent `q == 1 && q == 2` can never fire: vacuously proven.
        let vac = parse_assertion_str(
            "assert property (@(posedge clk) (q == 2'd1 && q == 2'd2) |-> ##1 en);",
        )
        .unwrap();
        let r = prove(&nl, &vac, &[], ProveConfig::default()).unwrap();
        assert!(r.is_proven(), "vacuous truths are proven: {r:?}");
        assert_eq!(
            check_vacuity(&nl, &vac, &[], ProveConfig::default()).unwrap(),
            Some(true)
        );
        // A real antecedent fires.
        let live = parse_assertion_str(
            "assert property (@(posedge clk) (en && q == 2'd1) |-> ##1 q == 2'd2);",
        )
        .unwrap();
        assert_eq!(
            check_vacuity(&nl, &live, &[], ProveConfig::default()).unwrap(),
            Some(false)
        );
        // Non-implications have no vacuity notion.
        let plain = parse_assertion_str("assert property (@(posedge clk) en || !en);").unwrap();
        assert_eq!(
            check_vacuity(&nl, &plain, &[], ProveConfig::default()).unwrap(),
            None
        );
    }

    #[test]
    fn reset_state_respected_by_bmc() {
        // At cycle 0 the counter is 0: q == 0 initially can only be
        // violated after stepping, so `q == 0 at anchor 0` means BMC
        // must find the violation at a later anchor.
        let nl = counter();
        let r = prove_str(&nl, "assert property (@(posedge clk) q == 2'd0);");
        match r {
            ProveResult::Falsified { cex } => assert!(cex.anchor >= 1),
            other => panic!("expected falsified, got {other:?}"),
        }
    }
}
