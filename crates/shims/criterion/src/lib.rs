//! Offline, dependency-free subset of the `criterion` benchmark API.
//!
//! The build environment has no registry access, so this workspace
//! ships a minimal harness with the same surface the benches use:
//! benchmark groups, `sample_size`/`measurement_time`, `bench_function`
//! / `bench_with_input`, [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark is run `sample_size` times
//! (bounded by the group's measurement-time budget) and the mean,
//! minimum, and maximum wall-clock per iteration are printed in a
//! stable one-line format.

use std::fmt;
use std::time::{Duration, Instant};

/// A parameterized benchmark identifier (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Names acceptable to `bench_function` (a `&str` or a [`BenchmarkId`]).
pub trait IntoBenchmarkName {
    /// Rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

/// Timing callback handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, once per sample, until the sample count or the
    /// group's measurement-time budget is reached (always at least one
    /// sample). In `--test` mode (mirroring criterion), the routine
    /// runs exactly once with no warm-up: a compile-and-run smoke, not
    /// a measurement.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            return;
        }
        // One untimed warm-up to populate caches and lazy statics.
        std::hint::black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into_name());
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            budget: self.measurement_time,
            test_mode: self.criterion.test_mode,
        };
        f(&mut b);
        report(&full, &b.samples);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<N, I, F>(&mut self, name: N, input: &I, mut f: F) -> &mut Self
    where
        N: IntoBenchmarkName,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(name, |b| f(b, input))
    }

    /// Ends the group (separator line, mirrors criterion's API).
    pub fn finish(&mut self) {
        println!();
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<52} <no samples>");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<52} time: [{} {} {}]  ({} samples)",
        fmt_dur(min),
        fmt_dur(mean),
        fmt_dur(max),
        samples.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The benchmark manager: holds the optional name filter and the
/// `--test` smoke-mode flag taken from the command line
/// (`cargo bench -- <filter> [--test]`).
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo passes `--bench`; anything that is not a flag or a
        // flag value is treated as a substring filter.
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--exact" | "--nocapture" | "-q" | "--quiet" => {}
                "--save-baseline" | "--baseline" | "--measurement-time" | "--sample-size" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Runs one ungrouped benchmark with default settings.
    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        f: F,
    ) -> &mut Self {
        let mut g = BenchmarkGroup {
            criterion: self,
            name: "bench".into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        };
        g.bench_function(name, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from one or more group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
        };
        let mut g = c.benchmark_group("shim");
        let mut runs = 0u32;
        g.sample_size(3)
            .measurement_time(Duration::from_millis(200))
            .bench_function("counting", |b| b.iter(|| runs += 1));
        g.finish();
        // warm-up + up to 3 samples
        assert!((2..=4).contains(&runs), "{runs}");
    }

    #[test]
    fn test_mode_runs_exactly_once() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut g = c.benchmark_group("shim");
        let mut runs = 0u32;
        g.sample_size(50)
            .bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "--test smoke mode skips warm-up and sampling");
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion {
            filter: Some("only_this".into()),
            test_mode: false,
        };
        let mut g = c.benchmark_group("shim");
        let mut runs = 0u32;
        g.bench_function("skipped", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
