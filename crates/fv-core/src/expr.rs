//! Compilation of assertion-level boolean expressions into AIG
//! bit-vectors over a trace environment.
//!
//! This mirrors the RTL elaborator's width rules (unsigned, max-width
//! binary operands, self-determined shift amounts) and adds the
//! sampled-value functions (`$past`, `$rose`, `$fell`, `$stable`,
//! `$changed`) by recursing at `cycle - 1`.

use crate::env::TraceEnv;
use crate::error::EncodeError;
use fv_aig::{Aig, AigLit, BitVec};
use sv_ast::{BinaryOp, Expr, Literal, SysFunc, UnaryOp};

type Result<T> = std::result::Result<T, EncodeError>;

/// Compiles `e` at `cycle` into a bit-vector.
///
/// # Errors
///
/// Returns [`EncodeError`] for unknown signals or unsupported
/// constructs (the tool-elaboration-failure verdict).
pub fn compile_expr(g: &mut Aig, e: &Expr, cycle: i32, env: &mut dyn TraceEnv) -> Result<BitVec> {
    compile(g, e, cycle, env, None)
}

/// Compiles `e` at `cycle` to its 1-bit truthiness.
pub(crate) fn compile_bool(
    g: &mut Aig,
    e: &Expr,
    cycle: i32,
    env: &mut dyn TraceEnv,
) -> Result<AigLit> {
    let v = compile(g, e, cycle, env, None)?;
    Ok(v.reduce_or(g))
}

fn unsized_width(value: u128) -> u32 {
    let needed = 128 - value.leading_zeros();
    needed.clamp(32, 128)
}

fn compile(
    g: &mut Aig,
    e: &Expr,
    cycle: i32,
    env: &mut dyn TraceEnv,
    ctx: Option<u32>,
) -> Result<BitVec> {
    Ok(match e {
        Expr::Ident(name) => {
            if let Some((w, v)) = env.constant(name) {
                BitVec::constant(w as usize, v)
            } else {
                env.read(g, name, cycle)?
            }
        }
        Expr::Literal(Literal::Int { width, value, .. }) => {
            let w = width.unwrap_or_else(|| unsized_width(*value));
            BitVec::constant(w as usize, *value)
        }
        Expr::Literal(Literal::Fill(b)) => {
            let w = ctx.ok_or_else(|| {
                EncodeError::Unsupported("'0/'1 fill literal needs a width context".into())
            })?;
            BitVec::constant(w as usize, if *b { u128::MAX } else { 0 })
        }
        Expr::Unary(op, inner) => {
            let v = compile(g, inner, cycle, env, None)?;
            match op {
                UnaryOp::LogNot => BitVec::from_lit(!v.reduce_or(g)),
                UnaryOp::BitNot => v.not(),
                UnaryOp::Neg => v.neg(g),
                UnaryOp::Pos => v,
                UnaryOp::RedAnd => BitVec::from_lit(v.reduce_and(g)),
                UnaryOp::RedOr => BitVec::from_lit(v.reduce_or(g)),
                UnaryOp::RedXor => BitVec::from_lit(v.reduce_xor(g)),
                UnaryOp::RedNand => BitVec::from_lit(!v.reduce_and(g)),
                UnaryOp::RedNor => BitVec::from_lit(!v.reduce_or(g)),
                UnaryOp::RedXnor => BitVec::from_lit(!v.reduce_xor(g)),
            }
        }
        Expr::Binary(op, a, b) => compile_binary(g, *op, a, b, cycle, env, ctx)?,
        Expr::Ternary(c, t, f) => {
            let sel = compile_bool(g, c, cycle, env)?;
            let tv = compile(g, t, cycle, env, ctx)?;
            let ev = compile(g, f, cycle, env, ctx)?;
            let w = tv.width().max(ev.width());
            let tv = tv.resize(w);
            let ev = ev.resize(w);
            BitVec::mux(g, sel, &tv, &ev)
        }
        Expr::Concat(parts) => {
            // Source order is MSB-first.
            let mut bits = Vec::new();
            for p in parts.iter().rev() {
                bits.extend_from_slice(compile(g, p, cycle, env, None)?.bits());
            }
            BitVec::from_bits(bits)
        }
        Expr::Replicate(n, inner) => {
            let count = const_u32(n)?;
            if count == 0 {
                return Err(EncodeError::Unsupported("zero replication".into()));
            }
            let v = compile(g, inner, cycle, env, None)?;
            v.replicate(count as usize)
        }
        Expr::Index(base, idx) => {
            let v = compile(g, base, cycle, env, None)?;
            match const_u32(idx) {
                Ok(i) => {
                    if i as usize >= v.width() {
                        return Err(EncodeError::Unsupported(format!(
                            "bit-select index {i} out of range"
                        )));
                    }
                    v.slice(i as usize, i as usize)
                }
                Err(_) => {
                    // Dynamic bit select: mux chain.
                    let sel = compile(g, idx, cycle, env, None)?;
                    let mut acc = BitVec::constant(1, 0);
                    for i in 0..v.width() {
                        let eq = sel.eq(g, &BitVec::constant(sel.width(), i as u128));
                        let bit = BitVec::from_lit(v.bit(i));
                        acc = BitVec::mux(g, eq, &bit, &acc);
                    }
                    acc
                }
            }
        }
        Expr::Slice(base, hi, lo) => {
            let v = compile(g, base, cycle, env, None)?;
            let hi = const_u32(hi)? as usize;
            let lo = const_u32(lo)? as usize;
            if lo > hi || hi >= v.width() {
                return Err(EncodeError::Unsupported("part-select out of range".into()));
            }
            v.slice(hi, lo)
        }
        Expr::SysCall(f, args) => compile_syscall(g, *f, args, cycle, env)?,
    })
}

#[allow(clippy::too_many_arguments)]
fn compile_binary(
    g: &mut Aig,
    op: BinaryOp,
    a: &Expr,
    b: &Expr,
    cycle: i32,
    env: &mut dyn TraceEnv,
    ctx: Option<u32>,
) -> Result<BitVec> {
    use BinaryOp as B;
    if matches!(op, B::LogAnd | B::LogOr) {
        let x = compile_bool(g, a, cycle, env)?;
        let y = compile_bool(g, b, cycle, env)?;
        let r = if op == B::LogAnd {
            g.and(x, y)
        } else {
            g.or(x, y)
        };
        return Ok(BitVec::from_lit(r));
    }
    if matches!(op, B::Shl | B::Shr | B::AShl | B::AShr) {
        let x = compile(g, a, cycle, env, ctx)?;
        let y = compile(g, b, cycle, env, None)?;
        // `<<<`/`>>>` on unsigned operands are logical shifts.
        return Ok(match op {
            B::Shl | B::AShl => x.shl(g, &y),
            _ => x.lshr(g, &y),
        });
    }
    // Fill literals adopt the opposite operand's width.
    let (x, y) = if matches!(a, Expr::Literal(Literal::Fill(_))) {
        let y = compile(g, b, cycle, env, None)?;
        let w = y.width() as u32;
        (compile(g, a, cycle, env, Some(w))?, y)
    } else if matches!(b, Expr::Literal(Literal::Fill(_))) {
        let x = compile(g, a, cycle, env, None)?;
        let w = x.width() as u32;
        let y = compile(g, b, cycle, env, Some(w))?;
        (x, y)
    } else {
        (
            compile(g, a, cycle, env, None)?,
            compile(g, b, cycle, env, None)?,
        )
    };
    let is_pred = matches!(
        op,
        B::Eq | B::Neq | B::CaseEq | B::CaseNeq | B::Lt | B::Le | B::Gt | B::Ge
    );
    let mut w = x.width().max(y.width());
    if !is_pred {
        w = w.max(ctx.unwrap_or(0) as usize);
    }
    let x = x.resize(w);
    let y = y.resize(w);
    Ok(match op {
        B::Add => x.add(g, &y),
        B::Sub => x.sub(g, &y),
        B::Mul => x.mul(g, &y),
        B::Div => x.udivrem(g, &y).0,
        B::Mod => x.udivrem(g, &y).1,
        B::BitAnd => x.and(g, &y),
        B::BitOr => x.or(g, &y),
        B::BitXor => x.xor(g, &y),
        B::BitXnor => x.xor(g, &y).not(),
        B::Eq | B::CaseEq => BitVec::from_lit(x.eq(g, &y)),
        B::Neq | B::CaseNeq => BitVec::from_lit(x.ne(g, &y)),
        B::Lt => BitVec::from_lit(x.ult(g, &y)),
        B::Le => BitVec::from_lit(x.ule(g, &y)),
        B::Gt => BitVec::from_lit(y.ult(g, &x)),
        B::Ge => BitVec::from_lit(y.ule(g, &x)),
        B::LogAnd | B::LogOr | B::Shl | B::Shr | B::AShl | B::AShr => unreachable!(),
    })
}

fn compile_syscall(
    g: &mut Aig,
    f: SysFunc,
    args: &[Expr],
    cycle: i32,
    env: &mut dyn TraceEnv,
) -> Result<BitVec> {
    let arg = |n: usize| -> Result<&Expr> {
        args.get(n)
            .ok_or_else(|| EncodeError::Unsupported(format!("${} missing argument {n}", f.name())))
    };
    Ok(match f {
        SysFunc::Countones => {
            let v = compile(g, arg(0)?, cycle, env, None)?;
            v.countones(g)
        }
        SysFunc::Onehot => {
            let v = compile(g, arg(0)?, cycle, env, None)?;
            BitVec::from_lit(v.onehot(g))
        }
        SysFunc::Onehot0 => {
            let v = compile(g, arg(0)?, cycle, env, None)?;
            BitVec::from_lit(v.onehot0(g))
        }
        SysFunc::Bits => {
            let v = compile(g, arg(0)?, cycle, env, None)?;
            BitVec::constant(32, v.width() as u128)
        }
        SysFunc::Clog2 => {
            let v = const_u32(arg(0)?)?;
            let c = if v <= 1 {
                0
            } else {
                32 - (v - 1).leading_zeros()
            };
            BitVec::constant(32, u128::from(c))
        }
        SysFunc::Past => {
            let depth = match args.get(1) {
                Some(d) => const_u32(d)? as i32,
                None => 1,
            };
            compile(g, arg(0)?, cycle - depth, env, None)?
        }
        SysFunc::Rose => {
            let now = compile(g, arg(0)?, cycle, env, None)?;
            let prev = compile(g, arg(0)?, cycle - 1, env, None)?;
            // $rose samples the LSB.
            BitVec::from_lit(g.and(now.bit(0), !prev.bit(0)))
        }
        SysFunc::Fell => {
            let now = compile(g, arg(0)?, cycle, env, None)?;
            let prev = compile(g, arg(0)?, cycle - 1, env, None)?;
            BitVec::from_lit(g.and(!now.bit(0), prev.bit(0)))
        }
        SysFunc::Stable => {
            let now = compile(g, arg(0)?, cycle, env, None)?;
            let prev = compile(g, arg(0)?, cycle - 1, env, None)?;
            BitVec::from_lit(now.eq(g, &prev))
        }
        SysFunc::Changed => {
            let now = compile(g, arg(0)?, cycle, env, None)?;
            let prev = compile(g, arg(0)?, cycle - 1, env, None)?;
            BitVec::from_lit(now.ne(g, &prev))
        }
    })
}

/// Evaluates a constant expression (indices, repeat counts).
fn const_u32(e: &Expr) -> Result<u32> {
    fn eval(e: &Expr) -> Option<u128> {
        match e {
            Expr::Literal(Literal::Int { value, .. }) => Some(*value),
            Expr::Binary(op, a, b) => {
                let (x, y) = (eval(a)?, eval(b)?);
                Some(match op {
                    BinaryOp::Add => x.wrapping_add(y),
                    BinaryOp::Sub => x.wrapping_sub(y),
                    BinaryOp::Mul => x.wrapping_mul(y),
                    _ => return None,
                })
            }
            _ => None,
        }
    }
    eval(e)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| EncodeError::Unsupported("expected a constant expression".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::FreeTraceEnv;
    use crate::table::SignalTable;
    use fv_aig::CnfEmitter;
    use fv_sat::Solver;
    use sv_parser::parse_expr_str;

    fn prove_taut(src: &str, table: &SignalTable) {
        // The expression must be true for all signal values.
        let e = parse_expr_str(src).unwrap();
        let mut g = Aig::new();
        let mut env = FreeTraceEnv::new(table);
        let lit = compile_bool(&mut g, &e, 0, &mut env).unwrap();
        let mut s = Solver::new();
        let mut em = CnfEmitter::new();
        let l = em.emit(&g, !lit, &mut s);
        assert!(s.solve_with(&[l]).is_unsat(), "not a tautology: {src}");
    }

    fn table() -> SignalTable {
        [("a", 1u32), ("b", 1), ("x", 4), ("y", 4)]
            .into_iter()
            .collect()
    }

    #[test]
    fn boolean_tautologies() {
        let t = table();
        prove_taut("a || !a", &t);
        prove_taut("!(a && b) == (!a || !b)", &t);
        prove_taut("(x == y) || (x != y)", &t);
        prove_taut("(x < y) || (x >= y)", &t);
    }

    #[test]
    fn countones_parity_equals_reduction_xor() {
        // ^x === ($countones(x) % 2 == 1) — the paper's Figure 8 rewrite.
        prove_taut("(^x) == ($countones(x) % 2 == 1)", &table());
    }

    #[test]
    fn onehot0_definition() {
        prove_taut("$onehot0(x) == ($countones(x) <= 1)", &table());
    }

    #[test]
    fn fill_literal_width_adopts() {
        prove_taut("(x == '1) == (&x)", &table());
        prove_taut("(x == '0) == (~|x)", &table());
    }

    #[test]
    fn case_equality_is_two_state() {
        prove_taut("(x === y) == (x == y)", &table());
        prove_taut("(x !== y) == (x != y)", &table());
    }

    #[test]
    fn rose_is_edge() {
        // $rose(a) -> a (at the current cycle).
        prove_taut("!$rose(a) || a", &table());
    }

    #[test]
    fn past_differs_from_present() {
        // $past(a) == a is NOT a tautology: must be satisfiable to violate.
        let e = parse_expr_str("$past(a) != a").unwrap();
        let t = table();
        let mut g = Aig::new();
        let mut env = FreeTraceEnv::new(&t);
        let lit = compile_bool(&mut g, &e, 0, &mut env).unwrap();
        let mut s = Solver::new();
        let mut em = CnfEmitter::new();
        let l = em.emit(&g, lit, &mut s);
        assert!(s.solve_with(&[l]).is_sat());
    }

    #[test]
    fn unknown_signal_errors() {
        let e = parse_expr_str("ghost && a").unwrap();
        let t = table();
        let mut g = Aig::new();
        let mut env = FreeTraceEnv::new(&t);
        assert_eq!(
            compile_bool(&mut g, &e, 0, &mut env),
            Err(EncodeError::UnknownSignal("ghost".into()))
        );
    }

    #[test]
    fn concat_and_slice() {
        prove_taut("{x, y}[7:4] == x", &table());
        prove_taut("{x, y}[3:0] == y", &table());
        prove_taut("{2{a}} == {a, a}", &table());
    }

    #[test]
    fn shifts_and_arith() {
        prove_taut("(x << 1) == (x + x)", &table());
        prove_taut("(x >> 4) == 4'd0", &table());
        prove_taut("(x <<< 1) == (x << 1)", &table());
    }
}
