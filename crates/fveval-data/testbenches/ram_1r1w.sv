// NL2SVA-Human collateral: 4-entry 1R1W RAM with collision detect.
//
// Entries are exposed as individual nets (mem0..mem3) so the
// dataset's assertions can reference them directly; mem_rd_value is
// the combinational read-port model.
module ram_1r1w_tb (
    input clk,
    input reset_,
    input wr_en,
    input [1:0] wr_addr,
    input [3:0] wr_data,
    input rd_en,
    input [1:0] rd_addr,
    input [3:0] rd_data
);
  parameter N_ENTRIES = 4;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  reg [3:0] mem0;
  reg [3:0] mem1;
  reg [3:0] mem2;
  reg [3:0] mem3;

  wire [3:0] mem_rd_value;
  assign mem_rd_value = (rd_addr == 2'd0) ? mem0
                      : (rd_addr == 2'd1) ? mem1
                      : (rd_addr == 2'd2) ? mem2
                      : mem3;

  wire collision;
  assign collision = wr_en && rd_en && (wr_addr == rd_addr);

  always_ff @(posedge clk or negedge reset_) begin
    if (!reset_) begin
      mem0 <= 4'd0;
      mem1 <= 4'd0;
      mem2 <= 4'd0;
      mem3 <= 4'd0;
    end else begin
      if (wr_en) begin
        if (wr_addr == 2'd0) mem0 <= wr_data;
        if (wr_addr == 2'd1) mem1 <= wr_data;
        if (wr_addr == 2'd2) mem2 <= wr_data;
        if (wr_addr == 2'd3) mem3 <= wr_data;
      end
    end
  end
endmodule
