//! Golden-verdict soundness for every registered family: the prover
//! must agree with every candidate's construction-time verdict, and
//! every counterexample must replay on the reference simulator.

use fveval_gen::{
    generate_suite, generator, generators, validate_scenario, GenParams, ProveConfig, SuiteConfig,
};

#[test]
fn every_family_registers_and_reports() {
    let gens = generators();
    assert!(gens.len() >= 12, "at least twelve scenario families");
    let mut names: Vec<&str> = gens.iter().map(|g| g.family()).collect();
    let n = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), n, "family names are unique");
    for g in &gens {
        assert!(!g.summary().is_empty());
    }
}

#[test]
fn default_params_scenarios_are_fully_confirmed() {
    for gen in generators() {
        let scenario = gen.generate(&GenParams::default());
        assert!(
            scenario.provable().count() >= 2,
            "{}: at least two provable candidates",
            scenario.id
        );
        assert!(
            scenario.falsifiable().count() >= 1,
            "{}: at least one falsifiable candidate",
            scenario.id
        );
        let report =
            validate_scenario(&scenario, ProveConfig::default()).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.is_clean(), "{}: {:?}", scenario.id, report.problems);
        assert_eq!(report.confirmed as usize, scenario.candidates.len());
    }
}

#[test]
fn parameter_extremes_stay_sound() {
    for gen in generators() {
        for (depth, width) in [(1u32, 2u32), (12, 32), (3, 16)] {
            let scenario = gen.generate(&GenParams {
                depth,
                width,
                seed: 0xD00D,
            });
            let report = validate_scenario(&scenario, ProveConfig::default())
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(
                report.is_clean(),
                "{} (depth {depth}, width {width}): {:?}",
                scenario.id,
                report.problems
            );
        }
    }
}

#[test]
fn generation_is_deterministic_and_ids_unique() {
    let cfg = SuiteConfig {
        per_family: 3,
        seed: 41,
        ..Default::default()
    };
    let a = generate_suite(&cfg);
    let b = generate_suite(&cfg);
    assert_eq!(a, b, "byte-identical under a fixed seed");
    let mut ids: Vec<&str> = a.scenarios.iter().map(|s| s.id.as_str()).collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "unique scenario ids");
    let default_families = generators().iter().filter(|g| g.in_default_suite()).count();
    assert_eq!(n, 3 * default_families);
}

#[test]
fn opt_in_families_stay_out_of_default_suites_but_generate_when_named() {
    let default_suite = generate_suite(&SuiteConfig::default());
    assert!(
        !default_suite
            .scenarios
            .iter()
            .any(|s| s.family == "deepcnt"),
        "deepcnt is opt-in: its headline verdict needs the PDR engine"
    );
    let named = generate_suite(&SuiteConfig {
        families: vec!["deepcnt".into()],
        per_family: 2,
        seed: 11,
        ..Default::default()
    });
    assert_eq!(named.scenarios.len(), 2);
    assert!(named.scenarios.iter().all(|s| s.family == "deepcnt"));
}

#[test]
fn internal_signals_are_out_of_scope() {
    for gen in generators() {
        let scenario = gen.generate(&GenParams::default());
        let bound = fveval_gen::bind_scenario(&scenario).unwrap();
        assert!(
            bound.table.width(&scenario.internal_signal).is_none(),
            "{}: '{}' must not be testbench-visible",
            scenario.id,
            scenario.internal_signal
        );
        // And every candidate's signals *are* in scope (they proved or
        // falsified above; here we just sanity-check the scope table
        // carries the interface nets).
        assert!(bound.table.width("tb_reset").is_some());
    }
}

#[test]
fn empty_candidate_pools_are_reported() {
    // A family that emits only one kind of verdict violates the
    // authoring contract even if every present verdict confirms:
    // downstream response pools index both kinds unconditionally.
    let gens = generators();
    let mut scenario = gens[0].generate(&GenParams::default());
    scenario.candidates.retain(|c| c.verdict.is_provable());
    let report = validate_scenario(&scenario, ProveConfig::default()).unwrap();
    assert!(!report.is_clean());
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("no falsifiable candidate")),
        "{:?}",
        report.problems
    );
}

#[test]
fn suite_writes_to_disk() {
    let dir = std::env::temp_dir().join(format!("fveval_gen_test_{}", std::process::id()));
    let suite = generate_suite(&SuiteConfig {
        families: vec!["fifo".into()],
        per_family: 2,
        seed: 9,
        ..Default::default()
    });
    let files = fveval_gen::write_suite(&dir, &suite).unwrap();
    assert_eq!(files, 2 * 2 + 2, "two files per scenario plus manifests");
    let manifest = std::fs::read_to_string(dir.join("manifest.csv")).unwrap();
    assert_eq!(manifest.lines().count(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn new_family_scenarios_carry_their_signature_properties() {
    // The five scenario families added with the mutation layer, each
    // with a qualitatively different proof structure. Beyond the
    // generic loops above, pin each family's signature candidate and
    // structural trait so a refactor cannot quietly hollow one out.
    let cases = [
        (
            "regfile",
            "forward_wins",
            "assign rd_data = fwd ? wr_data : raw;",
        ),
        ("pipeline", "stall_freezes", "if (!stall) begin"),
        ("axi", "resp_held_until_taken", "assign req_rdy = !busy;"),
        ("hier", "lockstep", "gen_hier_cell cell1"),
        ("ring", "one_hot_token", "assign pos = tok;"),
    ];
    for (family, signature, structural) in cases {
        let gen = generator(family).unwrap_or_else(|| panic!("{family} registered"));
        assert!(gen.in_default_suite(), "{family} belongs to default suites");
        let scenario = gen.generate(&GenParams::default());
        assert!(
            scenario.candidates.iter().any(|c| c.name == signature),
            "{family} carries its signature candidate {signature}"
        );
        assert!(
            scenario.design_source.contains(structural),
            "{family} design keeps its structural trait: {structural}"
        );
        let report =
            validate_scenario(&scenario, ProveConfig::default()).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.is_clean(), "{family}: {:?}", report.problems);
    }
}

#[test]
fn hierarchy_scenarios_inline_their_instances() {
    // The hier family is the only one whose design source holds two
    // modules; elaboration must inline both counter cells, exposing
    // their registers under hierarchical names while the cross-module
    // outputs stay flat.
    let scenario = generator("hier").unwrap().generate(&GenParams::default());
    let bound = fveval_gen::bind_scenario(&scenario).unwrap();
    for cell in ["cell0", "cell1"] {
        assert!(
            bound
                .netlist
                .net_names()
                .any(|(n, _)| n.contains(&format!("{cell}.cnt"))),
            "{cell}'s counter register is inlined into the flat netlist"
        );
    }
    assert!(
        bound.table.width("total").is_some(),
        "cross-module sum in scope"
    );
    assert!(
        bound.table.width("agree").is_some(),
        "cross-module compare in scope"
    );
}

#[test]
fn nonzero_reset_values_survive_instantiation() {
    // Regression for the elaborator init-extraction fix: the ring's
    // token register resets to one-hot slot 0, and that value must
    // survive the DUT-inside-testbench instantiation (the reset
    // expression reaches the top-level reset through an instance-port
    // alias). Before the fix this init silently collapsed to zero and
    // the one-hot invariant was falsified at cycle 0.
    let scenario = generator("ring").unwrap().generate(&GenParams::default());
    let bound = fveval_gen::bind_scenario(&scenario).unwrap();
    let tok = bound
        .netlist
        .atoms
        .iter()
        .find(|a| a.name.ends_with(".tok"))
        .expect("inlined token register");
    match &tok.kind {
        sv_synth::AtomKind::Reg { init, .. } => {
            assert_eq!(*init, 1, "reset value extracted through the instance alias")
        }
        other => panic!("tok must elaborate to a register, got {other:?}"),
    }
}
