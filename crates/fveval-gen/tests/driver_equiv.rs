//! Driver-vs-sequential elaboration equivalence over the generator
//! corpus: for every scenario family, across seeds and depths, the
//! parallel frontend-agnostic elaboration driver must produce a netlist
//! identical to the classic sequential walk — same structural
//! fingerprint and bit-identical reference-simulation traces. This is
//! the property the `FVEVAL_ELAB=driver` switch relies on.

use fveval_gen::{generators, GenParams};
use sv_ast::{Expr, Instance, ModuleItem, SourceFile};
use sv_parser::parse_source;
use sv_synth::{elaborate_design, elaborate_design_driver, Netlist, Simulator};

/// Builds the engine-shaped collateral for a scenario: one source file
/// (design + testbench) plus the DUT instantiation extra, mirroring
/// `bind_scenario` / `compile_design`.
fn collateral(scenario: &fveval_gen::Scenario) -> (SourceFile, String, ModuleItem) {
    let src = format!("{}\n{}", scenario.design_source, scenario.tb_source);
    let file = parse_source(&src).unwrap_or_else(|e| panic!("{}: {e}", scenario.id));
    let design = file
        .module(&scenario.top)
        .unwrap_or_else(|| panic!("{}: missing design module", scenario.id));
    let conns: Vec<(String, Expr)> = design
        .port_order
        .iter()
        .map(|p| (p.clone(), Expr::ident(p.clone())))
        .collect();
    let dut = ModuleItem::Instance(Instance {
        module: scenario.top.clone(),
        name: "dut".into(),
        params: vec![],
        conns,
    });
    (file, scenario.tb_top.clone(), dut)
}

/// Structural fingerprint: content digest plus everything it hashes,
/// exploded so a divergence names the field that moved.
fn fingerprint(nl: &Netlist) -> impl PartialEq + std::fmt::Debug {
    let mut names: Vec<(String, u32)> = nl
        .net_names()
        .map(|(n, b)| (n.to_string(), b.width))
        .collect();
    names.sort();
    (
        nl.content_digest(),
        nl.atoms.len(),
        names,
        nl.params.clone(),
        nl.clock_name.clone(),
        nl.reset_name.clone(),
        nl.warnings.clone(),
    )
}

/// Runs both netlists through the reference simulator under identical
/// pseudo-random stimuli and compares every net at every cycle.
fn assert_traces_match(id: &str, seq: &Netlist, drv: &Netlist, cycles: u32, seed: u64) {
    let mut sim_a = Simulator::new(seq).unwrap_or_else(|e| panic!("{id}: {e}"));
    let mut sim_b = Simulator::new(drv).unwrap_or_else(|e| panic!("{id}: {e}"));
    sim_a.reset();
    sim_b.reset();
    let names: Vec<String> = seq.net_names().map(|(n, _)| n.to_string()).collect();
    for cycle in 0..cycles {
        // Deterministic per-(name, cycle) stimulus shared by both runs:
        // splitmix64 over an fnv of the input name.
        let stim = move |name: &str, width: u32| -> u128 {
            let mut h = seed ^ u64::from(cycle).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let r = u128::from(z ^ (z >> 31));
            if width >= 128 {
                r
            } else {
                r & ((1u128 << width) - 1)
            }
        };
        sim_a.step(&stim);
        sim_b.step(&stim);
        for name in &names {
            assert_eq!(
                sim_a.read_net(name),
                sim_b.read_net(name),
                "{id}: net '{name}' diverged at cycle {cycle}"
            );
        }
    }
}

#[test]
fn every_family_elaborates_identically_under_the_driver() {
    let gens = generators();
    assert!(gens.len() >= 12, "the full family registry is in scope");
    for gen in &gens {
        for (seed, depth) in [(0xFEED_u64, 2_u32), (7, 4)] {
            let scenario = gen.generate(&GenParams {
                depth,
                width: 8,
                seed,
            });
            let (file, tb_top, dut) = collateral(&scenario);
            let extras = std::slice::from_ref(&dut);
            let seq = elaborate_design(&file, &tb_top, extras)
                .unwrap_or_else(|e| panic!("{}: sequential: {e}", scenario.id));
            let drv = elaborate_design_driver(&file, &tb_top, extras)
                .unwrap_or_else(|e| panic!("{}: driver: {e}", scenario.id));
            assert_eq!(
                fingerprint(seq.netlist()),
                fingerprint(drv.netlist()),
                "{}: netlist fingerprints must match",
                scenario.id
            );
            assert_traces_match(&scenario.id, seq.netlist(), drv.netlist(), 24, seed);
        }
    }
}

#[test]
fn helper_bindings_match_after_driver_elaboration() {
    // The score-many half: helpers spliced via bind_extras on top of a
    // driver-elaborated design must equal the sequential result too.
    let gens = generators();
    let gen = gens
        .iter()
        .find(|g| g.family() == "hier")
        .expect("hier family registered");
    let scenario = gen.generate(&GenParams::default());
    let (file, tb_top, dut) = collateral(&scenario);
    let extras = std::slice::from_ref(&dut);
    let seq = elaborate_design(&file, &tb_top, extras).unwrap();
    let drv = elaborate_design_driver(&file, &tb_top, extras).unwrap();
    let helpers =
        sv_parser::parse_snippet("logic eq_probe;\nassign eq_probe = tb_reset;\n").unwrap();
    let a = seq.bind_extras(&helpers).unwrap();
    let b = drv.bind_extras(&helpers).unwrap();
    assert_eq!(a.content_digest(), b.content_digest());
    assert!(b.net("eq_probe").is_some());
}
