//! One Criterion benchmark per paper table/figure: times the full
//! regeneration (dataset assembly, simulated-model inference, formal
//! scoring, table rendering) at reduced-but-representative scale.
//!
//! `cargo bench -p fveval-bench --bench tables` reports wall-clock per
//! experiment; `fveval <tableN> --full` regenerates the paper-scale
//! numbers themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use fveval_core::EvalEngine;
use fveval_harness::HarnessOptions;
use std::hint::black_box;
use std::time::Duration;

fn quick() -> HarnessOptions {
    HarnessOptions {
        full: false,
        seed: 0xBE7C,
    }
}

// A fresh engine per iteration so the verdict cache never skews the
// numbers; use the `engine` bench to measure caching itself.
fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10).measurement_time(Duration::from_secs(8));

    g.bench_function("table1_nl2sva_human", |b| {
        b.iter(|| black_box(fveval_harness::table1(&EvalEngine::new(), &quick())))
    });
    g.bench_function("table2_passk_human", |b| {
        b.iter(|| black_box(fveval_harness::table2(&EvalEngine::new(), &quick())))
    });
    g.bench_function("table3_nl2sva_machine", |b| {
        b.iter(|| black_box(fveval_harness::table3(&EvalEngine::new(), &quick())))
    });
    g.bench_function("table4_passk_machine", |b| {
        b.iter(|| black_box(fveval_harness::table4(&EvalEngine::new(), &quick())))
    });
    g.bench_function("table5_design2sva", |b| {
        b.iter(|| black_box(fveval_harness::table5(&EvalEngine::new(), &quick())))
    });
    g.bench_function("table6_composition", |b| {
        b.iter(|| black_box(fveval_harness::table6()))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10).measurement_time(Duration::from_secs(8));

    g.bench_function("figure2_human_lengths", |b| {
        b.iter(|| black_box(fveval_harness::figure2()))
    });
    g.bench_function("figure3_machine_lengths", |b| {
        b.iter(|| black_box(fveval_harness::figure3(&quick())))
    });
    g.bench_function("figure4_design_lengths", |b| {
        b.iter(|| black_box(fveval_harness::figure4(&quick())))
    });
    g.bench_function("figure6_bleu_correlation", |b| {
        b.iter(|| black_box(fveval_harness::figure6(&EvalEngine::new(), &quick())))
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
