//! The built-in scenario families (twelve: seven from the original
//! seed plus the register-file, pipeline, AXI-lite, hierarchy, and
//! token-ring families).
//!
//! Every generator follows the same recipe: build concrete
//! SystemVerilog for a small parameterized design whose interesting
//! invariants are *provable by construction* under the repository
//! prover's default bounds (BMC 12, k-induction 6), derive the formal
//! testbench from the design's port list, and emit candidate
//! assertions in provable/falsifiable pairs with NL descriptions.
//!
//! Two property shapes keep golden verdicts robust (see
//! `docs/TASK_AUTHORING.md` for the full contract):
//!
//! - **combinational invariants** over output nets (mutual exclusion,
//!   definitional consistency) — decided during AIG construction or by
//!   a k=0/1 induction step from *any* state, reachable or not;
//! - **bounded-delay implications** through always-enabled register
//!   chains (`x |-> ##D y` with `D <= 6`) — the same shape as the
//!   shipped pipeline goldens, closed by shallow k-induction.
//!
//! Guarded-counter designs use `>=` saturation comparisons
//! (`full = count >= DEPTH`) so *unreachable* register states still
//! behave consistently — a plain `==` encoding breaks the induction
//! step when the free initial state lies outside the reachable range.
//!
//! The one deliberate exception is the `deepcnt` family, whose wrap
//! comparison is a plain `==` **on purpose**: its headline invariant is
//! true but not k-inductive for *any* k, so it needs a
//! reachability-aware engine (the portfolio's IC3/PDR) to close. It is
//! therefore registered but excluded from default suites — see
//! [`ScenarioGenerator::in_default_suite`].

use crate::{Candidate, GenParams, GoldenVerdict, Scenario, ScenarioGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All registered families, in stable registry order.
pub fn generators() -> Vec<Box<dyn ScenarioGenerator>> {
    vec![
        Box::new(FifoGen),
        Box::new(ArbiterGen),
        Box::new(HandshakeGen),
        Box::new(GrayGen),
        Box::new(ShiftGen),
        Box::new(CrcGen),
        Box::new(DeepCntGen),
        Box::new(RegfileGen),
        Box::new(PipelineGen),
        Box::new(AxiGen),
        Box::new(HierGen),
        Box::new(RingGen),
    ]
}

/// Looks up one family by registry key.
pub fn generator(family: &str) -> Option<Box<dyn ScenarioGenerator>> {
    generators().into_iter().find(|g| g.family() == family)
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

/// Bits needed to hold `v` (at least 1).
fn bits_for(v: u32) -> u32 {
    (32 - v.leading_zeros()).max(1)
}

/// Sized decimal literal, `3'd4`.
fn lit(width: u32, value: u128) -> String {
    format!("{width}'d{value}")
}

/// Picks one phrasing variant deterministically.
fn vary<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

/// A design port as `(name, width, is_output)`; the testbench declares
/// every port — inputs and outputs alike — as a free input, per the
/// Design2SVA collateral contract.
type Port = (&'static str, u32, bool);

fn port_decl((name, width, is_output): &Port, as_input: bool) -> String {
    let dir = if *is_output && !as_input {
        "output"
    } else {
        "input"
    };
    if *width > 1 {
        format!("    {dir} [{}:0] {name}", width - 1)
    } else {
        format!("    {dir} {name}")
    }
}

/// Renders the module header (`module name ( ports );`).
fn header(name: &str, ports: &[Port], as_inputs: bool) -> String {
    let decls: Vec<String> = ports.iter().map(|p| port_decl(p, as_inputs)).collect();
    format!("module {name} (\n{}\n);\n", decls.join(",\n"))
}

/// The formal testbench for a design: every design port re-declared as
/// a free input, plus the derived `tb_reset`.
fn testbench_for(top: &str, ports: &[Port]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "// Generated formal testbench for {top}: all design ports are\n\
         // free inputs; the model checker explores every stimulus.\n"
    ));
    out.push_str(&header(&format!("{top}_tb"), ports, true));
    out.push_str("  wire tb_reset;\n  assign tb_reset = (reset_ == 1'b0);\nendmodule\n");
    out
}

/// Wraps a property body in the benchmark's canonical assertion shell.
fn asrt(body: &str) -> String {
    format!("asrt: assert property (@(posedge clk) disable iff (tb_reset) {body});")
}

fn scenario_id(family: &str, params: &GenParams) -> String {
    format!(
        "gen_{family}_d{}_w{}_{:x}",
        params.depth, params.width, params.seed
    )
}

fn provable(name: &str, sva: String, nl: String) -> Candidate {
    Candidate {
        name: name.into(),
        sva,
        nl,
        verdict: GoldenVerdict::Provable,
        mutation: None,
    }
}

fn falsifiable(name: &str, sva: String, nl: String) -> Candidate {
    Candidate {
        name: name.into(),
        sva,
        nl,
        verdict: GoldenVerdict::Falsifiable,
        mutation: None,
    }
}

// ---------------------------------------------------------------------
// Family 1: parameterized FIFO (occupancy model)
// ---------------------------------------------------------------------

struct FifoGen;

impl ScenarioGenerator for FifoGen {
    fn family(&self) -> &'static str {
        "fifo"
    }

    fn summary(&self) -> &'static str {
        "guarded-occupancy FIFO; depth = capacity (1..=12), width = data width (2..=32)"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let depth = params.depth.clamp(1, 12);
        let width = params.width.clamp(2, 32);
        let params = GenParams {
            depth,
            width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xF1F0);
        let cw = bits_for(depth);
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("wr_vld", 1, false),
            ("rd_vld", 1, false),
            ("wr_data", width, false),
            ("fifo_full", 1, true),
            ("fifo_empty", 1, true),
            ("fifo_count", cw, true),
        ];
        let full = format!("(count >= {})", lit(cw, depth.into()));
        let mut design = String::from(
            "// Generated scenario: occupancy-model FIFO. Push and pop are\n\
             // guarded internally, so over/underflow cannot corrupt the count.\n",
        );
        design.push_str(&header("gen_fifo", &ports, false));
        design.push_str(&format!(
            "  reg [{msb}:0] count;\n\
             \x20 wire do_push;\n\
             \x20 wire do_pop;\n\
             \x20 assign fifo_full = {full};\n\
             \x20 assign fifo_empty = (count == {zero});\n\
             \x20 assign fifo_count = count;\n\
             \x20 assign do_push = wr_vld && !fifo_full;\n\
             \x20 assign do_pop = rd_vld && !fifo_empty;\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n\
             \x20     count <= {zero};\n\
             \x20   end else begin\n\
             \x20     if (do_push && !do_pop) count <= count + {one};\n\
             \x20     if (!do_push && do_pop) count <= count - {one};\n\
             \x20   end\n\
             \x20 end\n\
             endmodule\n",
            msb = cw - 1,
            zero = lit(cw, 0),
            one = lit(cw, 1),
        ));

        let candidates = vec![
            provable(
                "never_full_and_empty",
                asrt("(fifo_full && fifo_empty) !== 1'b1"),
                format!(
                    "that the FIFO {}. Use the signals 'fifo_full' and 'fifo_empty'.",
                    vary(
                        &mut rng,
                        &[
                            "never reports full and empty at the same time",
                            "is never simultaneously full and empty",
                        ]
                    )
                ),
            ),
            provable(
                "push_leaves_nonempty",
                asrt("(wr_vld && !fifo_full) |-> ##1 !fifo_empty"),
                format!(
                    "that {} the FIFO is not empty on the following cycle. \
                     Use the signals 'wr_vld', 'fifo_full', and 'fifo_empty'.",
                    vary(
                        &mut rng,
                        &[
                            "after a push is accepted while the FIFO is not full,",
                            "whenever a write request arrives and the FIFO has room,",
                        ]
                    )
                ),
            ),
            provable(
                "drain_last_empties",
                asrt(&format!(
                    "(rd_vld && !wr_vld && (fifo_count == {})) |-> ##1 fifo_empty",
                    lit(cw, 1)
                )),
                "that popping the last entry with no concurrent push empties the FIFO \
                 on the next cycle. Use the signals 'rd_vld', 'wr_vld', 'fifo_count', \
                 and 'fifo_empty'."
                    .into(),
            ),
            falsifiable(
                "pop_always_empties",
                asrt("rd_vld |-> ##1 fifo_empty"),
                "that any read request leaves the FIFO empty on the next cycle. \
                 Use the signals 'rd_vld' and 'fifo_empty'."
                    .into(),
            ),
            falsifiable(
                "always_empty",
                asrt("fifo_empty"),
                "that the FIFO is empty on every cycle. Use the signal 'fifo_empty'.".into(),
            ),
        ];

        Scenario {
            id: scenario_id("fifo", &params),
            family: "fifo",
            params,
            logic_excerpt: full,
            design_source: design,
            tb_source: testbench_for("gen_fifo", &ports),
            top: "gen_fifo".into(),
            tb_top: "gen_fifo_tb".into(),
            internal_signal: "do_push".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 2: round-robin arbiter
// ---------------------------------------------------------------------

struct ArbiterGen;

impl ScenarioGenerator for ArbiterGen {
    fn family(&self) -> &'static str {
        "arbiter"
    }

    fn summary(&self) -> &'static str {
        "round-robin arbiter; depth = number of requesters (2..=4), width unused"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let n = params.depth.clamp(2, 4);
        let params = GenParams {
            depth: n,
            width: params.width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xA2B1);
        let pw = bits_for(n - 1);
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("req", n, false),
            ("gnt", n, true),
        ];

        // One priority chain per pointer value: scan requesters in
        // round-robin order starting at `start`.
        let chain_from = |start: u32| -> String {
            let mut expr = lit(n, 0);
            for off in (0..n).rev() {
                let i = (start + off) % n;
                expr = format!("(req[{i}] ? {} : {expr})", lit(n, 1 << i));
            }
            expr
        };
        let mut grant_expr = chain_from(n - 1);
        for p in (0..n - 1).rev() {
            grant_expr = format!(
                "(ptr == {}) ? {} : {grant_expr}",
                lit(pw, p.into()),
                chain_from(p)
            );
        }

        let mut design = String::from(
            "// Generated scenario: round-robin arbiter. The pointer rotates\n\
             // past the granted requester; the grant chain is one-hot by\n\
             // construction.\n",
        );
        design.push_str(&header("gen_arbiter", &ports, false));
        design.push_str(&format!(
            "  reg [{pmsb}:0] ptr;\n\
             \x20 wire [{nmsb}:0] grant_w;\n\
             \x20 assign grant_w = {grant_expr};\n\
             \x20 assign gnt = grant_w;\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n\
             \x20     ptr <= {pzero};\n\
             \x20   end else begin\n",
            pmsb = pw - 1,
            nmsb = n - 1,
            pzero = lit(pw, 0),
        ));
        for i in 0..n {
            design.push_str(&format!(
                "      if (grant_w[{i}]) ptr <= {};\n",
                lit(pw, u128::from((i + 1) % n))
            ));
        }
        design.push_str("    end\n  end\nendmodule\n");

        let zero = lit(n, 0);
        let candidates = vec![
            provable(
                "at_most_one_grant",
                asrt("$onehot0(gnt)"),
                format!(
                    "that the arbiter {}. Use the signal 'gnt'.",
                    vary(
                        &mut rng,
                        &[
                            "never grants more than one requester at a time",
                            "drives at most one grant line in any cycle",
                        ]
                    )
                ),
            ),
            provable(
                "grant_implies_request",
                asrt(&format!("((gnt & ~req) == {zero})")),
                "that a grant is only ever given to a requester that is actually \
                 requesting. Use the signals 'gnt' and 'req'."
                    .into(),
            ),
            provable(
                "idle_means_no_grant",
                asrt(&format!("(req == {zero}) |-> (gnt == {zero})")),
                "that no grant is issued while no requester is active. \
                 Use the signals 'req' and 'gnt'."
                    .into(),
            ),
            falsifiable(
                "immediate_service",
                asrt("req[0] |-> gnt[0]"),
                "that requester 0 is granted in the same cycle it raises its request. \
                 Use the signals 'req' and 'gnt'."
                    .into(),
            ),
            falsifiable(
                "never_grants",
                asrt(&format!("(gnt == {zero})")),
                "that the arbiter never issues any grant. Use the signal 'gnt'.".into(),
            ),
        ];

        Scenario {
            id: scenario_id("arbiter", &params),
            family: "arbiter",
            params,
            logic_excerpt: grant_expr,
            design_source: design,
            tb_source: testbench_for("gen_arbiter", &ports),
            top: "gen_arbiter".into(),
            tb_top: "gen_arbiter_tb".into(),
            internal_signal: "ptr".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 3: valid/ready handshake buffer
// ---------------------------------------------------------------------

struct HandshakeGen;

impl ScenarioGenerator for HandshakeGen {
    fn family(&self) -> &'static str {
        "handshake"
    }

    fn summary(&self) -> &'static str {
        "single-entry valid/ready elastic buffer; width = data width (2..=32), depth unused"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let width = params.width.clamp(2, 32);
        let params = GenParams {
            depth: params.depth,
            width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xCAFE);
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("in_vld", 1, false),
            ("in_data", width, false),
            ("out_rdy", 1, false),
            ("in_rdy", 1, true),
            ("out_vld", 1, true),
            ("out_data", width, true),
        ];
        let mut design = String::from(
            "// Generated scenario: single-entry valid/ready buffer. Data is\n\
             // held stable while the consumer stalls; the producer is\n\
             // back-pressured exactly while the buffer is full and stalled.\n",
        );
        design.push_str(&header("gen_handshake", &ports, false));
        design.push_str(&format!(
            "  reg vld;\n\
             \x20 reg [{msb}:0] data;\n\
             \x20 assign in_rdy = (!vld) || out_rdy;\n\
             \x20 assign out_vld = vld;\n\
             \x20 assign out_data = data;\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n\
             \x20     vld <= 1'b0;\n\
             \x20     data <= {zero};\n\
             \x20   end else begin\n\
             \x20     if (in_vld && in_rdy) begin\n\
             \x20       vld <= 1'b1;\n\
             \x20       data <= in_data;\n\
             \x20     end else if (out_rdy) begin\n\
             \x20       vld <= 1'b0;\n\
             \x20     end\n\
             \x20   end\n\
             \x20 end\n\
             endmodule\n",
            msb = width - 1,
            zero = lit(width, 0),
        ));

        let candidates = vec![
            provable(
                "valid_held_until_ready",
                asrt("(out_vld && !out_rdy) |-> ##1 out_vld"),
                format!(
                    "that {} until the consumer accepts it. \
                     Use the signals 'out_vld' and 'out_rdy'.",
                    vary(
                        &mut rng,
                        &[
                            "an offered output stays valid",
                            "the output valid flag is held asserted",
                        ]
                    )
                ),
            ),
            provable(
                "stall_keeps_data",
                asrt("(out_vld && !out_rdy) |-> ##1 $stable(out_data)"),
                "that the output data is held stable while the consumer stalls a \
                 valid output. Use the signals 'out_vld', 'out_rdy', and 'out_data'."
                    .into(),
            ),
            provable(
                "backpressure_means_full",
                asrt("(!in_rdy) |-> (out_vld && !out_rdy)"),
                "that the producer is only back-pressured while the buffer holds a \
                 valid entry that the consumer is stalling. Use the signals 'in_rdy', \
                 'out_vld', and 'out_rdy'."
                    .into(),
            ),
            falsifiable(
                "input_always_accepted",
                asrt("in_vld |-> in_rdy"),
                "that an input offer is always accepted in the same cycle. \
                 Use the signals 'in_vld' and 'in_rdy'."
                    .into(),
            ),
            falsifiable(
                "output_immediately_consumed",
                asrt("out_vld |-> out_rdy"),
                "that the consumer is always ready whenever the output is valid. \
                 Use the signals 'out_vld' and 'out_rdy'."
                    .into(),
            ),
        ];

        Scenario {
            id: scenario_id("handshake", &params),
            family: "handshake",
            params,
            logic_excerpt: "(!vld) || out_rdy".into(),
            design_source: design,
            tb_source: testbench_for("gen_handshake", &ports),
            top: "gen_handshake".into(),
            tb_top: "gen_handshake_tb".into(),
            internal_signal: "vld".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 4: gray-code counter
// ---------------------------------------------------------------------

struct GrayGen;

impl ScenarioGenerator for GrayGen {
    fn family(&self) -> &'static str {
        "gray"
    }

    fn summary(&self) -> &'static str {
        "gray-code counter; depth = counter bits (2..=12), width unused"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let b = params.depth.clamp(2, 12);
        let params = GenParams {
            depth: b,
            width: params.width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x6A41);
        let max = (1u128 << b) - 1;
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("en", 1, false),
            ("count", b, true),
            ("gray", b, true),
        ];
        let gray_expr = "bin ^ (bin >> 1)".to_string();
        let mut design = String::from(
            "// Generated scenario: gray-code counter. The gray output is\n\
             // combinationally derived from the binary register, so the two\n\
             // encodings can never disagree.\n",
        );
        design.push_str(&header("gen_gray", &ports, false));
        design.push_str(&format!(
            "  reg [{msb}:0] bin;\n\
             \x20 assign count = bin;\n\
             \x20 assign gray = {gray_expr};\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n\
             \x20     bin <= {zero};\n\
             \x20   end else begin\n\
             \x20     if (en) bin <= bin + {one};\n\
             \x20   end\n\
             \x20 end\n\
             endmodule\n",
            msb = b - 1,
            zero = lit(b, 0),
            one = lit(b, 1),
        ));

        let candidates = vec![
            provable(
                "gray_tracks_binary",
                asrt("(gray == (count ^ (count >> 1)))"),
                "that the gray output always equals the gray encoding of the binary \
                 count. Use the signals 'gray' and 'count'."
                    .into(),
            ),
            provable(
                "wraps_to_zero",
                asrt(&format!(
                    "(en && (count == {})) |-> ##1 (count == {})",
                    lit(b, max),
                    lit(b, 0)
                )),
                format!(
                    "that the counter {} after reaching its maximum value while \
                     enabled. Use the signals 'en' and 'count'.",
                    vary(&mut rng, &["wraps back to zero", "returns to zero"])
                ),
            ),
            provable(
                "single_bit_steps",
                asrt("en |-> ##1 $onehot(gray ^ $past(gray))"),
                "that the gray output changes by exactly one bit on every enabled \
                 step. Use the signals 'en' and 'gray'."
                    .into(),
            ),
            provable(
                "holds_when_disabled",
                asrt("(!en) |-> ##1 $stable(gray)"),
                "that the gray output holds its value while the counter is disabled. \
                 Use the signals 'en' and 'gray'."
                    .into(),
            ),
            falsifiable(
                "gray_equals_binary",
                asrt("(gray == count)"),
                "that the gray output always equals the binary count. \
                 Use the signals 'gray' and 'count'."
                    .into(),
            ),
            falsifiable(
                "count_never_moves",
                asrt("en |-> ##1 $stable(count)"),
                "that the binary count stays stable even while enabled. \
                 Use the signals 'en' and 'count'."
                    .into(),
            ),
        ];

        Scenario {
            id: scenario_id("gray", &params),
            family: "gray",
            params,
            logic_excerpt: gray_expr,
            design_source: design,
            tb_source: testbench_for("gen_gray", &ports),
            top: "gen_gray".into(),
            tb_top: "gen_gray_tb".into(),
            internal_signal: "bin".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 5: shift register
// ---------------------------------------------------------------------

struct ShiftGen;

impl ScenarioGenerator for ShiftGen {
    fn family(&self) -> &'static str {
        "shift"
    }

    fn summary(&self) -> &'static str {
        "word shift register; depth = taps (1..=6), width = data width (1..=32)"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let taps = params.depth.clamp(1, 6);
        let width = params.width.clamp(1, 32);
        let params = GenParams {
            depth: taps,
            width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5417);
        let zero = lit(width, 0);
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("in_data", width, false),
            ("out_data", width, true),
            ("out_any", 1, true),
        ];
        let mut design = String::from(
            "// Generated scenario: always-enabled word shift register. The\n\
             // output is the input delayed by exactly one cycle per tap.\n",
        );
        design.push_str(&header("gen_shift", &ports, false));
        for i in 0..taps {
            design.push_str(&format!("  reg [{}:0] stage_{i};\n", width - 1));
        }
        design.push_str(&format!(
            "  assign out_data = stage_{last};\n\
             \x20 assign out_any = (stage_{last} != {zero});\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n",
            last = taps - 1,
        ));
        for i in 0..taps {
            design.push_str(&format!("      stage_{i} <= {zero};\n"));
        }
        design.push_str("    end else begin\n      stage_0 <= in_data;\n");
        for i in 1..taps {
            design.push_str(&format!("      stage_{i} <= stage_{};\n", i - 1));
        }
        design.push_str("    end\n  end\nendmodule\n");

        let candidates = vec![
            provable(
                "nonzero_propagates",
                asrt(&format!(
                    "(in_data != {zero}) |-> ##{taps} (out_data != {zero})"
                )),
                format!(
                    "that a non-zero input word {} exactly {taps} cycle(s) later. \
                     Use the signals 'in_data' and 'out_data'.",
                    vary(
                        &mut rng,
                        &["reaches the output", "appears as a non-zero output"]
                    )
                ),
            ),
            provable(
                "zero_propagates",
                asrt(&format!(
                    "(in_data == {zero}) |-> ##{taps} (out_data == {zero})"
                )),
                format!(
                    "that a zero input word yields a zero output exactly {taps} \
                     cycle(s) later. Use the signals 'in_data' and 'out_data'."
                ),
            ),
            provable(
                "flag_mirrors_output",
                asrt(&format!("(out_any == (out_data != {zero}))")),
                "that the non-zero flag always mirrors whether the output word is \
                 non-zero. Use the signals 'out_any' and 'out_data'."
                    .into(),
            ),
            falsifiable(
                "wrong_latency",
                asrt(&format!(
                    "(in_data != {zero}) |-> ##{} (out_data != {zero})",
                    taps + 1
                )),
                format!(
                    "that a non-zero input word reaches the output {} cycle(s) later. \
                     Use the signals 'in_data' and 'out_data'.",
                    taps + 1
                ),
            ),
            falsifiable(
                "silent_output",
                asrt(&format!("(out_data == {zero})")),
                "that the output word is zero on every cycle. Use the signal \
                 'out_data'."
                    .into(),
            ),
        ];

        Scenario {
            id: scenario_id("shift", &params),
            family: "shift",
            params,
            logic_excerpt: format!("stage_0 <= in_data; ...; out_data = stage_{}", taps - 1),
            design_source: design,
            tb_source: testbench_for("gen_shift", &ports),
            top: "gen_shift".into(),
            tb_top: "gen_shift_tb".into(),
            internal_signal: "stage_0".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 6: parity/CRC pipeline
// ---------------------------------------------------------------------

struct CrcGen;

impl ScenarioGenerator for CrcGen {
    fn family(&self) -> &'static str {
        "crc"
    }

    fn summary(&self) -> &'static str {
        "XOR-scrambling parity pipeline; depth = stages (1..=5), width = word width (2..=16)"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let stages = params.depth.clamp(1, 5);
        let width = params.width.clamp(2, 16);
        let params = GenParams {
            depth: stages,
            width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xC4C1);
        let zero = lit(width, 0);
        // Per-stage scrambling constants are the seeded part of the
        // structure: the zero-input signature below depends on them.
        let consts: Vec<u128> = (0..stages)
            .map(|_| u128::from(rng.gen_range(1..(1u64 << width.min(63)))))
            .collect();
        let signature: u128 = consts.iter().fold(0, |acc, c| acc ^ c);

        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("in_vld", 1, false),
            ("in_data", width, false),
            ("out_vld", 1, true),
            ("out_data", width, true),
            ("out_parity", 1, true),
        ];
        let mut design = String::from(
            "// Generated scenario: XOR-scrambling parity pipeline. Each stage\n\
             // folds a fixed constant into the word; the parity flag is the\n\
             // XOR reduction of the final word.\n",
        );
        design.push_str(&header("gen_crc", &ports, false));
        for i in 0..stages {
            design.push_str(&format!(
                "  reg vld_{i};\n  reg [{}:0] data_{i};\n",
                width - 1
            ));
        }
        design.push_str(&format!(
            "  assign out_vld = vld_{last};\n\
             \x20 assign out_data = data_{last};\n\
             \x20 assign out_parity = (^data_{last});\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n",
            last = stages - 1,
        ));
        for i in 0..stages {
            design.push_str(&format!(
                "      vld_{i} <= 1'b0;\n      data_{i} <= {zero};\n"
            ));
        }
        design.push_str(&format!(
            "    end else begin\n\
             \x20     vld_0 <= in_vld;\n\
             \x20     data_0 <= in_data ^ {};\n",
            lit(width, consts[0])
        ));
        for i in 1..stages {
            design.push_str(&format!(
                "      vld_{i} <= vld_{prev};\n      data_{i} <= data_{prev} ^ {};\n",
                lit(width, consts[i as usize]),
                prev = i - 1,
            ));
        }
        design.push_str("    end\n  end\nendmodule\n");

        let excerpt = consts
            .iter()
            .map(|c| format!("data ^ {}", lit(width, *c)))
            .collect::<Vec<_>>()
            .join(";\n");

        let candidates = vec![
            provable(
                "latency",
                asrt(&format!("in_vld |-> ##{stages} out_vld")),
                format!(
                    "that a valid input {} exactly {stages} cycle(s) later. \
                     Use the signals 'in_vld' and 'out_vld'.",
                    vary(
                        &mut rng,
                        &[
                            "produces a valid output",
                            "is answered by an asserted output valid"
                        ]
                    )
                ),
            ),
            provable(
                "parity_definition",
                asrt("(out_parity == (^out_data))"),
                "that the parity flag always equals the XOR reduction of the output \
                 word. Use the signals 'out_parity' and 'out_data'."
                    .into(),
            ),
            provable(
                "zero_signature",
                asrt(&format!(
                    "(in_data == {zero}) |-> ##{stages} (out_data == {})",
                    lit(width, signature)
                )),
                format!(
                    "that a zero input word emerges {stages} cycle(s) later as the \
                     pipeline's scrambling signature {}. Use the signals 'in_data' \
                     and 'out_data'.",
                    lit(width, signature)
                ),
            ),
            falsifiable(
                "wrong_latency",
                asrt(&format!("in_vld |-> ##{} out_vld", stages + 1)),
                format!(
                    "that a valid input produces a valid output {} cycle(s) later. \
                     Use the signals 'in_vld' and 'out_vld'.",
                    stages + 1
                ),
            ),
            falsifiable(
                "inverted_parity",
                asrt("(out_parity == (!(^out_data)))"),
                "that the parity flag equals the inverted XOR reduction of the \
                 output word. Use the signals 'out_parity' and 'out_data'."
                    .into(),
            ),
        ];

        Scenario {
            id: scenario_id("crc", &params),
            family: "crc",
            params,
            logic_excerpt: excerpt,
            design_source: design,
            tb_source: testbench_for("gen_crc", &ports),
            top: "gen_crc".into(),
            tb_top: "gen_crc_tb".into(),
            internal_signal: "data_0".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 7: deep-inductive wrap counter (PDR-only headline invariant)
// ---------------------------------------------------------------------

/// Size of the unreachable top band. Must exceed the default
/// `max_induction` (6): a band state `MAX - BAND + 1 + i` needs
/// `BAND - 1 - i` ticks to climb to `MAX`, so the induction step has
/// counterexamples-to-induction at every k up to the band size — and
/// because `tick = 0` self-loops stretch any such path arbitrarily, at
/// every k beyond it too.
const DEEP_BAND: u128 = 8;

struct DeepCntGen;

impl ScenarioGenerator for DeepCntGen {
    fn family(&self) -> &'static str {
        "deepcnt"
    }

    fn summary(&self) -> &'static str {
        "wrap-at-limit counter with an unreachable top band; depth = counter bits (5..=10), \
         width = lap counter bits (2..=8); headline invariant needs the PDR engine"
    }

    fn in_default_suite(&self) -> bool {
        // The headline candidate is undecidable for the bounded
        // schedule, so default (bounded-engine) suites exclude the
        // family; select it explicitly to exercise the portfolio.
        false
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let w = params.depth.clamp(5, 10);
        let lw = params.width.clamp(2, 8);
        let params = GenParams {
            depth: w,
            width: lw,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xDEE9);
        let max = (1u128 << w) - 1;
        let limit = max - DEEP_BAND; // wrap point; band = limit+1 ..= max
        let lap_max = (1u128 << lw) - 1;
        let lap_sat = lap_max - 1; // lap counter saturates below all-ones
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("tick", 1, false),
            ("q", w, true),
            ("lap", lw, true),
            ("wrapped", 1, true),
        ];
        // The `==` wrap comparison is the point of this family (see the
        // module docs): from an *unreachable* band state the counter
        // climbs straight to all-ones, so `q != MAX` has
        // counterexamples-to-induction at every k even though every
        // *reachable* state satisfies it. Only a reachability-aware
        // engine (IC3/PDR) closes the proof.
        let wrap = format!("(cnt == {})", lit(w, limit));
        let mut design = String::from(
            "// Generated scenario: wrap-at-limit counter. The wrap compare is\n\
             // an exact equality, leaving an unreachable top band from which\n\
             // the counter would climb to all-ones — the headline invariant\n\
             // is true but not k-inductive for any k.\n",
        );
        design.push_str(&header("gen_deepcnt", &ports, false));
        design.push_str(&format!(
            "  reg [{cmsb}:0] cnt;\n\
             \x20 reg [{lmsb}:0] laps;\n\
             \x20 assign q = cnt;\n\
             \x20 assign lap = laps;\n\
             \x20 assign wrapped = {wrap};\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n\
             \x20     cnt <= {czero};\n\
             \x20     laps <= {lzero};\n\
             \x20   end else begin\n\
             \x20     if (tick) begin\n\
             \x20       if ({wrap}) begin\n\
             \x20         cnt <= {czero};\n\
             \x20         if (laps < {lsat}) laps <= laps + {lone};\n\
             \x20       end else begin\n\
             \x20         cnt <= cnt + {cone};\n\
             \x20       end\n\
             \x20     end\n\
             \x20   end\n\
             \x20 end\n\
             endmodule\n",
            cmsb = w - 1,
            lmsb = lw - 1,
            czero = lit(w, 0),
            lzero = lit(lw, 0),
            cone = lit(w, 1),
            lone = lit(lw, 1),
            lsat = lit(lw, lap_sat),
        ));

        let candidates = vec![
            provable(
                "top_band_unreachable",
                asrt(&format!("(q != {})", lit(w, max))),
                format!(
                    "that the counter {} its all-ones value {max}. \
                     Use the signal 'q'.",
                    vary(&mut rng, &["never reaches", "can never attain"])
                ),
            ),
            provable(
                "wrap_flag_definition",
                asrt(&format!("(wrapped == (q == {}))", lit(w, limit))),
                format!(
                    "that the wrap flag is asserted exactly while the count sits at \
                     its wrap limit {limit}. Use the signals 'wrapped' and 'q'."
                ),
            ),
            provable(
                "lap_never_overflows",
                asrt(&format!("(lap != {})", lit(lw, lap_max))),
                format!(
                    "that the saturating lap counter {} its all-ones value {lap_max}. \
                     Use the signal 'lap'.",
                    vary(&mut rng, &["never reaches", "stops short of"])
                ),
            ),
            falsifiable(
                "small_count_unreachable",
                asrt(&format!("(q != {})", lit(w, 3))),
                "that the count never equals 3. Use the signal 'q'.".into(),
            ),
            falsifiable(
                "tick_keeps_count",
                asrt(&format!(
                    "(tick && (q == {z})) |-> ##1 (q == {z})",
                    z = lit(w, 0)
                )),
                "that the count stays at zero across a ticked cycle. \
                 Use the signals 'tick' and 'q'."
                    .into(),
            ),
        ];

        Scenario {
            id: scenario_id("deepcnt", &params),
            family: "deepcnt",
            params,
            logic_excerpt: wrap,
            design_source: design,
            tb_source: testbench_for("gen_deepcnt", &ports),
            top: "gen_deepcnt".into(),
            tb_top: "gen_deepcnt_tb".into(),
            internal_signal: "cnt".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 8: register file with write-forwarding
// ---------------------------------------------------------------------

struct RegfileGen;

impl ScenarioGenerator for RegfileGen {
    fn family(&self) -> &'static str {
        "regfile"
    }

    fn summary(&self) -> &'static str {
        "write-forwarding register file; depth = address bits (1..=3), width = data width (2..=32)"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let aw = params.depth.clamp(1, 3);
        let width = params.width.clamp(2, 32);
        let params = GenParams {
            depth: aw,
            width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x12F1);
        // Exactly 2^aw registers: every read address maps to a
        // register, so the read mux is total and `write_persists`
        // stays 1-inductive from any starting state.
        let n = 1u32 << aw;
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("wr_en", 1, false),
            ("wr_addr", aw, false),
            ("wr_data", width, false),
            ("rd_addr", aw, false),
            ("rd_data", width, true),
            ("fwd", 1, true),
        ];
        let mut read_mux = String::new();
        for i in 0..n - 1 {
            read_mux.push_str(&format!(
                "(rd_addr == {}) ? r{} : ",
                lit(aw, u128::from(i)),
                i
            ));
        }
        read_mux.push_str(&format!("r{}", n - 1));
        let mut design = String::from(
            "// Generated scenario: register file with same-cycle write\n\
             // forwarding. A read of the address being written observes the\n\
             // incoming data, not the stale register contents.\n",
        );
        design.push_str(&header("gen_regfile", &ports, false));
        for i in 0..n {
            design.push_str(&format!("  reg [{}:0] r{};\n", width - 1, i));
        }
        design.push_str(&format!(
            "  wire [{msb}:0] raw;\n\
             \x20 assign raw = {read_mux};\n\
             \x20 assign fwd = wr_en && (wr_addr == rd_addr);\n\
             \x20 assign rd_data = fwd ? wr_data : raw;\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n",
            msb = width - 1,
        ));
        for i in 0..n {
            design.push_str(&format!("      r{} <= {};\n", i, lit(width, 0)));
        }
        design.push_str("    end else begin\n");
        for i in 0..n {
            design.push_str(&format!(
                "      if (wr_en && (wr_addr == {})) r{} <= wr_data;\n",
                lit(aw, u128::from(i)),
                i
            ));
        }
        design.push_str("    end\n  end\nendmodule\n");

        let candidates = vec![
            provable(
                "forward_wins",
                asrt("(wr_en && (wr_addr == rd_addr)) |-> (rd_data == wr_data)"),
                format!(
                    "that {} the read port returns the data being written. \
                     Use the signals 'wr_en', 'wr_addr', 'rd_addr', 'rd_data', and 'wr_data'.",
                    vary(
                        &mut rng,
                        &[
                            "when a write hits the address being read,",
                            "whenever the read and write addresses collide on an active write,",
                        ]
                    )
                ),
            ),
            provable(
                "fwd_definition",
                asrt("(fwd == (wr_en && (wr_addr == rd_addr)))"),
                "that the forwarding indicator is asserted exactly on a same-address \
                 active write. Use the signals 'fwd', 'wr_en', 'wr_addr', and 'rd_addr'."
                    .into(),
            ),
            provable(
                "write_persists",
                asrt(
                    "(wr_en ##1 (!wr_en && (rd_addr == $past(wr_addr)))) |-> \
                     (rd_data == $past(wr_data))",
                ),
                "that data written one cycle earlier is read back unchanged when the \
                 written address is read with no new write in flight. Use the signals \
                 'wr_en', 'rd_addr', 'wr_addr', 'rd_data', and 'wr_data'."
                    .into(),
            ),
            falsifiable(
                "always_forwards",
                asrt("(rd_data == wr_data)"),
                "that the read port always returns the write-port data. \
                 Use the signals 'rd_data' and 'wr_data'."
                    .into(),
            ),
            falsifiable(
                "forward_sticks",
                asrt("fwd |-> ##1 fwd"),
                "that once forwarding kicks in it stays active on the next cycle. \
                 Use the signal 'fwd'."
                    .into(),
            ),
        ];

        Scenario {
            id: scenario_id("regfile", &params),
            family: "regfile",
            params,
            logic_excerpt: read_mux,
            design_source: design,
            tb_source: testbench_for("gen_regfile", &ports),
            top: "gen_regfile".into(),
            tb_top: "gen_regfile_tb".into(),
            internal_signal: "raw".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 9: pipelined datapath with hazard stalls
// ---------------------------------------------------------------------

struct PipelineGen;

impl ScenarioGenerator for PipelineGen {
    fn family(&self) -> &'static str {
        "pipeline"
    }

    fn summary(&self) -> &'static str {
        "stallable valid/data pipeline; depth = stages (2..=4), width = data width (2..=32)"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let stages = params.depth.clamp(2, 4);
        let width = params.width.clamp(2, 32);
        let params = GenParams {
            depth: stages,
            width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x3147);
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("in_vld", 1, false),
            ("in_data", width, false),
            ("stall", 1, false),
            ("out_vld", 1, true),
            ("out_data", width, true),
        ];
        let mut design = String::from(
            "// Generated scenario: in-order pipeline with a hazard stall.\n\
             // While the stall input is asserted every stage register holds its\n\
             // value; otherwise valid bits and data advance one stage per\n\
             // cycle.\n",
        );
        design.push_str(&header("gen_pipeline", &ports, false));
        for i in 0..stages {
            design.push_str(&format!("  reg v{i};\n  reg [{}:0] d{i};\n", width - 1));
        }
        design.push_str(&format!(
            "  assign out_vld = v{last};\n\
             \x20 assign out_data = d{last};\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n",
            last = stages - 1,
        ));
        for i in 0..stages {
            design.push_str(&format!(
                "      v{i} <= 1'b0;\n      d{i} <= {};\n",
                lit(width, 0)
            ));
        }
        design.push_str(
            "    end else begin\n\
             \x20     if (!stall) begin\n\
             \x20       v0 <= in_vld;\n\
             \x20       d0 <= in_data;\n",
        );
        for i in 1..stages {
            design.push_str(&format!(
                "        v{i} <= v{};\n        d{i} <= d{};\n",
                i - 1,
                i - 1
            ));
        }
        design.push_str("      end\n    end\n  end\nendmodule\n");

        // `(in_vld && !stall) ##1 !stall ##1 ... |-> ##1 out_vld`:
        // the launch plus `stages - 1` stall-free cycles walk the entry
        // to the last stage.
        let free_run = |head: &str| {
            let mut s = String::from(head);
            for _ in 1..stages {
                s.push_str(" ##1 (!stall)");
            }
            s
        };

        let candidates = vec![
            provable(
                "stall_freezes",
                asrt("stall |-> ##1 ($stable(out_vld) && $stable(out_data))"),
                format!(
                    "that {} both output valid and output data hold their values into \
                     the next cycle. Use the signals 'stall', 'out_vld', and 'out_data'.",
                    vary(
                        &mut rng,
                        &[
                            "while the pipeline is stalled,",
                            "whenever the hazard stall is asserted,",
                        ]
                    )
                ),
            ),
            provable(
                "flow_latency",
                asrt(&format!(
                    "({}) |-> ##1 out_vld",
                    free_run("(in_vld && !stall)")
                )),
                format!(
                    "that an entry accepted into a stall-free pipeline emerges valid \
                     after exactly {stages} cycles. Use the signals 'in_vld', 'stall', \
                     and 'out_vld'."
                ),
            ),
            provable(
                "bubble_flushes",
                asrt(&format!(
                    "({}) |-> ##1 (!out_vld)",
                    free_run("(!in_vld && !stall)")
                )),
                format!(
                    "that a bubble inserted into a stall-free pipeline reaches the \
                     output as an invalid cycle after {stages} cycles. Use the signals \
                     'in_vld', 'stall', and 'out_vld'."
                ),
            ),
            falsifiable(
                "no_stall_needed",
                asrt(&format!("in_vld |-> ##{stages} out_vld")),
                format!(
                    "that any accepted input reaches the output valid after {stages} \
                     cycles regardless of stalls. Use the signals 'in_vld' and 'out_vld'."
                ),
            ),
            falsifiable(
                "stall_passes",
                asrt("stall |-> ##1 out_vld"),
                "that the output is valid on the cycle after any stall. \
                 Use the signals 'stall' and 'out_vld'."
                    .into(),
            ),
        ];

        Scenario {
            id: scenario_id("pipeline", &params),
            family: "pipeline",
            params,
            logic_excerpt: format!("v0 <= in_vld; ...; v{} <= v{}", stages - 1, stages - 2),
            design_source: design,
            tb_source: testbench_for("gen_pipeline", &ports),
            top: "gen_pipeline".into(),
            tb_top: "gen_pipeline_tb".into(),
            internal_signal: "v0".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 10: AXI-lite-style request/response protocol checker
// ---------------------------------------------------------------------

struct AxiGen;

impl ScenarioGenerator for AxiGen {
    fn family(&self) -> &'static str {
        "axi"
    }

    fn summary(&self) -> &'static str {
        "AXI-lite-style single-outstanding request/response channel; width = data width (2..=32), depth unused"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let width = params.width.clamp(2, 32);
        let params = GenParams {
            depth: params.depth,
            width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x0A71);
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("req_vld", 1, false),
            ("req_data", width, false),
            ("resp_rdy", 1, false),
            ("req_rdy", 1, true),
            ("resp_vld", 1, true),
            ("resp_data", width, true),
        ];
        let mut design = String::from(
            "// Generated scenario: single-outstanding request/response\n\
             // channel in the AXI-lite style. A request is accepted only\n\
             // while idle; the response stays valid, with stable payload,\n\
             // until the master takes it.\n",
        );
        design.push_str(&header("gen_axi", &ports, false));
        design.push_str(&format!(
            "  reg busy;\n\
             \x20 reg [{msb}:0] held;\n\
             \x20 assign req_rdy = !busy;\n\
             \x20 assign resp_vld = busy;\n\
             \x20 assign resp_data = held;\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n\
             \x20     busy <= 1'b0;\n\
             \x20     held <= {zero};\n\
             \x20   end else begin\n\
             \x20     if (req_vld && !busy) begin\n\
             \x20       busy <= 1'b1;\n\
             \x20       held <= req_data;\n\
             \x20     end else if (busy && resp_rdy) begin\n\
             \x20       busy <= 1'b0;\n\
             \x20     end\n\
             \x20   end\n\
             \x20 end\n\
             endmodule\n",
            msb = width - 1,
            zero = lit(width, 0),
        ));

        let candidates = vec![
            provable(
                "resp_excludes_ready",
                asrt("resp_vld |-> (!req_rdy)"),
                format!(
                    "that {} the channel never advertises request readiness. \
                     Use the signals 'resp_vld' and 'req_rdy'.",
                    vary(
                        &mut rng,
                        &[
                            "while a response is pending,",
                            "whenever the response channel is occupied,",
                        ]
                    )
                ),
            ),
            provable(
                "accept_brings_resp",
                asrt("(req_vld && req_rdy) |-> ##1 resp_vld"),
                "that an accepted request produces a valid response on the next \
                 cycle. Use the signals 'req_vld', 'req_rdy', and 'resp_vld'."
                    .into(),
            ),
            provable(
                "resp_held_until_taken",
                asrt("(resp_vld && !resp_rdy) |-> ##1 (resp_vld && $stable(resp_data))"),
                "that a response the master is not yet accepting stays valid with \
                 unchanged payload. Use the signals 'resp_vld', 'resp_rdy', and \
                 'resp_data'."
                    .into(),
            ),
            provable(
                "echo_data",
                asrt("(req_vld && req_rdy) |-> ##1 (resp_data == $past(req_data))"),
                "that the response payload equals the request payload captured at \
                 acceptance. Use the signals 'req_vld', 'req_rdy', 'resp_data', and \
                 'req_data'."
                    .into(),
            ),
            falsifiable(
                "always_ready",
                asrt("req_rdy"),
                "that the channel accepts a new request on every cycle. \
                 Use the signal 'req_rdy'."
                    .into(),
            ),
            falsifiable(
                "instant_resp",
                asrt("req_vld |-> resp_vld"),
                "that a response is valid in the same cycle the request is offered. \
                 Use the signals 'req_vld' and 'resp_vld'."
                    .into(),
            ),
        ];

        Scenario {
            id: scenario_id("axi", &params),
            family: "axi",
            params,
            logic_excerpt: "req_rdy = !busy; resp_vld = busy".into(),
            design_source: design,
            tb_source: testbench_for("gen_axi", &ports),
            top: "gen_axi".into(),
            tb_top: "gen_axi_tb".into(),
            internal_signal: "busy".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 11: cross-module property over an instantiated hierarchy
// ---------------------------------------------------------------------

struct HierGen;

impl ScenarioGenerator for HierGen {
    fn family(&self) -> &'static str {
        "hier"
    }

    fn summary(&self) -> &'static str {
        "two instantiated counter cells with cross-module properties; depth = counter bits (2..=10), width unused"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let b = params.depth.clamp(2, 10);
        let params = GenParams {
            depth: b,
            width: params.width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x417E);
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("en", 1, false),
            ("q0", b, true),
            ("q1", b, true),
            ("total", b, true),
            ("agree", 1, true),
        ];
        let cell_ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("en", 1, false),
            ("q", b, true),
        ];
        let mut design = String::from(
            "// Generated scenario: instantiated hierarchy. Two copies of\n\
             // the same counter cell run in lockstep off a shared enable;\n\
             // the top level exposes cross-module sums and comparisons, so\n\
             // every property here spans instance boundaries after\n\
             // elaboration inlines the cell0/cell1 instances.\n",
        );
        design.push_str(&header("gen_hier_cell", &cell_ports, false));
        design.push_str(&format!(
            "  reg [{msb}:0] cnt;\n\
             \x20 assign q = cnt;\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n\
             \x20     cnt <= {zero};\n\
             \x20   end else begin\n\
             \x20     if (en) cnt <= cnt + {one};\n\
             \x20   end\n\
             \x20 end\n\
             endmodule\n\n",
            msb = b - 1,
            zero = lit(b, 0),
            one = lit(b, 1),
        ));
        design.push_str(&header("gen_hier", &ports, false));
        design.push_str(&format!(
            "  wire [{msb}:0] q0_w;\n\
             \x20 wire [{msb}:0] q1_w;\n\
             \x20 gen_hier_cell cell0 (.clk(clk), .reset_(reset_), .en(en), .q(q0_w));\n\
             \x20 gen_hier_cell cell1 (.clk(clk), .reset_(reset_), .en(en), .q(q1_w));\n\
             \x20 assign q0 = q0_w;\n\
             \x20 assign q1 = q1_w;\n\
             \x20 assign total = q0_w + q1_w;\n\
             \x20 assign agree = (q0_w == q1_w);\n\
             endmodule\n",
            msb = b - 1,
        ));

        let candidates = vec![
            provable(
                "lockstep",
                asrt("(q0 == q1)"),
                format!(
                    "that the two counter instances {}. Use the signals 'q0' and 'q1'.",
                    vary(
                        &mut rng,
                        &[
                            "always hold identical counts",
                            "never diverge from one another",
                        ]
                    )
                ),
            ),
            provable(
                "agree_definition",
                asrt("(agree == (q0 == q1))"),
                "that the agreement flag is asserted exactly while both instance \
                 counts match. Use the signals 'agree', 'q0', and 'q1'."
                    .into(),
            ),
            provable(
                "total_definition",
                asrt("(total == (q0 + q1))"),
                "that the exported total equals the wrapping sum of both instance \
                 counts. Use the signals 'total', 'q0', and 'q1'."
                    .into(),
            ),
            falsifiable(
                "diverged",
                asrt("(q0 != q1)"),
                "that the two instance counts always differ. \
                 Use the signals 'q0' and 'q1'."
                    .into(),
            ),
            falsifiable(
                "frozen",
                asrt("en |-> ##1 $stable(q0)"),
                "that the first instance count never changes across an enabled \
                 cycle. Use the signals 'en' and 'q0'."
                    .into(),
            ),
        ];

        Scenario {
            id: scenario_id("hier", &params),
            family: "hier",
            params,
            logic_excerpt: "total = q0_w + q1_w".into(),
            design_source: design,
            tb_source: testbench_for("gen_hier", &ports),
            top: "gen_hier".into(),
            tb_top: "gen_hier_tb".into(),
            internal_signal: "q0_w".into(),
            candidates,
        }
    }
}

// ---------------------------------------------------------------------
// Family 12: one-hot token ring
// ---------------------------------------------------------------------

struct RingGen;

impl ScenarioGenerator for RingGen {
    fn family(&self) -> &'static str {
        "ring"
    }

    fn summary(&self) -> &'static str {
        "one-hot rotating token ring; depth = ring positions (2..=8), width unused"
    }

    fn generate(&self, params: &GenParams) -> Scenario {
        let n = params.depth.clamp(2, 8);
        let params = GenParams {
            depth: n,
            width: params.width,
            seed: params.seed,
        };
        let mut rng = StdRng::seed_from_u64(params.seed ^ 0x1216);
        let ports: Vec<Port> = vec![
            ("clk", 1, false),
            ("reset_", 1, false),
            ("adv", 1, false),
            ("pos", n, true),
        ];
        let rotate = format!("{{tok[{}:0], tok[{}]}}", n - 2, n - 1);
        let mut design = String::from(
            "// Generated scenario: one-hot token ring. Exactly one position\n\
             // holds the token; an advance rotates it one slot left, with\n\
             // wrap-around from the top slot back to slot 0.\n",
        );
        design.push_str(&header("gen_ring", &ports, false));
        design.push_str(&format!(
            "  reg [{msb}:0] tok;\n\
             \x20 assign pos = tok;\n\
             \x20 always_ff @(posedge clk or negedge reset_) begin\n\
             \x20   if (!reset_) begin\n\
             \x20     tok <= {one};\n\
             \x20   end else begin\n\
             \x20     if (adv) tok <= {rotate};\n\
             \x20   end\n\
             \x20 end\n\
             endmodule\n",
            msb = n - 1,
            one = lit(n, 1),
        ));

        let candidates = vec![
            provable(
                "one_hot_token",
                asrt("$onehot(pos)"),
                format!(
                    "that {} exactly one ring position holds the token. \
                     Use the signal 'pos'.",
                    vary(&mut rng, &["on every cycle", "at all times"])
                ),
            ),
            provable(
                "hold_when_idle",
                asrt("(!adv) |-> ##1 $stable(pos)"),
                "that the token does not move across a cycle without an advance \
                 request. Use the signals 'adv' and 'pos'."
                    .into(),
            ),
            provable(
                "token_advances",
                asrt("(adv && pos[0]) |-> ##1 pos[1]"),
                "that advancing the token out of slot 0 lands it in slot 1 on the \
                 next cycle. Use the signals 'adv' and 'pos'."
                    .into(),
            ),
            falsifiable(
                "head_stays",
                asrt("pos[0] |-> ##1 pos[0]"),
                "that the token, once in slot 0, remains there on the next cycle. \
                 Use the signal 'pos'."
                    .into(),
            ),
            falsifiable(
                "all_idle",
                asrt(&format!("(pos == {})", lit(n, 1))),
                "that the token never leaves its reset slot. Use the signal 'pos'.".into(),
            ),
        ];

        Scenario {
            id: scenario_id("ring", &params),
            family: "ring",
            params,
            logic_excerpt: rotate,
            design_source: design,
            tb_source: testbench_for("gen_ring", &ports),
            top: "gen_ring".into(),
            tb_top: "gen_ring_tb".into(),
            internal_signal: "tok".into(),
            candidates,
        }
    }
}
