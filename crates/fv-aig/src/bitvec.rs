//! Word-level bit-vector construction over an [`Aig`].
//!
//! Bits are stored LSB-first. All arithmetic follows Verilog 2-state
//! unsigned semantics at the expression width (wrap-around on overflow);
//! callers perform width extension explicitly, mirroring the elaborated
//! widths computed by `sv-synth`.

use crate::aig::{Aig, AigLit};

/// A fixed-width vector of AIG literals (LSB first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    bits: Vec<AigLit>,
}

impl BitVec {
    /// Builds a vector from LSB-first bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty; zero-width vectors are not representable.
    pub fn from_bits(bits: Vec<AigLit>) -> BitVec {
        assert!(!bits.is_empty(), "zero-width bit-vector");
        BitVec { bits }
    }

    /// A vector of fresh primary inputs.
    pub fn input(g: &mut Aig, width: usize) -> BitVec {
        BitVec::from_bits((0..width).map(|_| g.input()).collect())
    }

    /// A constant vector holding `value` truncated to `width` bits.
    pub fn constant(width: usize, value: u128) -> BitVec {
        BitVec::from_bits(
            (0..width)
                .map(|i| AigLit::constant(i < 128 && (value >> i) & 1 == 1))
                .collect(),
        )
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The LSB-first bits.
    pub fn bits(&self) -> &[AigLit] {
        &self.bits
    }

    /// Bit at position `i` (LSB = 0).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: usize) -> AigLit {
        self.bits[i]
    }

    /// Single-bit vector from a literal.
    pub fn from_lit(l: AigLit) -> BitVec {
        BitVec { bits: vec![l] }
    }

    /// Zero-extends (or truncates) to `width`.
    pub fn resize(&self, width: usize) -> BitVec {
        let mut bits = self.bits.clone();
        bits.resize(width, AigLit::FALSE);
        bits.truncate(width);
        BitVec::from_bits(bits)
    }

    /// Sign-extends (or truncates) to `width`.
    pub fn sext(&self, width: usize) -> BitVec {
        let msb = *self.bits.last().expect("non-empty");
        let mut bits = self.bits.clone();
        bits.resize(width, msb);
        bits.truncate(width);
        BitVec::from_bits(bits)
    }

    /// Slice `[lo..=hi]` (Verilog `x[hi:lo]`).
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(&self, hi: usize, lo: usize) -> BitVec {
        assert!(lo <= hi && hi < self.width(), "slice out of range");
        BitVec::from_bits(self.bits[lo..=hi].to_vec())
    }

    /// Concatenation: `self` becomes the *high* part (Verilog `{self, low}`).
    pub fn concat(&self, low: &BitVec) -> BitVec {
        let mut bits = low.bits.clone();
        bits.extend_from_slice(&self.bits);
        BitVec::from_bits(bits)
    }

    /// Reduction to a boolean: true iff any bit is set.
    pub fn reduce_or(&self, g: &mut Aig) -> AigLit {
        g.or_all(self.bits.iter().copied())
    }

    /// Reduction and: true iff all bits are set.
    pub fn reduce_and(&self, g: &mut Aig) -> AigLit {
        g.and_all(self.bits.iter().copied())
    }

    /// Reduction xor: parity of the bits.
    pub fn reduce_xor(&self, g: &mut Aig) -> AigLit {
        self.bits
            .iter()
            .fold(AigLit::FALSE, |acc, &b| g.xor(acc, b))
    }

    /// Boolean interpretation (Verilog truthiness): any bit set.
    pub fn to_bool(&self, g: &mut Aig) -> AigLit {
        self.reduce_or(g)
    }

    /// Bitwise not.
    pub fn not(&self) -> BitVec {
        BitVec::from_bits(self.bits.iter().map(|&b| !b).collect())
    }

    fn zip_with(
        &self,
        g: &mut Aig,
        rhs: &BitVec,
        f: impl Fn(&mut Aig, AigLit, AigLit) -> AigLit,
    ) -> BitVec {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        BitVec::from_bits(
            self.bits
                .iter()
                .zip(&rhs.bits)
                .map(|(&a, &b)| f(g, a, b))
                .collect(),
        )
    }

    /// Bitwise and.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch (as do all binary vector ops).
    pub fn and(&self, g: &mut Aig, rhs: &BitVec) -> BitVec {
        self.zip_with(g, rhs, Aig::and)
    }

    /// Bitwise or.
    pub fn or(&self, g: &mut Aig, rhs: &BitVec) -> BitVec {
        self.zip_with(g, rhs, Aig::or)
    }

    /// Bitwise xor.
    pub fn xor(&self, g: &mut Aig, rhs: &BitVec) -> BitVec {
        self.zip_with(g, rhs, Aig::xor)
    }

    /// Ripple-carry addition (wraps at width).
    pub fn add(&self, g: &mut Aig, rhs: &BitVec) -> BitVec {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        let mut carry = AigLit::FALSE;
        let mut out = Vec::with_capacity(self.width());
        for (&a, &b) in self.bits.iter().zip(&rhs.bits) {
            let axb = g.xor(a, b);
            out.push(g.xor(axb, carry));
            let ab = g.and(a, b);
            let ac = g.and(axb, carry);
            carry = g.or(ab, ac);
        }
        BitVec::from_bits(out)
    }

    /// Two's-complement negation.
    pub fn neg(&self, g: &mut Aig) -> BitVec {
        let one = BitVec::constant(self.width(), 1);
        self.not().add(g, &one)
    }

    /// Subtraction (wraps at width).
    pub fn sub(&self, g: &mut Aig, rhs: &BitVec) -> BitVec {
        let nr = rhs.neg(g);
        self.add(g, &nr)
    }

    /// Shift-and-add multiplication (truncated to width).
    pub fn mul(&self, g: &mut Aig, rhs: &BitVec) -> BitVec {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        let w = self.width();
        let mut acc = BitVec::constant(w, 0);
        for i in 0..w {
            let shifted = self.shl_const(i);
            let gated = BitVec::from_bits(
                shifted
                    .bits
                    .iter()
                    .map(|&b| g.and(b, rhs.bits[i]))
                    .collect(),
            );
            acc = acc.add(g, &gated);
        }
        acc
    }

    /// Left shift by a constant amount (zero fill).
    pub fn shl_const(&self, n: usize) -> BitVec {
        let w = self.width();
        let mut bits = vec![AigLit::FALSE; w];
        if n < w {
            bits[n..].copy_from_slice(&self.bits[..w - n]);
        }
        BitVec::from_bits(bits)
    }

    /// Logical right shift by a constant amount (zero fill).
    pub fn lshr_const(&self, n: usize) -> BitVec {
        let w = self.width();
        let mut bits = vec![AigLit::FALSE; w];
        // Shifts of >= w bits clear the vector entirely; `n..n + keep`
        // would be out of bounds for them.
        let keep = w.saturating_sub(n);
        if keep > 0 {
            bits[..keep].copy_from_slice(&self.bits[n..n + keep]);
        }
        BitVec::from_bits(bits)
    }

    /// Arithmetic right shift by a constant amount (MSB fill).
    pub fn ashr_const(&self, n: usize) -> BitVec {
        let w = self.width();
        let msb = self.bits[w - 1];
        let mut bits = vec![msb; w];
        let keep = w.saturating_sub(n);
        if keep > 0 {
            bits[..keep].copy_from_slice(&self.bits[n..n + keep]);
        }
        BitVec::from_bits(bits)
    }

    /// Barrel left shift by a variable amount.
    pub fn shl(&self, g: &mut Aig, amount: &BitVec) -> BitVec {
        self.barrel(g, amount, |v, k| v.shl_const(k))
    }

    /// Barrel logical right shift by a variable amount.
    pub fn lshr(&self, g: &mut Aig, amount: &BitVec) -> BitVec {
        self.barrel(g, amount, |v, k| v.lshr_const(k))
    }

    /// Barrel arithmetic right shift by a variable amount.
    pub fn ashr(&self, g: &mut Aig, amount: &BitVec) -> BitVec {
        self.barrel(g, amount, |v, k| v.ashr_const(k))
    }

    fn barrel(
        &self,
        g: &mut Aig,
        amount: &BitVec,
        step: impl Fn(&BitVec, usize) -> BitVec,
    ) -> BitVec {
        // Shifts >= width produce the saturated fill; stages beyond
        // log2(width) collapse every bit.
        let w = self.width();
        let mut cur = self.clone();
        for (i, &sel) in amount.bits.iter().enumerate() {
            let shifted = if (1usize << i.min(31)) >= 2 * w {
                step(&cur, w) // fully shifted out
            } else {
                step(&cur, 1 << i.min(31))
            };
            cur = BitVec::from_bits(
                cur.bits
                    .iter()
                    .zip(&shifted.bits)
                    .map(|(&keep, &sh)| g.mux(sel, sh, keep))
                    .collect(),
            );
        }
        cur
    }

    /// Equality comparison.
    pub fn eq(&self, g: &mut Aig, rhs: &BitVec) -> AigLit {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        let pairs: Vec<AigLit> = self
            .bits
            .iter()
            .zip(&rhs.bits)
            .map(|(&a, &b)| g.xnor(a, b))
            .collect();
        g.and_all(pairs)
    }

    /// Inequality comparison.
    pub fn ne(&self, g: &mut Aig, rhs: &BitVec) -> AigLit {
        let e = self.eq(g, rhs);
        !e
    }

    /// Unsigned less-than.
    pub fn ult(&self, g: &mut Aig, rhs: &BitVec) -> AigLit {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        // MSB-down comparison chain.
        let mut lt = AigLit::FALSE;
        let mut eq_so_far = AigLit::TRUE;
        for i in (0..self.width()).rev() {
            let a = self.bits[i];
            let b = rhs.bits[i];
            let a_lt_b = g.and(!a, b);
            let here = g.and(eq_so_far, a_lt_b);
            lt = g.or(lt, here);
            let e = g.xnor(a, b);
            eq_so_far = g.and(eq_so_far, e);
        }
        lt
    }

    /// Unsigned less-or-equal.
    pub fn ule(&self, g: &mut Aig, rhs: &BitVec) -> AigLit {
        let gt = rhs.ult(g, self);
        !gt
    }

    /// Population count, returned as a vector wide enough to hold it.
    pub fn countones(&self, g: &mut Aig) -> BitVec {
        let out_w = usize::BITS as usize - self.width().leading_zeros() as usize;
        let out_w = out_w.max(1) + 1;
        let mut acc = BitVec::constant(out_w, 0);
        for &b in &self.bits {
            let ext = BitVec::from_lit(b).resize(out_w);
            acc = acc.add(g, &ext);
        }
        acc
    }

    /// `$onehot`: exactly one bit set.
    pub fn onehot(&self, g: &mut Aig) -> AigLit {
        let (none, two_plus) = self.zero_and_multi(g);
        let some = !none;
        g.and(some, !two_plus)
    }

    /// `$onehot0`: at most one bit set.
    pub fn onehot0(&self, g: &mut Aig) -> AigLit {
        let (_, two_plus) = self.zero_and_multi(g);
        !two_plus
    }

    /// Returns (no bit set, at least two bits set).
    fn zero_and_multi(&self, g: &mut Aig) -> (AigLit, AigLit) {
        let mut any = AigLit::FALSE;
        let mut multi = AigLit::FALSE;
        for &b in &self.bits {
            let both = g.and(any, b);
            multi = g.or(multi, both);
            any = g.or(any, b);
        }
        (!any, multi)
    }

    /// Unsigned division and remainder by restoring long division.
    ///
    /// Division by zero yields all-ones quotient and `self` as remainder
    /// (matching common hardware divider conventions; the benchmarks never
    /// divide by a possibly-zero value).
    pub fn udivrem(&self, g: &mut Aig, rhs: &BitVec) -> (BitVec, BitVec) {
        assert_eq!(self.width(), rhs.width(), "width mismatch");
        let w = self.width();
        let mut rem = BitVec::constant(w, 0);
        let mut quo = vec![AigLit::FALSE; w];
        for i in (0..w).rev() {
            // rem = (rem << 1) | bit(i)
            let mut shifted = rem.shl_const(1);
            let mut bits = shifted.bits().to_vec();
            bits[0] = self.bits[i];
            shifted = BitVec::from_bits(bits);
            let ge = rhs.ule(g, &shifted);
            let diff = shifted.sub(g, rhs);
            rem = BitVec::from_bits(
                shifted
                    .bits()
                    .iter()
                    .zip(diff.bits())
                    .map(|(&keep, &sub)| g.mux(ge, sub, keep))
                    .collect(),
            );
            quo[i] = ge;
        }
        let div_zero = rhs.eq(g, &BitVec::constant(w, 0));
        let quo = BitVec::from_bits(quo.iter().map(|&q| g.or(q, div_zero)).collect());
        let rem = BitVec::from_bits(
            rem.bits()
                .iter()
                .zip(self.bits())
                .map(|(&r, &a)| g.mux(div_zero, a, r))
                .collect(),
        );
        (quo, rem)
    }

    /// Word-level multiplexer.
    pub fn mux(g: &mut Aig, sel: AigLit, t: &BitVec, e: &BitVec) -> BitVec {
        assert_eq!(t.width(), e.width(), "width mismatch");
        BitVec::from_bits(
            t.bits
                .iter()
                .zip(&e.bits)
                .map(|(&a, &b)| g.mux(sel, a, b))
                .collect(),
        )
    }

    /// Replicates the vector `n` times (Verilog `{n{x}}`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn replicate(&self, n: usize) -> BitVec {
        assert!(n > 0, "zero replication");
        let mut bits = Vec::with_capacity(self.width() * n);
        for _ in 0..n {
            bits.extend_from_slice(&self.bits);
        }
        BitVec::from_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::AigEvaluator;

    /// Evaluates a combinational BitVec function against a u128 oracle.
    fn check2(
        w: usize,
        f: impl Fn(&mut Aig, &BitVec, &BitVec) -> BitVec,
        oracle: impl Fn(u128, u128) -> u128,
    ) {
        let mut g = Aig::new();
        let a = BitVec::input(&mut g, w);
        let b = BitVec::input(&mut g, w);
        let out = f(&mut g, &a, &b);
        let mask = if w == 128 {
            u128::MAX
        } else {
            (1u128 << w) - 1
        };
        let samples: &[(u128, u128)] = &[
            (0, 0),
            (1, 1),
            (3, 5),
            (mask, 1),
            (mask, mask),
            (0xAB, 0x13),
            (7, 9),
        ];
        for &(x, y) in samples {
            let (x, y) = (x & mask, y & mask);
            let mut inputs = Vec::new();
            for i in 0..w {
                inputs.push((x >> i) & 1 == 1);
            }
            for i in 0..w {
                inputs.push((y >> i) & 1 == 1);
            }
            let ev = AigEvaluator::combinational(&g, &inputs);
            let mut got: u128 = 0;
            for (i, &bit) in out.bits().iter().enumerate() {
                if ev.lit(bit) && i < 128 {
                    got |= 1 << i;
                }
            }
            let want = oracle(x, y) & mask;
            assert_eq!(got & mask, want, "w={w} x={x:#x} y={y:#x}");
        }
    }

    #[test]
    fn add_matches_wrapping_add() {
        check2(8, |g, a, b| a.add(g, b), |x, y| x.wrapping_add(y));
    }

    #[test]
    fn sub_matches_wrapping_sub() {
        check2(8, |g, a, b| a.sub(g, b), |x, y| x.wrapping_sub(y));
    }

    #[test]
    fn mul_matches_wrapping_mul() {
        check2(6, |g, a, b| a.mul(g, b), |x, y| x.wrapping_mul(y));
    }

    #[test]
    fn bitwise_ops_match() {
        check2(8, |g, a, b| a.and(g, b), |x, y| x & y);
        check2(8, |g, a, b| a.or(g, b), |x, y| x | y);
        check2(8, |g, a, b| a.xor(g, b), |x, y| x ^ y);
    }

    #[test]
    fn comparisons_match() {
        check2(
            5,
            |g, a, b| BitVec::from_lit(a.ult(g, b)).resize(5),
            |x, y| u128::from(x < y),
        );
        check2(
            5,
            |g, a, b| BitVec::from_lit(a.eq(g, b)).resize(5),
            |x, y| u128::from(x == y),
        );
        check2(
            5,
            |g, a, b| BitVec::from_lit(a.ule(g, b)).resize(5),
            |x, y| u128::from(x <= y),
        );
    }

    #[test]
    fn shifts_match() {
        check2(8, |_g, a, _b| a.shl_const(3), |x, _| x << 3);
        check2(8, |_g, a, _b| a.lshr_const(3), |x, _| (x & 0xff) >> 3);
        // Overshifts (amount > width) must saturate, not panic — the
        // barrel shifter reaches them for non-power-of-two widths.
        check2(8, |_g, a, _b| a.shl_const(11), |_, _| 0);
        check2(8, |_g, a, _b| a.lshr_const(11), |_, _| 0);
        check2(
            8,
            |_g, a, _b| a.ashr_const(11),
            |x, _| if x & 0x80 != 0 { 0xff } else { 0 },
        );
        check2(
            8,
            |g, a, b| a.shl(g, &b.resize(4)),
            |x, y| {
                let sh = y & 0xf;
                if sh >= 8 {
                    0
                } else {
                    x << sh
                }
            },
        );
        // Variable shift over a non-power-of-two width drives the
        // barrel stage whose constant step exceeds the width.
        check2(
            12,
            |g, a, b| a.lshr(g, &b.resize(5)),
            |x, y| {
                let sh = y & 0x1f;
                if sh >= 12 {
                    0
                } else {
                    (x & 0xfff) >> sh
                }
            },
        );
    }

    #[test]
    fn ashr_fills_with_msb() {
        let mut g = Aig::new();
        let a = BitVec::input(&mut g, 4);
        let out = a.ashr_const(2);
        // 0b1000 >> 2 arithmetically = 0b1110
        let ev = AigEvaluator::combinational(&g, &[false, false, false, true]);
        let got: Vec<bool> = out.bits().iter().map(|&b| ev.lit(b)).collect();
        assert_eq!(got, vec![false, true, true, true]);
    }

    #[test]
    fn countones_and_onehot() {
        let mut g = Aig::new();
        let a = BitVec::input(&mut g, 6);
        let cnt = a.countones(&mut g);
        let oh = a.onehot(&mut g);
        let oh0 = a.onehot0(&mut g);
        for x in 0..64u32 {
            let inputs: Vec<bool> = (0..6).map(|i| (x >> i) & 1 == 1).collect();
            let ev = AigEvaluator::combinational(&g, &inputs);
            let mut got = 0u32;
            for (i, &b) in cnt.bits().iter().enumerate() {
                if ev.lit(b) {
                    got |= 1 << i;
                }
            }
            assert_eq!(got, x.count_ones(), "countones({x:#b})");
            assert_eq!(ev.lit(oh), x.count_ones() == 1, "onehot({x:#b})");
            assert_eq!(ev.lit(oh0), x.count_ones() <= 1, "onehot0({x:#b})");
        }
    }

    #[test]
    fn divrem_matches() {
        let mut g = Aig::new();
        let a = BitVec::input(&mut g, 5);
        let b = BitVec::input(&mut g, 5);
        let (q, r) = a.udivrem(&mut g, &b);
        for x in 0..32u32 {
            for y in 1..32u32 {
                let mut inputs = Vec::new();
                for i in 0..5 {
                    inputs.push((x >> i) & 1 == 1);
                }
                for i in 0..5 {
                    inputs.push((y >> i) & 1 == 1);
                }
                let ev = AigEvaluator::combinational(&g, &inputs);
                let read = |v: &BitVec| -> u32 {
                    v.bits()
                        .iter()
                        .enumerate()
                        .map(|(i, &b)| (ev.lit(b) as u32) << i)
                        .sum()
                };
                assert_eq!(read(&q), x / y, "{x}/{y}");
                assert_eq!(read(&r), x % y, "{x}%{y}");
            }
        }
    }

    #[test]
    fn slice_concat_replicate() {
        let mut g = Aig::new();
        let a = BitVec::input(&mut g, 8);
        let hi = a.slice(7, 4);
        let lo = a.slice(3, 0);
        let back = hi.concat(&lo);
        assert_eq!(back, a);
        let rep = lo.replicate(2);
        assert_eq!(rep.width(), 8);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut g = Aig::new();
        let a = BitVec::input(&mut g, 4);
        let b = BitVec::input(&mut g, 5);
        let _ = a.add(&mut g, &b);
    }
}
