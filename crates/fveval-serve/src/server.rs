//! The evaluation server: a non-blocking readiness-driven event loop
//! (epoll via [`crate::poll`]) in front of N engine shards.
//!
//! Connection model: one single-threaded event loop owns every socket.
//! Requests are parsed incrementally as bytes arrive and responses are
//! written as the socket accepts them, so a stalled or slow client
//! occupies nothing but its own buffer — it can never block another
//! connection. Long-poll job watches (`GET /v1/jobs/<id>?wait_ms=`)
//! park their connection inside the loop and are answered the moment
//! the job's observable state changes (a case group completes, the job
//! finishes) or the wait deadline passes.
//!
//! Evaluation model: [`ServerConfig::shards`] engine shards, each a
//! [`Shard`] owning a private [`fveval_core::EvalEngine`] drained by
//! one worker thread. Jobs route by the request's task-content digest
//! ([`TaskSetRef::route_digest`] mod shard count), so a design's
//! `CompiledDesign`/`ProofSession` state always lands on the same
//! shard. Every shard queue is bounded ([`ServerConfig::queue_depth`]);
//! a submit that finds its shard full is answered `429 Too Many
//! Requests` with a `Retry-After` header and a `retry_after_ms` body
//! hint. A maintenance thread compacts a fragmented [`VerdictStore`]
//! in the background whenever every shard is idle, instead of only at
//! shutdown.
//!
//! Determinism is unchanged from the single-engine server: shards
//! partition *jobs*, not cases, and every engine computes the same
//! verdicts — so a served table is byte-identical across `--shards 1`
//! and `--shards 4`, and a restarted server re-serves warm work from
//! the store with zero prover calls. After every finished job the
//! shard's newly computed verdicts are flushed to the store *before*
//! the job is reported done.

use crate::http;
use crate::json::{parse, Json};
use crate::poll::{Interest, Poller};
use crate::protocol::{EvalRequest, EvalResult, JobState, JobView, TaskSetRef};
use crate::shard::{shard_of, Shard};
use crate::store::VerdictStore;
use fv_core::ProverStats;
use fveval_core::{
    generated_task_specs, human_task_specs, machine_task_specs, CacheStats, EvalEngine,
};
use fveval_data::{
    generate_machine_cases, human_cases, machine_signal_table, signal_table_for, testbenches,
    MachineGenConfig, SuiteConfig,
};
use fveval_llm::{profiles, Backend, SimulatedModel, TaskSpec};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8642` (`:0` picks a free port).
    pub addr: String,
    /// Engine shards. Each owns a private engine and one worker
    /// thread; jobs route by task-content digest. Clamped to ≥ 1.
    pub shards: usize,
    /// Per-shard bound on `queued + in-flight` jobs; submissions
    /// beyond it are answered `429` with a retry hint. Clamped to ≥ 1.
    pub queue_depth: usize,
    /// Worker threads *inside* each engine (`--jobs`; 0 = all CPUs).
    pub engine_jobs: usize,
    /// Verdict-store directory; `None` disables persistence.
    pub cache_dir: Option<PathBuf>,
    /// How many finished jobs (with their full result payloads) stay
    /// addressable; older ones answer `404`. Must be at least 1 —
    /// [`Server::bind`] rejects `0`, which would evict every result
    /// before its poller could read it.
    pub retain_finished: usize,
    /// Design2SVA proving configuration for every shard engine (the
    /// CLI's `--engine` / `--prove-budget-ms` flags); the default is
    /// the plain bounded schedule.
    pub prove_cfg: fv_core::ProveConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8642".to_string(),
            shards: 2,
            queue_depth: 32,
            engine_jobs: 0,
            cache_dir: None,
            retain_finished: DEFAULT_RETAINED_FINISHED,
            prove_cfg: fv_core::ProveConfig::default(),
        }
    }
}

/// Default for [`ServerConfig::retain_finished`] (the `--retain` flag).
pub const DEFAULT_RETAINED_FINISHED: usize = 64;

/// Grace period between "drained" (shutdown requested, every shard
/// idle) and the event loop exiting, so clients polling a
/// just-finished job still collect its result.
const DRAIN_GRACE: Duration = Duration::from_millis(300);

/// Idle connections (no complete request, no pending response) are
/// dropped after this long.
const CONN_TIMEOUT: Duration = Duration::from_secs(10);

/// Event-loop tick: the upper bound on how long parked long-polls and
/// timeouts wait beyond their trigger.
const TICK_MS: i32 = 25;

/// Longest honored `?wait_ms=` long-poll window.
const MAX_WAIT_MS: u64 = 30_000;

/// A fragmented store (more segments than this) is compacted by the
/// maintenance thread at the next idle moment, and at shutdown.
const COMPACT_SEGMENT_THRESHOLD: usize = 4;

#[derive(Debug)]
struct Job {
    request: EvalRequest,
    state: JobState,
    shard: usize,
    cases_done: u64,
    cases_total: u64,
    /// Bumped on every observable change; parked long-polls answer
    /// when it moves past the version they last saw.
    version: u64,
    result: Option<EvalResult>,
    error: Option<String>,
}

#[derive(Debug, Default)]
struct State {
    jobs: HashMap<u64, Job>,
    /// Finished (done/failed) job ids in completion order; bounded by
    /// [`ServerConfig::retain_finished`] so a long-lived server cannot
    /// grow without limit — the oldest results are evicted first.
    finished: std::collections::VecDeque<u64>,
    next_id: u64,
}

#[derive(Debug)]
struct Shared {
    shards: Vec<Shard>,
    store: Mutex<Option<VerdictStore>>,
    state: Mutex<State>,
    shutdown: AtomicBool,
    started: Instant,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    compactions: AtomicU64,
    preloaded: usize,
    retain_finished: usize,
}

impl Shared {
    /// Shutdown requested and every shard is idle.
    fn drained(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) && self.shards.iter().all(Shard::idle)
    }

    fn bump(job: &mut Job) {
        job.version += 1;
    }

    fn view_of(&self, id: u64, job: &Job) -> JobView {
        JobView {
            id,
            state: job.state,
            position: match job.state {
                JobState::Queued => self.shards[job.shard].position_of(id),
                _ => None,
            },
            cases_done: job.cases_done,
            cases_total: job.cases_total,
            shard: Some(job.shard as u64),
            result: job.result.clone(),
            error: job.error.clone(),
        }
    }
}

/// What a routed request does to its connection.
enum Action {
    /// Write these bytes, then close.
    Respond(Vec<u8>),
    /// Hold the connection until the job changes or the deadline hits.
    Park {
        job: u64,
        deadline: Instant,
        version: u64,
    },
}

fn respond(status: u16, reason: &'static str, body: String) -> Action {
    Action::Respond(http::response_bytes(status, reason, &body, &[]))
}

/// One live connection in the event loop.
#[derive(Debug)]
enum ConnState {
    /// Accumulating request bytes.
    Reading(Vec<u8>),
    /// Draining a response.
    Writing { buf: Vec<u8>, pos: usize },
    /// A long-poll watcher waiting for job movement.
    Parked {
        job: u64,
        deadline: Instant,
        version: u64,
    },
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    state: ConnState,
    since: Instant,
}

/// The bound, not-yet-running server. Call [`Server::run`] to serve.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    maintenance: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, opens the verdict store, preloads every
    /// shard engine with the stored verdicts, and starts one worker
    /// thread per shard plus the store-maintenance thread.
    ///
    /// # Errors
    ///
    /// Returns a message if the address cannot be bound, the store
    /// cannot be opened, or `retain_finished` is `0`.
    pub fn bind(config: ServerConfig) -> Result<Server, String> {
        if config.retain_finished == 0 {
            return Err(
                "retain_finished must be at least 1 (a server that retains no finished \
                 jobs could never deliver a result)"
                    .to_string(),
            );
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        // The service always records span-duration histograms so
        // `/metrics` has latency data from the first request. Timing
        // is a side channel: results and counters are unaffected.
        fv_trace::set_timing_enabled(true);
        let mut preloaded = 0usize;
        let (store, records) = match &config.cache_dir {
            Some(dir) => {
                let store = VerdictStore::open(dir)
                    .map_err(|e| format!("cannot open store {}: {e}", dir.display()))?;
                let records = store.records();
                preloaded = records.len();
                (Some(store), records)
            }
            None => (None, Vec::new()),
        };
        let shards: Vec<Shard> = (0..config.shards.max(1))
            .map(|index| {
                let engine = EvalEngine::with_jobs(config.engine_jobs).with_d2s_runner(
                    fveval_core::Design2svaRunner::new().with_prove_config(config.prove_cfg),
                );
                // Every shard preloads the full store: routing decides
                // who serves a design, but warm restarts must answer
                // from disk no matter how the shard count changed.
                engine.load_verdicts(records.iter().cloned());
                Shard::new(index, engine, config.queue_depth)
            })
            .collect();
        let shared = Arc::new(Shared {
            shards,
            store: Mutex::new(store),
            state: Mutex::new(State {
                next_id: 1,
                ..State::default()
            }),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            preloaded,
            retain_finished: config.retain_finished,
        });
        let workers = (0..shared.shards.len())
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, index))
            })
            .collect();
        let maintenance = {
            let shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || maintenance_loop(&shared)))
        };
        Ok(Server {
            listener,
            shared,
            workers,
            maintenance,
        })
    }

    /// The bound address (useful after binding port `0`).
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the local address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// Number of verdicts preloaded into each shard from the
    /// persistent store.
    pub fn preloaded(&self) -> usize {
        self.shared.preloaded
    }

    /// Runs the event loop until a `POST /v1/shutdown` arrives and the
    /// shards drain (polls keep being answered through the drain so
    /// in-flight results stay reachable), then joins the workers and
    /// compacts a fragmented store.
    ///
    /// # Errors
    ///
    /// Returns a message on an unrecoverable listener or poller error.
    /// Broken individual connections are dropped and survived.
    pub fn run(self) -> Result<(), String> {
        let result = self.event_loop();
        // Wind down: wake every shard worker so it observes shutdown.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shared.shards {
            shard.wake();
        }
        for worker in self.workers {
            let _ = worker.join();
        }
        if let Some(maintenance) = self.maintenance {
            let _ = maintenance.join();
        }
        let mut store = self.shared.store.lock().expect("store poisoned");
        if let Some(store) = store.as_mut() {
            // Bound fragmentation across restarts: many short runs each
            // append one segment; fold them once at shutdown.
            if store.segment_count() > COMPACT_SEGMENT_THRESHOLD {
                store
                    .compact()
                    .map_err(|e| format!("compaction failed: {e}"))?;
            }
        }
        result
    }

    fn event_loop(&self) -> Result<(), String> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot unblock listener: {e}"))?;
        let poller = Poller::new().map_err(|e| format!("cannot create poller: {e}"))?;
        const LISTENER: u64 = 0;
        poller
            .register(self.listener.as_raw_fd(), LISTENER, Interest::Read)
            .map_err(|e| format!("cannot register listener: {e}"))?;
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_token: u64 = 1;
        let mut events = Vec::new();
        let mut drained_at: Option<Instant> = None;
        loop {
            poller
                .wait(&mut events, TICK_MS)
                .map_err(|e| format!("poll failed: {e}"))?;
            for event in events.clone() {
                if event.token == LISTENER {
                    self.accept_ready(&poller, &mut conns, &mut next_token);
                    continue;
                }
                let Some(conn) = conns.get_mut(&event.token) else {
                    continue;
                };
                let keep = if event.closed {
                    false
                } else {
                    step_conn(&self.shared, &poller, event.token, conn, event.writable)
                };
                if !keep {
                    drop_conn(&poller, &mut conns, event.token);
                }
            }
            self.tick(&poller, &mut conns);
            // Drain: once shutdown is requested and every shard is
            // idle, give pollers a grace window to collect results,
            // then exit (flushing any response still in the pipe).
            if self.shared.drained() {
                let since = *drained_at.get_or_insert_with(Instant::now);
                let writing = conns
                    .values()
                    .any(|c| matches!(c.state, ConnState::Writing { .. }));
                if since.elapsed() >= DRAIN_GRACE && !writing {
                    return Ok(());
                }
            } else {
                drained_at = None;
            }
        }
    }

    fn accept_ready(&self, poller: &Poller, conns: &mut HashMap<u64, Conn>, next_token: &mut u64) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = *next_token;
                    *next_token += 1;
                    if poller
                        .register(stream.as_raw_fd(), token, Interest::Read)
                        .is_err()
                    {
                        continue;
                    }
                    conns.insert(
                        token,
                        Conn {
                            stream,
                            state: ConnState::Reading(Vec::new()),
                            since: Instant::now(),
                        },
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("[serve] accept failed: {e}");
                    return;
                }
            }
        }
    }

    /// Timer pass: answer parked long-polls whose job moved or whose
    /// deadline passed, and drop idle connections.
    fn tick(&self, poller: &Poller, conns: &mut HashMap<u64, Conn>) {
        let now = Instant::now();
        let mut dead = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            match &conn.state {
                ConnState::Parked {
                    job,
                    deadline,
                    version,
                } => {
                    let (job, deadline, version) = (*job, *deadline, *version);
                    let answer = {
                        let state = self.shared.state.lock().expect("state poisoned");
                        match state.jobs.get(&job) {
                            None => Some(Action::Respond(http::response_bytes(
                                404,
                                "Not Found",
                                &error_body(&format!("no job {job}")),
                                &[],
                            ))),
                            Some(entry) => {
                                let finished =
                                    matches!(entry.state, JobState::Done | JobState::Failed);
                                if finished || entry.version != version || now >= deadline {
                                    Some(respond(
                                        200,
                                        "OK",
                                        self.shared.view_of(job, entry).encode().encode(),
                                    ))
                                } else {
                                    None
                                }
                            }
                        }
                    };
                    if let Some(Action::Respond(bytes)) = answer {
                        if !start_writing(&self.shared, poller, token, conn, bytes) {
                            dead.push(token);
                        }
                    }
                }
                ConnState::Reading(_) | ConnState::Writing { .. } => {
                    if now.duration_since(conn.since) > CONN_TIMEOUT {
                        dead.push(token);
                    }
                }
            }
        }
        for token in dead {
            drop_conn(poller, conns, token);
        }
    }
}

fn drop_conn(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        poller.deregister(conn.stream.as_raw_fd());
    }
}

/// Advances one connection on readiness. Returns `false` when the
/// connection should be dropped.
fn step_conn(
    shared: &Arc<Shared>,
    poller: &Poller,
    token: u64,
    conn: &mut Conn,
    writable: bool,
) -> bool {
    match &mut conn.state {
        ConnState::Reading(buf) => {
            let mut chunk = [0u8; 4096];
            let mut saw_eof = false;
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        saw_eof = true;
                        break;
                    }
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
            match http::try_parse_request(buf) {
                Ok(Some((request, _consumed))) => {
                    let action = route(shared, &request);
                    apply_action(shared, poller, token, conn, action)
                }
                Ok(None) => {
                    // Liveness probes connect and close without a
                    // request; a mid-request close is unanswerable.
                    !saw_eof
                }
                Err(e) => {
                    let bytes = http::response_bytes(
                        400,
                        "Bad Request",
                        &error_body(&format!("bad request: {e}")),
                        &[],
                    );
                    start_writing(shared, poller, token, conn, bytes)
                }
            }
        }
        ConnState::Writing { buf, pos } => {
            if !writable {
                return true;
            }
            loop {
                match conn.stream.write(&buf[*pos..]) {
                    Ok(0) => return false,
                    Ok(n) => {
                        *pos += n;
                        if *pos >= buf.len() {
                            // Connection: close — response delivered.
                            let _ = conn.stream.flush();
                            return false;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
        }
        ConnState::Parked { .. } => {
            // The only read event a parked watcher produces is its
            // peer hanging up; probe and drop if so. (Answers come
            // from the tick pass, not from readiness.)
            let mut probe = [0u8; 64];
            match conn.stream.read(&mut probe) {
                Ok(0) => false,
                Ok(_) => true,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => true,
                Err(_) => false,
            }
        }
    }
}

fn apply_action(
    shared: &Arc<Shared>,
    poller: &Poller,
    token: u64,
    conn: &mut Conn,
    action: Action,
) -> bool {
    match action {
        Action::Respond(bytes) => start_writing(shared, poller, token, conn, bytes),
        Action::Park {
            job,
            deadline,
            version,
        } => {
            conn.state = ConnState::Parked {
                job,
                deadline,
                version,
            };
            true
        }
    }
}

/// Switches a connection to response-writing mode, attempting the
/// first write eagerly (most responses fit the socket buffer whole).
fn start_writing(
    shared: &Arc<Shared>,
    poller: &Poller,
    token: u64,
    conn: &mut Conn,
    bytes: Vec<u8>,
) -> bool {
    conn.state = ConnState::Writing { buf: bytes, pos: 0 };
    conn.since = Instant::now();
    if poller
        .rearm(conn.stream.as_raw_fd(), token, Interest::Write)
        .is_err()
    {
        return false;
    }
    // Eager first write: if it completes, the connection is done.
    step_conn(shared, poller, token, conn, true)
}

fn error_body(message: &str) -> String {
    Json::obj([("error", message.into())]).encode()
}

fn route(shared: &Arc<Shared>, request: &http::Request) -> Action {
    let _span = fv_trace::span!("serve.request", path = request.path.as_str());
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/eval") => submit(shared, &request.body),
        ("GET", "/v1/stats") => respond(200, "OK", stats_json(shared).encode()),
        ("GET", "/metrics") => Action::Respond(http::response_bytes_typed(
            200,
            "OK",
            fv_trace::prometheus::CONTENT_TYPE,
            &metrics_text(shared),
            &[],
        )),
        ("POST", "/v1/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            for shard in &shared.shards {
                shard.wake();
            }
            respond(200, "OK", Json::obj([("ok", true.into())]).encode())
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            match path["/v1/jobs/".len()..].parse::<u64>() {
                Ok(id) => job_status(shared, id, request.query_param("wait_ms")),
                Err(_) => respond(400, "Bad Request", error_body("job ids are integers")),
            }
        }
        _ => respond(
            404,
            "Not Found",
            error_body(&format!("no route for {} {}", request.method, request.path)),
        ),
    }
}

fn submit(shared: &Arc<Shared>, body: &[u8]) -> Action {
    if shared.shutdown.load(Ordering::SeqCst) {
        return respond(
            503,
            "Service Unavailable",
            error_body("server is draining; submissions are closed"),
        );
    }
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return respond(400, "Bad Request", error_body("body is not UTF-8")),
    };
    let request = match parse(text).and_then(|v| EvalRequest::decode(&v)) {
        Ok(r) => r,
        Err(e) => return respond(400, "Bad Request", error_body(&e)),
    };
    // Reject what a worker could never evaluate while the client is
    // still connected, instead of parking a doomed job in the queue.
    if let Err(e) = resolve_backends(&request.models) {
        return respond(400, "Bad Request", error_body(&e));
    }
    if let TaskSetRef::Suite { families, .. } = &request.tasks {
        for family in families {
            if fveval_gen::generator(family).is_none() {
                return respond(
                    400,
                    "Bad Request",
                    error_body(&format!("unknown family '{family}'")),
                );
            }
        }
    }
    let shard_idx = shard_of(request.tasks.route_digest(), shared.shards.len());
    let shard = &shared.shards[shard_idx];
    let mut state = shared.state.lock().expect("state poisoned");
    let id = state.next_id;
    if !shard.try_enqueue(id) {
        drop(state);
        let hint = shard.retry_after_ms();
        let body = Json::obj([
            ("error", "shard queue is full; retry later".into()),
            ("shard", shard_idx.into()),
            ("retry_after_ms", hint.into()),
        ])
        .encode();
        return Action::Respond(http::response_bytes(
            429,
            "Too Many Requests",
            &body,
            &[("Retry-After", hint.div_ceil(1000).max(1).to_string())],
        ));
    }
    state.next_id += 1;
    state.jobs.insert(
        id,
        Job {
            request,
            state: JobState::Queued,
            shard: shard_idx,
            cases_done: 0,
            cases_total: 0,
            version: 0,
            result: None,
            error: None,
        },
    );
    drop(state);
    respond(
        200,
        "OK",
        Json::obj([("job", id.into()), ("shard", shard_idx.into())]).encode(),
    )
}

fn job_status(shared: &Arc<Shared>, id: u64, wait_ms: Option<&str>) -> Action {
    let state = shared.state.lock().expect("state poisoned");
    let Some(job) = state.jobs.get(&id) else {
        return respond(404, "Not Found", error_body(&format!("no job {id}")));
    };
    let wait_ms = wait_ms.and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
    let finished = matches!(job.state, JobState::Done | JobState::Failed);
    if wait_ms == 0 || finished {
        return respond(200, "OK", shared.view_of(id, job).encode().encode());
    }
    Action::Park {
        job: id,
        deadline: Instant::now() + Duration::from_millis(wait_ms.min(MAX_WAIT_MS)),
        version: job.version,
    }
}

fn stats_json(shared: &Arc<Shared>) -> Json {
    // Aggregate across shards: the cache/prover blocks keep their
    // pre-shard key paths, computed as the merge of every shard.
    let mut cache = CacheStats::default();
    let mut prover = ProverStats::default();
    for shard in &shared.shards {
        cache.merge(&shard.engine.cache_stats());
        prover.merge(&shard.engine.prover_stats());
    }
    let (queued, running): (usize, usize) = shared
        .shards
        .iter()
        .fold((0, 0), |(q, r), s| (q + s.depth(), r + s.in_flight()));
    let submitted: u64 = shared.shards.iter().map(Shard::accepted).sum();
    let rejected: u64 = shared.shards.iter().map(Shard::rejected).sum();
    let store = shared.store.lock().expect("store poisoned");
    let store_json = match store.as_ref() {
        Some(store) => Json::obj([
            ("entries", store.len().into()),
            ("segments", store.segment_count().into()),
            ("torn_lines", store.torn_lines().into()),
            ("preloaded", shared.preloaded.into()),
            (
                "compactions",
                shared.compactions.load(Ordering::Relaxed).into(),
            ),
        ]),
        None => Json::Null,
    };
    drop(store);
    let shard_rows: Vec<(String, Json)> = shared
        .shards
        .iter()
        .map(|shard| {
            let shard_cache = shard.engine.cache_stats();
            (
                shard.index.to_string(),
                Json::obj([
                    ("depth", shard.depth().into()),
                    ("in_flight", shard.in_flight().into()),
                    ("accepted", shard.accepted().into()),
                    ("served", shard.served().into()),
                    ("failed", shard.failed().into()),
                    ("rejected", shard.rejected().into()),
                    ("retry_after_ms", shard.retry_after_ms().into()),
                    (
                        "cache",
                        Json::obj([
                            ("hits", shard_cache.hits.into()),
                            ("persisted_hits", shard_cache.persisted_hits.into()),
                            ("misses", shard_cache.misses.into()),
                            ("entries", shard_cache.entries.into()),
                            (
                                "digest_reuse",
                                shard.engine.prover_stats().digest_reuse.into(),
                            ),
                        ]),
                    ),
                    (
                        "prover_queries",
                        shard.engine.prover_stats().queries().into(),
                    ),
                ]),
            )
        })
        .collect();
    Json::obj([
        ("uptime_secs", shared.started.elapsed().as_secs_f64().into()),
        (
            "serve",
            Json::obj([
                ("shards", shared.shards.len().into()),
                ("queue_depth", shared.shards[0].queue_depth().into()),
                ("retain_finished", shared.retain_finished.into()),
            ]),
        ),
        (
            "jobs",
            Json::obj([
                ("submitted", submitted.into()),
                ("queued", queued.into()),
                ("running", running.into()),
                ("done", shared.jobs_done.load(Ordering::Relaxed).into()),
                ("failed", shared.jobs_failed.load(Ordering::Relaxed).into()),
                ("rejected", rejected.into()),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("hits", cache.hits.into()),
                ("persisted_hits", cache.persisted_hits.into()),
                ("misses", cache.misses.into()),
                ("entries", cache.entries.into()),
                ("persisted_hit_rate", cache.persisted_hit_rate().into()),
                ("digest_reuse", prover.digest_reuse.into()),
            ]),
        ),
        (
            "prover",
            Json::obj([
                ("queries", prover.queries().into()),
                ("sat_calls", prover.sat_calls.into()),
                ("sim_kills", prover.sim_kills.into()),
                ("ternary_kills", prover.ternary_kills.into()),
                ("solver_reuse_hits", prover.solver_reuse_hits.into()),
                ("sessions_opened", prover.sessions_opened.into()),
                ("session_checks", prover.session_checks.into()),
                ("unroll_reuse_hits", prover.unroll_reuse_hits.into()),
                ("pdr_frames", prover.pdr_frames.into()),
                ("pdr_clauses_learned", prover.pdr_clauses_learned.into()),
                ("pdr_wins", prover.pdr_wins.into()),
                ("bounded_wins", prover.bounded_wins.into()),
                ("engine_cancellations", prover.engine_cancellations.into()),
            ]),
        ),
        ("store", store_json),
        ("shards", Json::Obj(shard_rows)),
        ("hist", hist_json()),
    ])
}

/// The fv-trace registry's histograms as JSON for `/v1/stats`:
/// `name → {count, sum, buckets: [[le, n], …]}` with only nonzero
/// buckets listed, ordered by ascending `le`. Names come from a
/// `BTreeMap`, so the block is always sorted.
fn hist_json() -> Json {
    let snap = fv_trace::metrics::snapshot();
    let rows: Vec<(String, Json)> = snap
        .histograms
        .iter()
        .map(|(name, hist)| {
            let buckets: Vec<Json> = hist
                .buckets
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n != 0)
                .map(|(i, &n)| Json::Arr(vec![fv_trace::metrics::bucket_le(i).into(), n.into()]))
                .collect();
            (
                name.clone(),
                Json::obj([
                    ("count", hist.count.into()),
                    ("sum", hist.sum.into()),
                    ("buckets", Json::Arr(buckets)),
                ]),
            )
        })
        .collect();
    Json::Obj(rows)
}

/// Renders the Prometheus `/metrics` exposition. Prover and cache
/// totals are computed from the *same* merged shard-engine counters as
/// [`stats_json`], so `/metrics`, `/v1/stats`, and a direct run's
/// `prover_stats.csv` for the same work reconcile exactly. Per-shard
/// series carry a `shard` label; the trailing registry snapshot adds
/// the span-duration histograms.
fn metrics_text(shared: &Arc<Shared>) -> String {
    let mut cache = CacheStats::default();
    let mut prover = ProverStats::default();
    for shard in &shared.shards {
        cache.merge(&shard.engine.cache_stats());
        prover.merge(&shard.engine.prover_stats());
    }
    let mut prom = fv_trace::prometheus::PromText::new();
    prom.counter("prover.queries", &[], prover.queries());
    prom.counter("prover.sat_calls", &[], prover.sat_calls);
    prom.counter("prover.sim_kills", &[], prover.sim_kills);
    prom.counter("prover.ternary_kills", &[], prover.ternary_kills);
    prom.counter("prover.solver_reuse_hits", &[], prover.solver_reuse_hits);
    prom.counter("prover.sessions_opened", &[], prover.sessions_opened);
    prom.counter("prover.session_checks", &[], prover.session_checks);
    prom.counter("prover.unroll_reuse_hits", &[], prover.unroll_reuse_hits);
    prom.counter("prover.pdr_frames", &[], prover.pdr_frames);
    prom.counter(
        "prover.pdr_clauses_learned",
        &[],
        prover.pdr_clauses_learned,
    );
    prom.counter("prover.pdr_wins", &[], prover.pdr_wins);
    prom.counter("prover.bounded_wins", &[], prover.bounded_wins);
    prom.counter(
        "prover.engine_cancellations",
        &[],
        prover.engine_cancellations,
    );
    prom.counter("cache.digest_reuse", &[], prover.digest_reuse);
    prom.counter("cache.hits", &[], cache.hits);
    prom.counter("cache.persisted_hits", &[], cache.persisted_hits);
    prom.counter("cache.misses", &[], cache.misses);
    prom.gauge("cache.entries", &[], cache.entries as i64);
    let (queued, running): (usize, usize) = shared
        .shards
        .iter()
        .fold((0, 0), |(q, r), s| (q + s.depth(), r + s.in_flight()));
    prom.counter(
        "jobs.submitted",
        &[],
        shared.shards.iter().map(Shard::accepted).sum::<u64>(),
    );
    prom.counter("jobs.done", &[], shared.jobs_done.load(Ordering::Relaxed));
    prom.counter(
        "jobs.failed",
        &[],
        shared.jobs_failed.load(Ordering::Relaxed),
    );
    prom.counter(
        "jobs.rejected",
        &[],
        shared.shards.iter().map(Shard::rejected).sum::<u64>(),
    );
    prom.gauge("jobs.queued", &[], queued as i64);
    prom.gauge("jobs.running", &[], running as i64);
    prom.gauge(
        "uptime.seconds",
        &[],
        shared.started.elapsed().as_secs() as i64,
    );
    if let Some(store) = shared.store.lock().expect("store poisoned").as_ref() {
        prom.gauge("store.entries", &[], store.len() as i64);
        prom.gauge("store.segments", &[], store.segment_count() as i64);
        prom.counter(
            "store.compactions",
            &[],
            shared.compactions.load(Ordering::Relaxed),
        );
    }
    for shard in &shared.shards {
        let label = shard.index.to_string();
        let labels: [(&str, &str); 1] = [("shard", label.as_str())];
        let shard_prover = shard.engine.prover_stats();
        let shard_cache = shard.engine.cache_stats();
        prom.counter("shard.accepted", &labels, shard.accepted());
        prom.counter("shard.served", &labels, shard.served());
        prom.counter("shard.failed", &labels, shard.failed());
        prom.counter("shard.rejected", &labels, shard.rejected());
        prom.gauge("shard.depth", &labels, shard.depth() as i64);
        prom.gauge("shard.in_flight", &labels, shard.in_flight() as i64);
        prom.counter("shard.prover_queries", &labels, shard_prover.queries());
        prom.counter("shard.prover_sat_calls", &labels, shard_prover.sat_calls);
        prom.counter(
            "shard.cache_hits",
            &labels,
            shard_cache.hits + shard_cache.persisted_hits,
        );
        prom.counter("shard.cache_misses", &labels, shard_cache.misses);
    }
    // Everything the fv-trace registry collected: span-duration
    // histograms (serve.job, store.flush, prove.check, sat.solve, …)
    // and any trace-layer counters.
    prom.snapshot(&fv_trace::metrics::snapshot());
    prom.finish()
}

/// One shard's worker: pops queued job ids, evaluates them on the
/// shard-private engine with per-case progress reporting, and flushes
/// freshly computed verdicts to the store *before* marking the job
/// done — so a client that sees `done` can rely on the verdicts
/// surviving a `kill -9` right after.
fn worker_loop(shared: &Arc<Shared>, index: usize) {
    let shard = &shared.shards[index];
    loop {
        let Some(id) = shard.pop(&shared.shutdown) else {
            return;
        };
        let started = Instant::now();
        let request = {
            let mut state = shared.state.lock().expect("state poisoned");
            state.jobs.get_mut(&id).map(|job| {
                job.state = JobState::Running;
                Shared::bump(job);
                job.request.clone()
            })
        };
        let outcome = {
            let _span = fv_trace::span!("serve.job", shard = index, job = id);
            match request {
                Some(request) => run_job(shared, shard, id, &request),
                // Evicted before it ran (tiny retain bound): nothing to do.
                None => Err("job evicted before it ran".to_string()),
            }
        };
        let fresh = shard.engine.take_unpersisted();
        if let Some(store) = shared.store.lock().expect("store poisoned").as_mut() {
            let _span = fv_trace::span!("store.flush", shard = index, records = fresh.len());
            fv_trace::metrics::counter_add("serve.flushes", 1);
            if let Err(e) = store.append(&fresh) {
                eprintln!("[serve] store flush failed: {e}");
            }
        }
        let ok = outcome.is_ok();
        let mut state = shared.state.lock().expect("state poisoned");
        if let Some(job) = state.jobs.get_mut(&id) {
            match outcome {
                Ok(result) => {
                    job.state = JobState::Done;
                    job.cases_done = job.cases_total;
                    job.result = Some(result);
                    shared.jobs_done.fetch_add(1, Ordering::Relaxed);
                }
                Err(error) => {
                    job.state = JobState::Failed;
                    job.error = Some(error);
                    shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            Shared::bump(job);
        }
        // Bound memory: retain only the most recent finished results.
        state.finished.push_back(id);
        while state.finished.len() > shared.retain_finished {
            if let Some(evicted) = state.finished.pop_front() {
                state.jobs.remove(&evicted);
            }
        }
        drop(state);
        shard.note_finished(ok, started.elapsed());
    }
}

fn run_job(
    shared: &Arc<Shared>,
    shard: &Shard,
    id: u64,
    request: &EvalRequest,
) -> Result<EvalResult, String> {
    let tasks = build_tasks(&request.tasks)?;
    let models = resolve_backends(&request.models)?;
    {
        let mut state = shared.state.lock().expect("state poisoned");
        if let Some(job) = state.jobs.get_mut(&id) {
            job.cases_total = tasks.len() as u64;
            Shared::bump(job);
        }
    }
    let backends: Vec<&dyn Backend> = models.iter().map(|m| m as &dyn Backend).collect();
    let progress = |done: usize, _total: usize| {
        let mut state = shared.state.lock().expect("state poisoned");
        if let Some(job) = state.jobs.get_mut(&id) {
            // Progress may race across engine workers; cases_done only
            // moves forward.
            if done as u64 > job.cases_done {
                job.cases_done = done as u64;
                Shared::bump(job);
            }
        }
    };
    let rows = shard.engine.run_matrix_with_progress(
        &backends,
        &tasks,
        &request.cfg,
        request.samples.max(1),
        &progress,
    );
    Ok(EvalResult {
        models: models
            .iter()
            .map(|m| m.name().to_string())
            .zip(rows)
            .collect(),
    })
}

/// The background store maintainer: whenever the store has fragmented
/// past [`COMPACT_SEGMENT_THRESHOLD`] segments and every shard is
/// idle, fold it into one segment — while the server keeps serving.
/// Compaction refreshes from disk first (see
/// [`VerdictStore::compact`]), so a flush racing the fold can never be
/// shadowed.
fn maintenance_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
        if !shared.shards.iter().all(Shard::idle) {
            continue;
        }
        let mut store = shared.store.lock().expect("store poisoned");
        if let Some(store) = store.as_mut() {
            if store.segment_count() > COMPACT_SEGMENT_THRESHOLD {
                match store.compact() {
                    Ok(()) => {
                        shared.compactions.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => eprintln!("[serve] background compaction failed: {e}"),
                }
            }
        }
    }
}

/// Materializes a task-set reference into an engine work-list. Public
/// so the direct-path CLI and the integration tests evaluate *the
/// same* task list a server would, making byte-identical comparisons
/// meaningful.
///
/// # Errors
///
/// Returns a message when generated collateral fails to bind (a
/// generator bug) or a family name is unknown.
pub fn build_tasks(tasks: &TaskSetRef) -> Result<Vec<Arc<TaskSpec>>, String> {
    match tasks {
        TaskSetRef::Human => {
            let tables: HashMap<&str, _> = testbenches()
                .into_iter()
                .map(|tb| {
                    let table = signal_table_for(&tb)?;
                    Ok((tb.name, table))
                })
                .collect::<Result<_, String>>()?;
            Ok(human_task_specs(&human_cases(), &tables))
        }
        TaskSetRef::Machine { count, seed } => {
            let cases = generate_machine_cases(MachineGenConfig {
                count: *count,
                seed: *seed,
                ..Default::default()
            });
            Ok(machine_task_specs(&cases, &machine_signal_table()))
        }
        TaskSetRef::Suite {
            families,
            per_family,
            seed,
            depth,
            width,
            mutations,
        } => {
            for family in families {
                if fveval_gen::generator(family).is_none() {
                    return Err(format!("unknown family '{family}'"));
                }
            }
            let set = fveval_data::generated_task_set(&SuiteConfig {
                families: families.clone(),
                per_family: *per_family,
                seed: *seed,
                depth: *depth,
                width: *width,
                mutations: *mutations,
            })?;
            Ok(generated_task_specs(&set))
        }
    }
}

/// Resolves a model roster by name (empty = the full profile roster).
///
/// # Errors
///
/// Returns a message naming the first unknown model.
pub fn resolve_backends(names: &[String]) -> Result<Vec<SimulatedModel>, String> {
    let roster = profiles();
    if names.is_empty() {
        return Ok(roster);
    }
    names
        .iter()
        .map(|name| {
            roster
                .iter()
                .find(|m| m.name() == name)
                .cloned()
                .ok_or_else(|| {
                    format!(
                        "unknown model '{name}' (known: {})",
                        roster
                            .iter()
                            .map(|m| m.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
        })
        .collect()
}
