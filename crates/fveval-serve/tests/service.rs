//! End-to-end service tests: concurrent clients against a live sharded
//! server are answered byte-identically to a direct `EvalEngine` run
//! (and identically across shard counts), a killed + restarted server
//! re-serves warm work entirely from the persistent verdict store with
//! zero prover calls, full shard queues push back with `429` +
//! `Retry-After`, and long-polls stream per-case progress.

use fveval_core::{CaseEvals, EvalEngine};
use fveval_llm::{Backend, InferenceConfig};
use fveval_serve::testutil::{run_load, LoadConfig, TempDir};
use fveval_serve::{
    build_tasks, resolve_backends, Client, EvalRequest, Server, ServerConfig, SubmitOutcome,
    TaskSetRef,
};
use std::path::PathBuf;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn start(cache_dir: Option<PathBuf>) -> (Client, std::thread::JoinHandle<Result<(), String>>) {
    start_sharded(2, 16, cache_dir)
}

fn start_sharded(
    shards: usize,
    queue_depth: usize,
    cache_dir: Option<PathBuf>,
) -> (Client, std::thread::JoinHandle<Result<(), String>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards,
        queue_depth,
        engine_jobs: 2,
        cache_dir,
        ..ServerConfig::default()
    })
    .expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (Client::new(addr), handle)
}

fn suite_request() -> EvalRequest {
    EvalRequest {
        tasks: TaskSetRef::Suite {
            families: vec!["fifo".to_string(), "gray".to_string()],
            per_family: 1,
            seed: 11,
            depth: None,
            width: None,
            mutations: 1,
        },
        models: vec!["gpt-4o".to_string(), "llama-3.1-70b".to_string()],
        cfg: InferenceConfig::greedy(),
        samples: 2,
    }
}

/// What a direct (no server) engine run produces for a request.
fn direct_rows(request: &EvalRequest) -> Vec<(String, Vec<CaseEvals>)> {
    let tasks = build_tasks(&request.tasks).expect("tasks build");
    let models = resolve_backends(&request.models).expect("models resolve");
    let backends: Vec<&dyn Backend> = models.iter().map(|m| m as &dyn Backend).collect();
    let rows =
        EvalEngine::with_jobs(2).run_matrix(&backends, &tasks, &request.cfg, request.samples);
    models
        .iter()
        .map(|m| m.name().to_string())
        .zip(rows)
        .collect()
}

#[test]
fn concurrent_clients_get_direct_engine_results() {
    let (client, server) = start(None);
    let suite = suite_request();
    let machine = EvalRequest {
        tasks: TaskSetRef::Machine { count: 8, seed: 5 },
        models: vec!["gpt-4o".to_string()],
        cfg: InferenceConfig::sampling().with_shots(3),
        samples: 3,
    };
    // Three clients race: two submit the same suite eval, one submits
    // a different machine eval, all poll concurrently.
    let requests = [suite.clone(), suite.clone(), machine.clone()];
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|request| {
                let client = client.clone();
                scope.spawn(move || {
                    let id = client.submit(&request.clone())?;
                    let view = client.wait(id, WAIT)?;
                    view.result.ok_or_else(|| "done without result".to_string())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    client.shutdown().expect("shutdown accepted");
    server.join().unwrap().expect("clean server exit");

    let suite_expected = direct_rows(&suite);
    let machine_expected = direct_rows(&machine);
    for (i, result) in results.iter().enumerate() {
        let result = result.as_ref().expect("job succeeded");
        let expected = if i < 2 {
            &suite_expected
        } else {
            &machine_expected
        };
        assert_eq!(&result.models, expected, "client {i} matches a direct run");
    }
}

#[test]
fn restart_serves_warm_work_from_store_with_zero_prover_calls() {
    let tmp = TempDir::new("restart");
    let request = suite_request();

    // Cold server: compute, persist, stop.
    let (client, server) = start(Some(tmp.path().to_path_buf()));
    let id = client.submit(&request).expect("submit");
    let cold = client.wait(id, WAIT).expect("cold job").result.unwrap();
    let stats = client.stats().expect("stats");
    let prover_queries = stats
        .get("prover")
        .and_then(|p| p.get("queries"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(prover_queries > 0, "cold run reaches the prover");
    assert_eq!(
        stats
            .get("cache")
            .and_then(|c| c.get("persisted_hits"))
            .and_then(|v| v.as_u64()),
        Some(0),
        "nothing was persisted before the cold run"
    );
    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("clean exit");

    // Warm server on the same store: identical verdicts, all lookups
    // answered from persisted entries, zero prover calls.
    let (client, server) = start(Some(tmp.path().to_path_buf()));
    let id = client.submit(&request).expect("warm submit");
    let warm = client.wait(id, WAIT).expect("warm job").result.unwrap();
    assert_eq!(warm, cold, "restart changes nothing");
    let stats = client.stats().expect("warm stats");
    let cache = stats.get("cache").unwrap();
    let rate = cache
        .get("persisted_hit_rate")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(rate >= 0.9, "warm run is served from the store ({rate})");
    assert_eq!(
        cache.get("misses").and_then(|v| v.as_u64()),
        Some(0),
        "nothing is recomputed"
    );
    assert_eq!(
        stats
            .get("prover")
            .and_then(|p| p.get("queries"))
            .and_then(|v| v.as_u64()),
        Some(0),
        "zero SAT/sim/ternary work on the warm path"
    );
    let store = stats.get("store").unwrap();
    assert!(store.get("preloaded").and_then(|v| v.as_u64()).unwrap() > 0);
    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("clean exit");
}

#[test]
fn shutdown_drains_in_flight_jobs_and_their_results_stay_reachable() {
    let (client, server) = start(None);
    let id = client.submit(&suite_request()).expect("submit");
    // Stop while the job is still in flight.
    client.shutdown().expect("shutdown accepted");
    // New submissions are rejected during the drain…
    let err = client.submit(&suite_request()).unwrap_err();
    assert!(
        err.contains("503") || err.contains("draining"),
        "drain rejects new work: {err}"
    );
    // …but polls keep being served until the queue empties, so the
    // in-flight job's result is still collectable.
    let view = client.wait(id, WAIT).expect("drained job completes");
    assert!(view.result.is_some());
    server.join().unwrap().expect("clean exit");
}

#[test]
fn bad_requests_are_rejected_and_jobs_are_addressable() {
    let (client, server) = start(None);
    // Unknown model and unknown family are rejected at submit time.
    let mut bad_model = suite_request();
    bad_model.models = vec!["gpt-17".to_string()];
    let err = client.submit(&bad_model).unwrap_err();
    assert!(err.contains("unknown model"), "{err}");
    let bad_family = EvalRequest {
        tasks: TaskSetRef::Suite {
            families: vec!["nonexistent".to_string()],
            per_family: 1,
            seed: 1,
            depth: None,
            width: None,
            mutations: 0,
        },
        ..suite_request()
    };
    let err = client.submit(&bad_family).unwrap_err();
    assert!(err.contains("unknown family"), "{err}");
    // Unknown job ids are a 404, not a hang.
    let err = client.job(123456).unwrap_err();
    assert!(err.contains("404"), "{err}");
    // A tiny real job still runs to completion on the same server.
    let small = EvalRequest {
        tasks: TaskSetRef::Machine { count: 2, seed: 1 },
        models: vec!["gpt-4o".to_string()],
        cfg: InferenceConfig::greedy(),
        samples: 1,
    };
    let id = client.submit(&small).expect("submit");
    let view = client.wait(id, WAIT).expect("completes");
    assert_eq!(view.result.unwrap().models[0].1.len(), 2);
    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("clean exit");
}

#[test]
fn retention_bound_is_configurable_and_rejects_zero() {
    // `retain_finished: 0` is a configuration error, not a silent
    // result-eating server.
    let err = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        retain_finished: 0,
        ..ServerConfig::default()
    })
    .unwrap_err();
    assert!(err.contains("retain"), "{err}");

    // With `retain_finished: 1`, finishing a second job evicts the
    // first result (404) while the newest stays addressable.
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: 1,
        queue_depth: 16,
        engine_jobs: 1,
        cache_dir: None,
        retain_finished: 1,
        prove_cfg: fv_core::ProveConfig::default(),
    })
    .expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    let client = Client::new(addr);
    let small = |seed| EvalRequest {
        tasks: TaskSetRef::Machine { count: 2, seed },
        models: vec!["gpt-4o".to_string()],
        cfg: InferenceConfig::greedy(),
        samples: 1,
    };
    let first = client.submit(&small(1)).expect("submit");
    client.wait(first, WAIT).expect("first completes");
    let second = client.submit(&small(2)).expect("submit");
    client.wait(second, WAIT).expect("second completes");
    let err = client.job(first).unwrap_err();
    assert!(err.contains("404"), "evicted result answers 404: {err}");
    assert!(client.job(second).expect("retained").result.is_some());
    client.shutdown().expect("shutdown");
    handle.join().unwrap().expect("clean exit");
}

#[test]
fn full_shard_queue_answers_429_and_recovers_after_drain() {
    // One shard, bound 1: the first job occupies the only slot, so the
    // second submit must bounce with a retry hint — deterministically.
    let (client, server) = start_sharded(1, 1, None);
    let first = match client.try_submit(&suite_request()).expect("first submit") {
        SubmitOutcome::Accepted { job, shard } => {
            assert_eq!(shard, Some(0), "one shard routes everything to 0");
            job
        }
        SubmitOutcome::Busy { .. } => panic!("an empty shard accepted nothing"),
    };
    let small = EvalRequest {
        tasks: TaskSetRef::Machine { count: 2, seed: 3 },
        models: vec!["gpt-4o".to_string()],
        cfg: InferenceConfig::greedy(),
        samples: 1,
    };
    match client.try_submit(&small).expect("second submit") {
        SubmitOutcome::Busy { retry_after_ms } => {
            assert!(
                retry_after_ms >= 50,
                "hint honors its floor: {retry_after_ms}"
            )
        }
        SubmitOutcome::Accepted { .. } => panic!("a full shard queue accepted a job"),
    }
    // A plain submit surfaces the same rejection as an HTTP 429 error.
    let err = client.submit(&small).unwrap_err();
    assert!(err.contains("429"), "{err}");
    // Once the occupying job drains, the retried submit is accepted.
    client.wait(first, WAIT).expect("first job completes");
    let id = client
        .submit_retrying(&small, WAIT)
        .expect("accepted after drain");
    client.wait(id, WAIT).expect("second job completes");
    let stats = client.stats().expect("stats");
    let rejected = stats
        .get("jobs")
        .and_then(|j| j.get("rejected"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(rejected >= 2, "both bounces are counted: {rejected}");
    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("clean exit");
}

#[test]
fn long_polls_stream_progress_and_finish_with_full_counts() {
    let (client, server) = start(None);
    let request = suite_request();
    let id = client.submit(&request).expect("submit");
    // Long-poll to completion, recording every progress frame. Each
    // frame must be monotone in cases_done and bounded by cases_total.
    let mut frames: Vec<(u64, u64)> = Vec::new();
    let view = loop {
        let view = client.job_wait(id, 2_000).expect("long-poll");
        frames.push((view.cases_done, view.cases_total));
        match view.state {
            fveval_serve::JobState::Done => break view,
            fveval_serve::JobState::Failed => panic!("job failed: {:?}", view.error),
            _ => assert!(frames.len() < 10_000, "long-poll never settles"),
        }
    };
    for pair in frames.windows(2) {
        assert!(pair[0].0 <= pair[1].0, "progress is monotone: {frames:?}");
    }
    for &(done, total) in &frames {
        assert!(total == 0 || done <= total, "done within total: {frames:?}");
    }
    let total = view.cases_total;
    assert!(total > 0, "a finished job knows its case count");
    assert_eq!(view.cases_done, total, "finished jobs report full progress");
    assert!(view.shard.is_some(), "finished frames name their shard");
    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("clean exit");
}

#[test]
fn shard_counts_do_not_change_served_bytes() {
    // The same request set against 1-shard and 4-shard servers must
    // produce byte-identical result tables (routing is an affinity
    // optimization, never a semantic one).
    let templates = vec![
        suite_request(),
        EvalRequest {
            tasks: TaskSetRef::Machine { count: 4, seed: 9 },
            models: vec!["gpt-4o".to_string(), "gemini-1.5-flash".to_string()],
            cfg: InferenceConfig::greedy(),
            samples: 1,
        },
    ];
    let mut digests = Vec::new();
    for shards in [1usize, 4] {
        let (client, server) = start_sharded(shards, 16, None);
        let cfg = LoadConfig::saturating(42, 3, 2, templates.clone());
        let report = run_load(client.addr(), &cfg).expect("load run");
        assert_eq!(report.completed, 6, "every submitted job completed");
        assert!(
            report.results.iter().all(Option::is_some),
            "the seeded schedule drew every template"
        );
        digests.push(report.results_digest());
        client.shutdown().expect("shutdown");
        server.join().unwrap().expect("clean exit");
    }
    assert_eq!(
        digests[0], digests[1],
        "shards 1 vs 4 serve identical bytes"
    );
}

#[test]
fn per_shard_stats_sum_to_the_aggregate_totals() {
    let (client, server) = start_sharded(4, 16, None);
    let templates = vec![
        EvalRequest {
            tasks: TaskSetRef::Machine { count: 2, seed: 1 },
            models: vec!["gpt-4o".to_string()],
            cfg: InferenceConfig::greedy(),
            samples: 1,
        },
        EvalRequest {
            tasks: TaskSetRef::Machine { count: 2, seed: 2 },
            models: vec!["gpt-4o".to_string()],
            cfg: InferenceConfig::greedy(),
            samples: 1,
        },
        EvalRequest {
            tasks: TaskSetRef::Machine { count: 3, seed: 3 },
            models: vec!["gemini-1.5-flash".to_string()],
            cfg: InferenceConfig::greedy(),
            samples: 1,
        },
    ];
    let cfg = LoadConfig::saturating(7, 2, 3, templates);
    run_load(client.addr(), &cfg).expect("load run");
    let stats = client.stats().expect("stats");
    let shards = match stats.get("shards").unwrap() {
        fveval_serve::json::Json::Obj(members) => members,
        other => panic!("per-shard stats must be an object, got {}", other.encode()),
    };
    assert_eq!(shards.len(), 4, "one row per shard");
    let sum = |field: &str| -> u64 {
        shards
            .iter()
            .map(|(_, row)| row.get(field).and_then(|v| v.as_u64()).unwrap())
            .sum()
    };
    let jobs = stats.get("jobs").unwrap();
    let aggregate = |field: &str| jobs.get(field).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(sum("accepted"), aggregate("submitted"));
    assert_eq!(sum("served"), aggregate("done"));
    assert_eq!(sum("failed"), aggregate("failed"));
    assert_eq!(sum("rejected"), aggregate("rejected"));
    assert_eq!(sum("depth"), aggregate("queued"));
    assert_eq!(sum("in_flight"), aggregate("running"));
    // The aggregate cache block is the merge of the per-shard blocks.
    let cache_sum = |field: &str| -> u64 {
        shards
            .iter()
            .map(|(_, row)| {
                row.get("cache")
                    .and_then(|c| c.get(field))
                    .and_then(|v| v.as_u64())
                    .unwrap()
            })
            .sum()
    };
    let cache = stats.get("cache").unwrap();
    for field in ["hits", "persisted_hits", "misses", "entries"] {
        assert_eq!(
            cache_sum(field),
            cache.get(field).and_then(|v| v.as_u64()).unwrap(),
            "cache.{field} is the shard merge"
        );
    }
    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("clean exit");
}

/// The value of an unlabeled series in a Prometheus text exposition.
fn prom_value(text: &str, name: &str) -> u64 {
    text.lines()
        .filter_map(|line| {
            let (series, value) = line.split_once(' ')?;
            (series == name).then(|| value.trim().parse::<u64>().expect("integer sample"))
        })
        .next()
        .unwrap_or_else(|| panic!("metric {name} missing from exposition"))
}

/// Sums every sample of a labeled series family (e.g. the per-shard
/// `fveval_shard_prover_sat_calls{shard="0"} 12` rows).
fn prom_labeled_sum(text: &str, family: &str) -> u64 {
    text.lines()
        .filter_map(|line| {
            let (series, value) = line.split_once(' ')?;
            let base = series.split_once('{')?.0;
            (base == family).then(|| value.trim().parse::<u64>().expect("integer sample"))
        })
        .sum()
}

#[test]
fn metrics_exposition_reconciles_with_stats_json() {
    let (client, server) = start_sharded(2, 16, None);
    let id = client.submit(&suite_request()).expect("submit");
    client.wait(id, WAIT).expect("job finishes");
    let stats = client.stats().expect("stats");
    let text = client.metrics().expect("metrics exposition");

    // Every prover counter in /metrics equals the /v1/stats value —
    // both are rendered from the same merged shard-engine stats, so
    // this must be exact, not approximate.
    let prover = stats.get("prover").expect("prover block");
    for (json_field, series) in [
        ("queries", "fveval_prover_queries_total"),
        ("sat_calls", "fveval_prover_sat_calls_total"),
        ("sim_kills", "fveval_prover_sim_kills_total"),
        ("ternary_kills", "fveval_prover_ternary_kills_total"),
        ("sessions_opened", "fveval_prover_sessions_opened_total"),
        ("session_checks", "fveval_prover_session_checks_total"),
        ("pdr_frames", "fveval_prover_pdr_frames_total"),
    ] {
        let expected = prover.get(json_field).and_then(|v| v.as_u64()).unwrap();
        assert_eq!(
            prom_value(&text, series),
            expected,
            "{series} reconciles with stats.prover.{json_field}"
        );
    }
    assert!(
        prom_value(&text, "fveval_prover_sat_calls_total") > 0,
        "the suite run performed SAT work"
    );

    // Per-shard labeled series sum to the aggregate.
    assert_eq!(
        prom_labeled_sum(&text, "fveval_shard_prover_sat_calls_total"),
        prom_value(&text, "fveval_prover_sat_calls_total"),
        "shard-labeled sat calls sum to the total"
    );
    let done = stats
        .get("jobs")
        .and_then(|j| j.get("done"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert_eq!(prom_value(&text, "fveval_jobs_done_total"), done);

    // Exposition hygiene: one TYPE line per family, and the serve
    // worker's span histogram shows up once timing is enabled at bind.
    assert_eq!(
        text.matches("# TYPE fveval_prover_sat_calls_total counter")
            .count(),
        1
    );
    assert!(
        text.contains("# TYPE fveval_span_serve_job_us histogram"),
        "serve.job span durations are exported as a histogram"
    );
    assert!(
        prom_value(&text, "fveval_span_serve_job_us_count") >= 1,
        "at least one serve.job observation"
    );

    // The same registry surfaces through /v1/stats as a sorted block.
    let hist = stats.get("hist").expect("hist block");
    let job_hist = hist.get("span.serve.job.us").expect("serve.job histogram");
    assert!(job_hist.get("count").and_then(|v| v.as_u64()).unwrap() >= 1);

    client.shutdown().expect("shutdown");
    server.join().unwrap().expect("clean exit");
}
