//! Frontend-agnostic elaboration driver.
//!
//! The driver decouples *what elaborates a module* from *how the design
//! is stitched together*. Each [`Frontend`] turns one module name (plus
//! parameter overrides) into a standalone [`Fragment`] — a prefix-free
//! flattening with its own private string arena. The driver routes
//! every module instantiation the top-level walk encounters to the
//! first frontend that provides it, splicing the resulting fragment
//! into the design under the instance prefix.
//!
//! Two frontends ship in-tree:
//!
//! * [`SvFrontend`] — elaborates modules from the parsed SystemVerilog
//!   source file (the same flattening the classic sequential path
//!   runs, just module-at-a-time).
//! * [`JsonFrontend`] — a toy netlist-JSON format (combinational
//!   assigns over declared ports and nets), demonstrating that a
//!   non-SV module description can splice into the same netlist build.
//!
//! Because fragments carry private arenas, independent modules can
//! flatten **in parallel**: [`elaborate_design_driver`] prescans the
//! top module for instantiation sites with constant parameter
//! bindings, pre-builds those fragments across threads, and then runs
//! the ordinary sequential walk against the warm cache. The walk —
//! not the threads — performs every splice, so the produced netlist is
//! byte-identical to the sequential path regardless of thread count or
//! scheduling.

use crate::elaborate::{
    elaborate_design_routed, DeclInfo, ElabError, ElaboratedDesign, FlatItem, FlatTarget,
    Flattener, Fragment, Fx, InstanceRouter, Scope, ScopeEntry,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;
use sv_ast::{BinaryOp, Expr, Interner, Literal, ModuleItem, PortDir, SourceFile, UnaryOp};

type Result<T> = std::result::Result<T, ElabError>;

// ---------------------------------------------------------------------
// Frontend trait and the SV frontend
// ---------------------------------------------------------------------

/// A module elaborator pluggable into the elaboration driver.
///
/// `Sync` is required so the driver can pre-build fragments for
/// independent modules on worker threads.
pub trait Frontend: Sync {
    /// Frontend name, recorded on `elaborate.module` trace spans.
    fn name(&self) -> &'static str;

    /// Whether this frontend can elaborate `module`.
    fn provides(&self, module: &str) -> bool;

    /// Elaborates `module` with the given parameter overrides into a
    /// standalone fragment.
    ///
    /// # Errors
    ///
    /// Frontend-specific; the driver surfaces the error at the
    /// instantiation site that requested the module.
    fn elaborate_module(&self, module: &str, overrides: &HashMap<String, u128>)
        -> Result<Fragment>;
}

/// The SystemVerilog frontend: elaborates modules from a parsed source
/// file via the crate's own flattener. Nested in-file instances are
/// inlined into the fragment.
pub struct SvFrontend<'f> {
    file: &'f SourceFile,
}

impl<'f> SvFrontend<'f> {
    /// A frontend serving every module of `file`.
    pub fn new(file: &'f SourceFile) -> SvFrontend<'f> {
        SvFrontend { file }
    }
}

impl Frontend for SvFrontend<'_> {
    fn name(&self) -> &'static str {
        "sv"
    }

    fn provides(&self, module: &str) -> bool {
        self.file.module(module).is_some()
    }

    fn elaborate_module(
        &self,
        module: &str,
        overrides: &HashMap<String, u128>,
    ) -> Result<Fragment> {
        Fragment::from_sv(self.file, module, overrides)
    }
}

// ---------------------------------------------------------------------
// Netlist-JSON frontend
// ---------------------------------------------------------------------

/// Expression in the netlist-JSON format: a net reference, an integer
/// literal, or an operator application.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonExpr {
    Net(String),
    Lit(u128),
    Op(String, Vec<JsonExpr>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct JsonPort {
    name: String,
    dir: PortDir,
    width: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct JsonModule {
    name: String,
    ports: Vec<JsonPort>,
    nets: Vec<(String, u32)>,
    assigns: Vec<(String, JsonExpr)>,
}

/// A toy non-SV frontend: combinational modules described as JSON.
///
/// The format is one top-level object mapping module names to module
/// objects with three (optional) keys:
///
/// ```json
/// {
///   "adder": {
///     "ports": [["a", "input", 4], ["b", "input", 4], ["q", "output", 4]],
///     "nets": [["t", 4]],
///     "assigns": [["t", ["xor", "a", "b"]], ["q", "t"]]
///   }
/// }
/// ```
///
/// Assign right-hand sides are s-expressions: a string is a net
/// reference, a number is a literal, and an array applies an operator
/// (`not`; `and`, `or`, `xor`, `add`, `sub`, `eq`; `mux`). Modules are
/// purely combinational and take no parameters; widths come from the
/// declarations.
pub struct JsonFrontend {
    modules: Vec<JsonModule>,
}

impl JsonFrontend {
    /// Parses a netlist-JSON document.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a module/port/expression shape the
    /// format does not define.
    pub fn from_json(src: &str) -> Result<JsonFrontend> {
        let v = JsonParser {
            s: src.as_bytes(),
            i: 0,
        }
        .parse_document()?;
        let Jv::Obj(mods) = v else {
            return Err(ElabError::new("netlist JSON: top level must be an object"));
        };
        let mut modules = Vec::with_capacity(mods.len());
        for (name, body) in mods {
            modules.push(parse_module(&name, &body)?);
        }
        Ok(JsonFrontend { modules })
    }

    /// Serializes back to canonical netlist JSON (the fixpoint of
    /// `from_json` ∘ `to_json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, m) in self.modules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_str(&mut out, &m.name);
            out.push_str(":{\"ports\":[");
            for (j, p) in m.ports.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                json_str(&mut out, &p.name);
                out.push(',');
                json_str(&mut out, dir_str(p.dir));
                out.push_str(&format!(",{}]", p.width));
            }
            out.push_str("],\"nets\":[");
            for (j, (n, w)) in m.nets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                json_str(&mut out, n);
                out.push_str(&format!(",{w}]"));
            }
            out.push_str("],\"assigns\":[");
            for (j, (t, e)) in m.assigns.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                json_str(&mut out, t);
                out.push(',');
                json_expr(&mut out, e);
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

fn dir_str(d: PortDir) -> &'static str {
    match d {
        PortDir::Input => "input",
        PortDir::Output => "output",
        PortDir::Inout => "inout",
    }
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_expr(out: &mut String, e: &JsonExpr) {
    match e {
        JsonExpr::Net(n) => json_str(out, n),
        JsonExpr::Lit(v) => out.push_str(&v.to_string()),
        JsonExpr::Op(op, args) => {
            out.push('[');
            json_str(out, op);
            for a in args {
                out.push(',');
                json_expr(out, a);
            }
            out.push(']');
        }
    }
}

/// Minimal JSON value for the netlist format: strings, non-negative
/// integers, arrays, objects (order-preserving).
enum Jv {
    Num(u128),
    Str(String),
    Arr(Vec<Jv>),
    Obj(Vec<(String, Jv)>),
}

struct JsonParser<'a> {
    s: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn err(&self, msg: &str) -> ElabError {
        ElabError::new(format!("netlist JSON at byte {}: {msg}", self.i))
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_document(mut self) -> Result<Jv> {
        let v = self.value()?;
        self.ws();
        if self.i != self.s.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Jv> {
        match self.peek() {
            Some(b'"') => Ok(Jv::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.s.get(self.i) else {
                return Err(self.err("unterminated string"));
            };
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.s.get(self.i) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            out.push(hex);
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                _ => out.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Result<Jv> {
        let start = self.i;
        while self.s.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("digits are utf8");
        text.parse()
            .map(Jv::Num)
            .map_err(|_| self.err("integer out of range"))
    }

    fn array(&mut self) -> Result<Jv> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Jv::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Jv::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Jv> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Jv::Obj(out));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected an object key"));
            }
            let k = self.string()?;
            self.eat(b':')?;
            out.push((k, self.value()?));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Jv::Obj(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse_module(name: &str, body: &Jv) -> Result<JsonModule> {
    let Jv::Obj(fields) = body else {
        return Err(ElabError::new(format!(
            "netlist JSON: module '{name}' must be an object"
        )));
    };
    let mut m = JsonModule {
        name: name.to_string(),
        ports: Vec::new(),
        nets: Vec::new(),
        assigns: Vec::new(),
    };
    for (key, value) in fields {
        let Jv::Arr(entries) = value else {
            return Err(ElabError::new(format!(
                "netlist JSON: '{name}.{key}' must be an array"
            )));
        };
        match key.as_str() {
            "ports" => {
                for e in entries {
                    let Jv::Arr(t) = e else {
                        return Err(ElabError::new("netlist JSON: port must be a triple"));
                    };
                    match t.as_slice() {
                        [Jv::Str(n), Jv::Str(d), Jv::Num(w)] => m.ports.push(JsonPort {
                            name: n.clone(),
                            dir: match d.as_str() {
                                "input" => PortDir::Input,
                                "output" => PortDir::Output,
                                _ => {
                                    return Err(ElabError::new(format!(
                                        "netlist JSON: unsupported port direction '{d}'"
                                    )))
                                }
                            },
                            width: u32::try_from(*w).map_err(|_| {
                                ElabError::new("netlist JSON: port width out of range")
                            })?,
                        }),
                        _ => {
                            return Err(ElabError::new(
                                "netlist JSON: port must be [name, dir, width]",
                            ))
                        }
                    }
                }
            }
            "nets" => {
                for e in entries {
                    let Jv::Arr(t) = e else {
                        return Err(ElabError::new("netlist JSON: net must be a pair"));
                    };
                    match t.as_slice() {
                        [Jv::Str(n), Jv::Num(w)] => m.nets.push((
                            n.clone(),
                            u32::try_from(*w).map_err(|_| {
                                ElabError::new("netlist JSON: net width out of range")
                            })?,
                        )),
                        _ => return Err(ElabError::new("netlist JSON: net must be [name, width]")),
                    }
                }
            }
            "assigns" => {
                for e in entries {
                    let Jv::Arr(t) = e else {
                        return Err(ElabError::new("netlist JSON: assign must be a pair"));
                    };
                    match t.as_slice() {
                        [Jv::Str(target), rhs] => {
                            m.assigns.push((target.clone(), parse_expr(rhs)?))
                        }
                        _ => {
                            return Err(ElabError::new(
                                "netlist JSON: assign must be [target, expr]",
                            ))
                        }
                    }
                }
            }
            other => {
                return Err(ElabError::new(format!(
                    "netlist JSON: unknown module key '{other}'"
                )))
            }
        }
    }
    Ok(m)
}

fn parse_expr(v: &Jv) -> Result<JsonExpr> {
    Ok(match v {
        Jv::Str(n) => JsonExpr::Net(n.clone()),
        Jv::Num(n) => JsonExpr::Lit(*n),
        Jv::Arr(items) => match items.as_slice() {
            [Jv::Str(op), args @ ..] if !args.is_empty() => {
                let arity = match op.as_str() {
                    "not" => 1,
                    "and" | "or" | "xor" | "add" | "sub" | "eq" => 2,
                    "mux" => 3,
                    other => {
                        return Err(ElabError::new(format!(
                            "netlist JSON: unknown operator '{other}'"
                        )))
                    }
                };
                if args.len() != arity {
                    return Err(ElabError::new(format!(
                        "netlist JSON: '{op}' takes {arity} operand(s), got {}",
                        args.len()
                    )));
                }
                JsonExpr::Op(
                    op.clone(),
                    args.iter().map(parse_expr).collect::<Result<_>>()?,
                )
            }
            _ => {
                return Err(ElabError::new(
                    "netlist JSON: operator application must be [op, args...]",
                ))
            }
        },
        Jv::Obj(_) => return Err(ElabError::new("netlist JSON: objects are not expressions")),
    })
}

impl Frontend for JsonFrontend {
    fn name(&self) -> &'static str {
        "netlist-json"
    }

    fn provides(&self, module: &str) -> bool {
        self.modules.iter().any(|m| m.name == module)
    }

    fn elaborate_module(
        &self,
        module: &str,
        overrides: &HashMap<String, u128>,
    ) -> Result<Fragment> {
        let m = self
            .modules
            .iter()
            .find(|m| m.name == module)
            .ok_or_else(|| ElabError::new(format!("unknown module '{module}'")))?;
        if !overrides.is_empty() {
            return Err(ElabError::new(format!(
                "netlist JSON module '{module}' takes no parameters"
            )));
        }
        let mut itn = Interner::new();
        let mut items = Vec::new();
        let mut scope = Scope::default();
        let declare = |itn: &mut Interner,
                       items: &mut Vec<FlatItem>,
                       scope: &mut Scope,
                       name: &str,
                       width: u32,
                       is_input: bool| {
            // Prefix-free fragment: the flat name IS the source name,
            // so one symbol serves as both scope key and flat net.
            let flat = itn.intern(name);
            let info = DeclInfo {
                flat,
                width,
                elem_width: 1,
                lsb: 0,
                elems: None,
                is_top_input: is_input,
            };
            scope.insert(flat, ScopeEntry::Net(info));
            items.push(FlatItem::Decl(info));
        };
        for p in &m.ports {
            declare(
                &mut itn,
                &mut items,
                &mut scope,
                &p.name,
                p.width,
                p.dir == PortDir::Input,
            );
        }
        for (n, w) in &m.nets {
            declare(&mut itn, &mut items, &mut scope, n, *w, false);
        }
        for (target, rhs) in &m.assigns {
            let info = match itn.lookup(target).and_then(|s| scope.get(&s)) {
                Some(ScopeEntry::Net(info)) => *info,
                _ => {
                    return Err(ElabError::new(format!(
                        "netlist JSON: assignment to undeclared net '{target}' in '{module}'"
                    )))
                }
            };
            let rhs = build_fx(rhs, &mut itn, &scope);
            items.push(FlatItem::Assign {
                target: FlatTarget {
                    net: info.flat,
                    lo: 0,
                    width: info.width,
                },
                rhs,
            });
        }
        Ok(Fragment {
            itn,
            items,
            scope,
            ports: m.ports.iter().map(|p| (p.name.clone(), p.dir)).collect(),
            clock_name: None,
            reset_name: None,
        })
    }
}

/// Lowers a JSON expression to the flattener's [`Fx`] form. Unknown net
/// names are interned as written; pass B reports them with their text,
/// matching the SV frontend's behavior.
fn build_fx(e: &JsonExpr, itn: &mut Interner, scope: &Scope) -> Fx {
    match e {
        JsonExpr::Net(n) => match itn.lookup(n).and_then(|s| scope.get(&s)) {
            Some(ScopeEntry::Net(info)) => Fx::Net(info.flat),
            _ => Fx::Net(itn.intern(n)),
        },
        JsonExpr::Lit(v) => Fx::Lit {
            width: None,
            value: *v,
        },
        JsonExpr::Op(op, args) => {
            let mut fx = args.iter().map(|a| build_fx(a, itn, scope));
            let mut next = || Box::new(fx.next().expect("arity checked at parse"));
            match op.as_str() {
                "not" => Fx::Unary(UnaryOp::BitNot, next()),
                "and" => Fx::Binary(BinaryOp::BitAnd, next(), next()),
                "or" => Fx::Binary(BinaryOp::BitOr, next(), next()),
                "xor" => Fx::Binary(BinaryOp::BitXor, next(), next()),
                "add" => Fx::Binary(BinaryOp::Add, next(), next()),
                "sub" => Fx::Binary(BinaryOp::Sub, next(), next()),
                "eq" => Fx::Binary(BinaryOp::Eq, next(), next()),
                "mux" => Fx::Ternary(next(), next(), next()),
                other => unreachable!("operator '{other}' rejected at parse"),
            }
        }
    }
}

// ---------------------------------------------------------------------
// The router: fragment cache + splice
// ---------------------------------------------------------------------

/// Cache key: module name plus sorted, deduplicated parameter
/// overrides.
type FragKey = (String, Vec<(String, u128)>);

fn frag_key(module: &str, overrides: &HashMap<String, u128>) -> FragKey {
    let mut ov: Vec<(String, u128)> = overrides.iter().map(|(k, v)| (k.clone(), *v)).collect();
    ov.sort();
    (module.to_string(), ov)
}

/// The driver's [`InstanceRouter`]: routes claimed instantiations to
/// frontends, caching fragments per `(module, overrides)` so repeated
/// instantiations flatten once and splice many times.
struct DriverRouter<'a> {
    frontends: &'a [&'a dyn Frontend],
    cache: RefCell<HashMap<FragKey, Rc<Fragment>>>,
}

impl DriverRouter<'_> {
    fn fragment(&self, module: &str, overrides: &HashMap<String, u128>) -> Result<Rc<Fragment>> {
        let key = frag_key(module, overrides);
        let cached = self.cache.borrow().get(&key).cloned();
        if let Some(frag) = cached {
            return Ok(frag);
        }
        let fe = self
            .frontends
            .iter()
            .find(|f| f.provides(module))
            .ok_or_else(|| ElabError::new(format!("unknown module '{module}'")))?;
        let frag = Rc::new(build_fragment(*fe, module, overrides)?);
        self.cache.borrow_mut().insert(key, frag.clone());
        Ok(frag)
    }
}

/// One traced fragment build (shared by the parallel pre-build and the
/// on-demand path).
fn build_fragment(
    fe: &dyn Frontend,
    module: &str,
    overrides: &HashMap<String, u128>,
) -> Result<Fragment> {
    let _span = fv_trace::span!("elaborate.module", module = module, frontend = fe.name());
    fe.elaborate_module(module, overrides)
}

impl InstanceRouter for DriverRouter<'_> {
    fn claims(&self, module: &str, _prefix: &str) -> bool {
        self.frontends.iter().any(|f| f.provides(module))
    }

    fn flatten_external(
        &self,
        fl: &mut Flattener<'_>,
        module: &str,
        prefix: &str,
        overrides: &HashMap<String, u128>,
    ) -> Result<(Scope, Vec<(String, PortDir)>)> {
        let frag = self.fragment(module, overrides)?;
        let _span = fv_trace::span!("frontend.route", module = module, prefix = prefix);
        Ok(fl.splice_fragment(&frag, prefix))
    }
}

// ---------------------------------------------------------------------
// Parallel pre-build + driver entry points
// ---------------------------------------------------------------------

/// Collects `(module, overrides)` instantiation sites of the top walk
/// that can be pre-built before elaboration starts: instances of
/// claimed modules whose parameter bindings are all integer literals
/// (anything scope-dependent is left to the on-demand path). Recurses
/// into generate bodies; instances nested in *other modules* are
/// inlined by their module's own fragment build, so only the top level
/// is scanned.
fn prescan_instances(
    file: &SourceFile,
    top: &str,
    extras: &[ModuleItem],
    frontends: &[&dyn Frontend],
) -> Vec<FragKey> {
    fn walk(items: &[ModuleItem], out: &mut Vec<(String, BTreeMap<String, u128>)>) {
        for item in items {
            match item {
                ModuleItem::Instance(inst) => {
                    let mut ov = BTreeMap::new();
                    let all_literal = inst.params.iter().all(|(name, e)| match e {
                        Expr::Literal(Literal::Int { value, .. }) => {
                            ov.insert(name.clone(), *value);
                            true
                        }
                        _ => false,
                    });
                    if all_literal {
                        out.push((inst.module.clone(), ov));
                    }
                }
                ModuleItem::GenerateFor { body, .. } => walk(body, out),
                _ => {}
            }
        }
    }
    let mut sites = Vec::new();
    if let Some(m) = file.module(top) {
        walk(&m.items, &mut sites);
    }
    walk(extras, &mut sites);
    let mut seen = HashSet::new();
    sites
        .into_iter()
        .filter(|(module, _)| frontends.iter().any(|f| f.provides(module)))
        .map(|(module, ov)| (module, ov.into_iter().collect::<Vec<_>>()))
        .filter(|key| seen.insert(key.clone()))
        .collect()
}

/// Builds the prescanned fragments across worker threads. A build
/// failure is dropped silently: the sequential walk rebuilds the
/// fragment on demand and reports the error deterministically at the
/// instantiation site that needs it.
fn prebuild_parallel(
    keys: &[FragKey],
    frontends: &[&dyn Frontend],
) -> HashMap<FragKey, Rc<Fragment>> {
    let mut cache = HashMap::new();
    if keys.is_empty() {
        return cache;
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(keys.len());
    let built: Vec<Option<Fragment>> = if threads <= 1 {
        keys.iter()
            .map(|(module, ov)| {
                let overrides: HashMap<String, u128> = ov.iter().cloned().collect();
                frontends
                    .iter()
                    .find(|f| f.provides(module))
                    .and_then(|fe| build_fragment(*fe, module, &overrides).ok())
            })
            .collect()
    } else {
        let chunk = keys.len().div_ceil(threads);
        let mut built: Vec<Option<Fragment>> = Vec::with_capacity(keys.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = keys
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        part.iter()
                            .map(|(module, ov)| {
                                let overrides: HashMap<String, u128> = ov.iter().cloned().collect();
                                frontends
                                    .iter()
                                    .find(|f| f.provides(module))
                                    .and_then(|fe| build_fragment(*fe, module, &overrides).ok())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                built.extend(h.join().expect("fragment builder panicked"));
            }
        });
        built
    };
    for (key, frag) in keys.iter().zip(built) {
        if let Some(f) = frag {
            cache.insert(key.clone(), Rc::new(f));
        }
    }
    cache
}

/// [`elaborate_design`] routed through the elaboration driver with the
/// given frontends (first `provides` wins; in-file SV inlining is the
/// fallback when no frontend claims a module).
///
/// Fragments for the top module's constant-parameter instantiation
/// sites are pre-built in parallel; the sequential walk then splices
/// them (and builds any stragglers on demand), so the resulting
/// [`ElaboratedDesign`] is byte-identical to the sequential path.
///
/// # Errors
///
/// See [`elaborate_design`].
///
/// [`elaborate_design`]: crate::elaborate_design
pub fn elaborate_design_with_frontends(
    file: &SourceFile,
    top: &str,
    extras: &[ModuleItem],
    frontends: &[&dyn Frontend],
) -> Result<ElaboratedDesign> {
    let keys = prescan_instances(file, top, extras, frontends);
    let cache = prebuild_parallel(&keys, frontends);
    let router = DriverRouter {
        frontends,
        cache: RefCell::new(cache),
    };
    elaborate_design_routed(file, top, extras, Some(&router))
}

/// The driver with its default frontend set: SystemVerilog only. Every
/// module of `file` elaborates as an independent fragment (in parallel
/// where the prescan allows), producing a design byte-identical to
/// [`elaborate_design`].
///
/// # Errors
///
/// See [`elaborate_design`].
///
/// [`elaborate_design`]: crate::elaborate_design
pub fn elaborate_design_driver(
    file: &SourceFile,
    top: &str,
    extras: &[ModuleItem],
) -> Result<ElaboratedDesign> {
    let sv = SvFrontend::new(file);
    let frontends: [&dyn Frontend; 1] = [&sv];
    elaborate_design_with_frontends(file, top, extras, &frontends)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_parser::{parse_snippet, parse_source};

    /// Structural fingerprint of a netlist for path-equality checks:
    /// the content digest plus the bits it summarizes, so a mismatch
    /// points at what diverged.
    type Fingerprint = (u64, usize, Vec<(String, u32)>, Vec<(String, u128)>);

    fn fingerprint(nl: &crate::Netlist) -> Fingerprint {
        let mut names: Vec<(String, u32)> = nl
            .net_names()
            .map(|(n, b)| (n.to_string(), b.width))
            .collect();
        names.sort();
        (
            nl.content_digest(),
            nl.atoms.len(),
            names,
            nl.params.clone(),
        )
    }

    const HIER_SRC: &str = "\
module adder (a, b, s);
parameter W = 4;
input [W-1:0] a; input [W-1:0] b; output [W:0] s;
assign s = a + b;
endmodule
module cell (clk, rst_n, d, q);
input clk; input rst_n; input [3:0] d; output reg [3:0] q;
logic [3:0] mem [1:0];
assign mem[0] = d;
assign mem[1] = mem[0] ^ d;
always @(posedge clk or negedge rst_n) begin
if (!rst_n) q <= 4'd0; else q <= mem[1];
end
endmodule
module top (clk, rst_n, x, y, out);
input clk; input rst_n; input [3:0] x; input [3:0] y; output [4:0] out;
wire [3:0] q0; wire [3:0] q1;
cell c0 (.clk(clk), .rst_n(rst_n), .d(x), .q(q0));
cell c1 (.clk(clk), .rst_n(rst_n), .d(y), .q(q1));
adder #(.W(4)) a0 (.a(q0), .b(q1), .s(out));
endmodule
";

    #[test]
    fn driver_matches_sequential_on_hierarchical_design() {
        let f = parse_source(HIER_SRC).unwrap();
        let seq = crate::elaborate_design(&f, "top", &[]).unwrap();
        let drv = elaborate_design_driver(&f, "top", &[]).unwrap();
        assert_eq!(fingerprint(seq.netlist()), fingerprint(drv.netlist()));
        assert_eq!(seq.netlist().clock_name, drv.netlist().clock_name);
        assert_eq!(seq.netlist().reset_name, drv.netlist().reset_name);
        // The cached-fragment path kept per-instance names distinct.
        assert!(drv.netlist().net("c0.mem[1]").is_some());
        assert!(drv.netlist().net("c1.mem[1]").is_some());
    }

    #[test]
    fn driver_matches_sequential_with_instance_extras() {
        // The Design2SVA shape: the DUT instantiation arrives as extra
        // items, exercising the prescan-over-extras path.
        let f = parse_source(HIER_SRC).unwrap();
        let extras = parse_snippet(
            "logic [3:0] w0;\nlogic [4:0] w1;\n\
             cell dut (.clk(tb_clk), .rst_n(tb_rst), .d(w0), .q(w0));\n\
             adder #(.W(4)) acc (.a(w0), .b(w0), .s(w1));\n\
             input tb_clk; input tb_rst;\n",
        )
        .unwrap();
        let seq = crate::elaborate_design(&f, "top", &extras).unwrap();
        let drv = elaborate_design_driver(&f, "top", &extras).unwrap();
        assert_eq!(fingerprint(seq.netlist()), fingerprint(drv.netlist()));
        // bind_extras still works on the driver-produced design.
        let more = parse_snippet("logic [4:0] probe;\nassign probe = out;\n").unwrap();
        assert_eq!(
            seq.bind_extras(&more).unwrap().content_digest(),
            drv.bind_extras(&more).unwrap().content_digest(),
        );
    }

    #[test]
    fn driver_and_sequential_report_the_same_unknown_module() {
        let src = "module top (y);\noutput y;\nnope u0 (.p(y));\nendmodule\n";
        let f = parse_source(src).unwrap();
        let seq = crate::elaborate_design(&f, "top", &[]).unwrap_err();
        let drv = elaborate_design_driver(&f, "top", &[]).unwrap_err();
        assert_eq!(seq, drv);
        assert!(seq.message.contains("unknown module 'nope'"));
    }

    const ALU_JSON: &str = r#"{
      "alu": {
        "ports": [["a", "input", 4], ["b", "input", 4], ["sel", "input", 1],
                  ["q", "output", 4]],
        "nets": [["t", 4]],
        "assigns": [["t", ["xor", "a", "b"]],
                    ["q", ["mux", "sel", "t", ["and", "a", "b"]]]]
      }
    }"#;

    #[test]
    fn json_frontend_matches_equivalent_sv() {
        // The same module written in netlist JSON and in SV must splice
        // to identical netlists under the same instantiation.
        let top = "module top (a, b, sel, q);\n\
                   input [3:0] a; input [3:0] b; input sel; output [3:0] q;\n\
                   alu u0 (.a(a), .b(b), .sel(sel), .q(q));\nendmodule\n";
        let sv_equiv = "module alu (a, b, sel, q);\n\
                        input [3:0] a; input [3:0] b; input sel; output [3:0] q;\n\
                        wire [3:0] t;\nassign t = a ^ b;\n\
                        assign q = sel ? t : (a & b);\nendmodule\n";
        let f_json = parse_source(top).unwrap();
        let json = JsonFrontend::from_json(ALU_JSON).unwrap();
        let sv = SvFrontend::new(&f_json);
        let frontends: [&dyn Frontend; 2] = [&json, &sv];
        let via_json = elaborate_design_with_frontends(&f_json, "top", &[], &frontends).unwrap();

        let f_sv = parse_source(&format!("{sv_equiv}{top}")).unwrap();
        let via_sv = crate::elaborate_design(&f_sv, "top", &[]).unwrap();
        assert_eq!(
            fingerprint(via_sv.netlist()),
            fingerprint(via_json.netlist())
        );
        assert!(via_json.netlist().net("u0.t").is_some());
    }

    #[test]
    fn json_round_trip_is_a_fixpoint() {
        let fe = JsonFrontend::from_json(ALU_JSON).unwrap();
        let canon = fe.to_json();
        let fe2 = JsonFrontend::from_json(&canon).unwrap();
        assert_eq!(fe.modules, fe2.modules);
        assert_eq!(canon, fe2.to_json());
    }

    #[test]
    fn json_frontend_rejects_bad_input() {
        assert!(JsonFrontend::from_json("[1, 2]").is_err());
        assert!(JsonFrontend::from_json(r#"{"m": {"wires": []}}"#).is_err());
        assert!(
            JsonFrontend::from_json(r#"{"m": {"assigns": [["q", ["nand", "a", "b"]]]}}"#).is_err()
        );
        let fe = JsonFrontend::from_json(ALU_JSON).unwrap();
        let with_params = HashMap::from([("W".to_string(), 8u128)]);
        let err = fe.elaborate_module("alu", &with_params).unwrap_err();
        assert!(err.message.contains("takes no parameters"));
    }
}
