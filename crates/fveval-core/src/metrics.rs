//! Per-sample, per-case, and aggregate metric containers.

use crate::passk::pass_at_k;

/// Scores of one model response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEval {
    /// Passed the tool syntax/elaboration check.
    pub syntax: bool,
    /// Fully functionally correct (formal equivalence / proven).
    pub func: bool,
    /// At least partially correct (one-way implication or better).
    pub partial: bool,
    /// BLEU against the reference (0 when no reference applies).
    pub bleu: f64,
}

impl SampleEval {
    /// The all-fail sample (syntax error).
    pub fn failed() -> SampleEval {
        SampleEval {
            syntax: false,
            func: false,
            partial: false,
            bleu: 0.0,
        }
    }
}

/// All sampled responses for one benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseEvals {
    /// Case id.
    pub id: String,
    /// One entry per sample (greedy runs have exactly one).
    pub samples: Vec<SampleEval>,
}

impl CaseEvals {
    fn count(&self, f: impl Fn(&SampleEval) -> bool) -> u32 {
        self.samples.iter().filter(|s| f(s)).count() as u32
    }

    /// Unbiased pass@k for a predicate over samples.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the number of samples.
    pub fn pass_at_k(&self, k: u32, f: impl Fn(&SampleEval) -> bool) -> f64 {
        pass_at_k(self.samples.len() as u32, self.count(f), k)
    }
}

/// Aggregate means over a run (the cells of Tables 1 and 3).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricSummary {
    /// Mean syntax rate.
    pub syntax: f64,
    /// Mean full functional-equivalence rate.
    pub func: f64,
    /// Mean partial rate.
    pub partial: f64,
    /// Mean BLEU.
    pub bleu: f64,
}

impl MetricSummary {
    /// Summarizes the first sample of every case (greedy / pass@1).
    pub fn from_first_samples(cases: &[CaseEvals]) -> MetricSummary {
        let n = cases.len().max(1) as f64;
        let mut s = MetricSummary::default();
        for c in cases {
            if let Some(first) = c.samples.first() {
                s.syntax += f64::from(u8::from(first.syntax));
                s.func += f64::from(u8::from(first.func));
                s.partial += f64::from(u8::from(first.partial));
                s.bleu += first.bleu;
            }
        }
        MetricSummary {
            syntax: s.syntax / n,
            func: s.func / n,
            partial: s.partial / n,
            bleu: s.bleu / n,
        }
    }

    /// Mean pass@k over cases for a metric selector.
    ///
    /// # Panics
    ///
    /// Panics if any case has fewer than `k` samples.
    pub fn mean_pass_at_k(
        cases: &[CaseEvals],
        k: u32,
        f: impl Fn(&SampleEval) -> bool + Copy,
    ) -> f64 {
        if cases.is_empty() {
            return 0.0;
        }
        cases.iter().map(|c| c.pass_at_k(k, f)).sum::<f64>() / cases.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(syntax: bool, func: bool, partial: bool) -> SampleEval {
        SampleEval {
            syntax,
            func,
            partial,
            bleu: 0.5,
        }
    }

    #[test]
    fn summary_means() {
        let cases = vec![
            CaseEvals {
                id: "a".into(),
                samples: vec![sample(true, true, true)],
            },
            CaseEvals {
                id: "b".into(),
                samples: vec![sample(true, false, true)],
            },
            CaseEvals {
                id: "c".into(),
                samples: vec![sample(false, false, false)],
            },
        ];
        let s = MetricSummary::from_first_samples(&cases);
        assert!((s.syntax - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.func - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.partial - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn case_pass_at_k() {
        let c = CaseEvals {
            id: "x".into(),
            samples: vec![
                sample(true, false, false),
                sample(true, true, true),
                sample(false, false, false),
            ],
        };
        assert_eq!(c.pass_at_k(3, |s| s.func), 1.0);
        assert!((c.pass_at_k(1, |s| s.func) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_pass_at_k_over_cases() {
        let cases = vec![
            CaseEvals {
                id: "a".into(),
                samples: vec![sample(true, true, true), sample(true, true, true)],
            },
            CaseEvals {
                id: "b".into(),
                samples: vec![sample(true, false, false), sample(true, false, false)],
            },
        ];
        let m = MetricSummary::mean_pass_at_k(&cases, 2, |s| s.func);
        assert!((m - 0.5).abs() < 1e-12);
    }
}
