//! Prometheus text exposition format (version 0.0.4) rendering.
//!
//! Dotted metric names map to the flat Prometheus namespace by
//! replacing every non-`[a-zA-Z0-9_]` byte with `_` and prefixing
//! `fveval_`; counters additionally get the conventional `_total`
//! suffix. So the registry's `prover.sat_calls` counter becomes
//! `fveval_prover_sat_calls_total`, and the `span.sat.solve.us`
//! histogram becomes the `fveval_span_sat_solve_us_bucket` /
//! `_sum` / `_count` series.

use crate::metrics::{bucket_le, Histogram, Snapshot, BUCKETS};
use std::collections::HashSet;

/// The exposition-format content type for HTTP responses.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Maps a dotted registry name to a Prometheus metric name (without
/// kind suffix): `span.sat.solve.us` → `fveval_span_sat_solve_us`.
pub fn metric_name(dotted: &str) -> String {
    let mut name = String::with_capacity(dotted.len() + 7);
    name.push_str("fveval_");
    for ch in dotted.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            name.push(ch);
        } else {
            name.push('_');
        }
    }
    name
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Incremental renderer for one exposition document. Series may be
/// appended in any order; a `# TYPE` line is emitted the first time
/// each metric name appears.
#[derive(Default)]
pub struct PromText {
    out: String,
    typed: HashSet<String>,
}

impl PromText {
    /// Starts an empty document.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn type_line(&mut self, name: &str, kind: &str) {
        if self.typed.insert(name.to_string()) {
            self.out.push_str(&format!("# TYPE {name} {kind}\n"));
        }
    }

    /// Appends one counter sample (dotted name; `_total` suffix and
    /// `fveval_` prefix are added here).
    pub fn counter(&mut self, dotted: &str, labels: &[(&str, &str)], value: u64) {
        let name = format!("{}_total", metric_name(dotted));
        self.type_line(&name, "counter");
        self.out
            .push_str(&format!("{name}{} {value}\n", label_block(labels)));
    }

    /// Appends one gauge sample.
    pub fn gauge(&mut self, dotted: &str, labels: &[(&str, &str)], value: i64) {
        let name = metric_name(dotted);
        self.type_line(&name, "gauge");
        self.out
            .push_str(&format!("{name}{} {value}\n", label_block(labels)));
    }

    /// Appends one histogram as cumulative `_bucket` samples plus
    /// `_sum` and `_count`. Empty trailing buckets are elided (the
    /// `+Inf` bucket always closes the series).
    pub fn histogram(&mut self, dotted: &str, labels: &[(&str, &str)], hist: &Histogram) {
        let base = metric_name(dotted);
        self.type_line(&base, "histogram");
        let last_nonzero = (0..BUCKETS)
            .rev()
            .find(|&i| hist.buckets[i] != 0)
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for i in 0..=last_nonzero.min(BUCKETS - 2) {
            cumulative += hist.buckets[i];
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            let le = bucket_le(i).to_string();
            with_le.push(("le", &le));
            self.out.push_str(&format!(
                "{base}_bucket{} {cumulative}\n",
                label_block(&with_le)
            ));
        }
        let mut with_inf: Vec<(&str, &str)> = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.out.push_str(&format!(
            "{base}_bucket{} {}\n",
            label_block(&with_inf),
            hist.count
        ));
        let block = label_block(labels);
        self.out
            .push_str(&format!("{base}_sum{block} {}\n", hist.sum));
        self.out
            .push_str(&format!("{base}_count{block} {}\n", hist.count));
    }

    /// Appends every counter, gauge, and histogram from a registry
    /// snapshot (sorted by name — `Snapshot` maps are ordered).
    pub fn snapshot(&mut self, snap: &Snapshot) {
        for (name, value) in &snap.counters {
            self.counter(name, &[], *value);
        }
        for (name, value) in &snap.gauges {
            self.gauge(name, &[], *value);
        }
        for (name, hist) in &snap.histograms {
            self.histogram(name, &[], hist);
        }
    }

    /// Finishes the document and returns its text.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_mangled_and_suffixed() {
        assert_eq!(metric_name("span.sat.solve.us"), "fveval_span_sat_solve_us");
        assert_eq!(metric_name("prover.sat_calls"), "fveval_prover_sat_calls");
    }

    #[test]
    fn counters_gauges_and_labels_render() {
        let mut text = PromText::new();
        text.counter("prover.sat_calls", &[], 42);
        text.counter("shard.jobs_served", &[("shard", "0")], 7);
        text.counter("shard.jobs_served", &[("shard", "1")], 9);
        text.gauge("store.entries", &[], 123);
        let out = text.finish();
        assert!(out.contains("# TYPE fveval_prover_sat_calls_total counter\n"));
        assert!(out.contains("fveval_prover_sat_calls_total 42\n"));
        assert!(out.contains("fveval_shard_jobs_served_total{shard=\"0\"} 7\n"));
        assert!(out.contains("fveval_shard_jobs_served_total{shard=\"1\"} 9\n"));
        // One TYPE line per name, even with two labeled samples.
        assert_eq!(
            out.matches("# TYPE fveval_shard_jobs_served_total").count(),
            1
        );
        assert!(out.contains("fveval_store_entries 123\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let mut hist = Histogram::default();
        for v in [0u64, 1, 2, 3, 900] {
            hist.record(v);
        }
        let mut text = PromText::new();
        text.histogram("span.solve.us", &[], &hist);
        let out = text.finish();
        assert!(out.contains("# TYPE fveval_span_solve_us histogram\n"));
        assert!(out.contains("fveval_span_solve_us_bucket{le=\"0\"} 1\n"));
        assert!(out.contains("fveval_span_solve_us_bucket{le=\"1\"} 2\n"));
        assert!(out.contains("fveval_span_solve_us_bucket{le=\"3\"} 4\n"));
        assert!(out.contains("fveval_span_solve_us_bucket{le=\"1023\"} 5\n"));
        assert!(out.contains("fveval_span_solve_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(out.contains("fveval_span_solve_us_sum 906\n"));
        assert!(out.contains("fveval_span_solve_us_count 5\n"));
    }
}
