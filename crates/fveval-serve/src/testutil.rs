//! Small self-cleaning filesystem helpers for tests and benchmarks.
//!
//! The workspace has no `tempfile` dependency (offline builds), so the
//! serve crate's tests, the workspace integration tests, and the
//! `serve` bench group share this instead.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `fveval-serve-<label>-<pid>-<n>` under the system temp
    /// directory.
    ///
    /// # Panics
    ///
    /// Panics if the directory cannot be created.
    pub fn new(label: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "fveval-serve-{label}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
