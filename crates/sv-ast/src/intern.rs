//! Arena-backed string interning for elaboration.
//!
//! Every identifier an elaboration touches — scope keys, flattened
//! hierarchical names, net-map keys — is interned once into a single
//! append-only character arena and referred to by a [`Symbol`] (a
//! `u32`). Scope lookups and net-map probes become integer compares,
//! per-name cloning disappears (a `Symbol` is `Copy`), and
//! content-digest hashing can run over the compact arena instead of
//! re-walking heap-scattered `String`s.
//!
//! The interner is *per design*: an [`Interner`] is created at the
//! start of an elaboration, grows while flattening, and is frozen
//! (shared behind an `Arc`) inside the produced netlist. Resuming an
//! elaboration (the `bind_extras` flow) clones the interner and keeps
//! appending; symbols from the base design remain valid because the
//! arena is append-only.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A fast non-cryptographic hasher for interner-derived keys
/// ([`Symbol`]s, small integer tuples, precomputed digests). SipHash's
/// DoS resistance buys nothing for dense indices we mint ourselves,
/// and elaboration probes these maps on every scope lookup.
#[derive(Default)]
pub struct SymbolHasher(u64);

/// Odd multiplier from Fibonacci hashing (2^64 / φ).
const MIX: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for SymbolHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(8) ^ u64::from(b)).wrapping_mul(MIX);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0.rotate_left(32) ^ u64::from(n)).wrapping_mul(MIX);
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(32) ^ n).wrapping_mul(MIX);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// A `HashMap` keyed by symbols (or other self-minted small keys),
/// using [`SymbolHasher`].
pub type SymbolMap<K, V> = HashMap<K, V, BuildHasherDefault<SymbolHasher>>;

/// An interned string: a dense index into an [`Interner`]'s arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Dense index (symbols are handed out consecutively from 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The symbol `n` places after this one in interning order.
    ///
    /// Only meaningful when the caller knows the arena laid those
    /// symbols out back-to-back (the elaborator interns every element
    /// of an unpacked array consecutively, so element `i` is
    /// `elem0.offset(i)` without re-hashing the name).
    pub fn offset(self, n: u32) -> Symbol {
        Symbol(self.0 + n)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// FNV-1a offset basis, exposed as the seed for content digests built
/// on the same hash family elsewhere in the workspace.
pub const FNV1A_SEED: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a offset basis.
const FNV_OFFSET: u64 = FNV1A_SEED;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One FNV-1a accumulation step: folds `bytes` into the running hash
/// `h` (seed with [`FNV1A_SEED`]).
pub fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    fnv_bytes(h, bytes)
}

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An append-only string arena with hashed deduplication.
///
/// All interned text lives in one `String` buffer; each [`Symbol`]
/// maps to a `(start, end)` span. Deduplication goes through FNV
/// hash buckets with a full-text compare on collision, so two interns
/// of equal text always return the same symbol.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    buf: String,
    spans: Vec<(u32, u32)>,
    buckets: SymbolMap<u64, Vec<Symbol>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when no string has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The text of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` did not come from this interner (or a clone
    /// sharing its prefix).
    pub fn resolve(&self, sym: Symbol) -> &str {
        let (lo, hi) = self.spans[sym.index()];
        &self.buf[lo as usize..hi as usize]
    }

    /// Interns `s`, returning the existing symbol when already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.intern_parts(&[s])
    }

    /// Interns the concatenation of `parts` without allocating the
    /// concatenated string first (the flattener's
    /// `prefix + name` hot path).
    pub fn intern_parts(&mut self, parts: &[&str]) -> Symbol {
        let mut h = FNV_OFFSET;
        for p in parts {
            h = fnv_bytes(h, p.as_bytes());
        }
        if let Some(cands) = self.buckets.get(&h) {
            'cand: for &sym in cands {
                let (lo, hi) = self.spans[sym.index()];
                let mut text = &self.buf[lo as usize..hi as usize];
                for p in parts {
                    match text.strip_prefix(p) {
                        Some(rest) => text = rest,
                        None => continue 'cand,
                    }
                }
                if text.is_empty() {
                    return sym;
                }
            }
        }
        let lo = self.buf.len() as u32;
        for p in parts {
            self.buf.push_str(p);
        }
        let hi = self.buf.len() as u32;
        let sym = Symbol(self.spans.len() as u32);
        self.spans.push((lo, hi));
        self.buckets.entry(h).or_default().push(sym);
        sym
    }

    /// The symbol of `s` if it was interned, without inserting.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        let h = fnv_bytes(FNV_OFFSET, s.as_bytes());
        self.buckets.get(&h)?.iter().copied().find(|&sym| {
            let (lo, hi) = self.spans[sym.index()];
            &self.buf[lo as usize..hi as usize] == s
        })
    }

    /// FNV-1a over the whole arena (text plus span structure): a cheap
    /// canonical digest of every name the design uses, independent of
    /// map iteration order.
    pub fn arena_digest(&self) -> u64 {
        let mut h = fnv_bytes(FNV_OFFSET, self.buf.as_bytes());
        for &(lo, hi) in &self.spans {
            h = fnv_bytes(h, &lo.to_le_bytes());
            h = fnv_bytes(h, &hi.to_le_bytes());
        }
        h
    }

    /// All symbols in interning order, paired with their text.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.spans
            .iter()
            .enumerate()
            .map(move |(i, &(lo, hi))| (Symbol(i as u32), &self.buf[lo as usize..hi as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("clk");
        let b = i.intern("reset_");
        let a2 = i.intern("clk");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "clk");
        assert_eq!(i.resolve(b), "reset_");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn intern_parts_matches_concatenation() {
        let mut i = Interner::new();
        let whole = i.intern("dut.q");
        let parts = i.intern_parts(&["dut.", "q"]);
        assert_eq!(whole, parts);
        // Same characters, different split points: still one symbol.
        assert_eq!(i.intern_parts(&["dut", ".q"]), whole);
        assert_eq!(i.len(), 1);
        // A prefix-sharing but different string is distinct.
        let other = i.intern_parts(&["dut.", "qq"]);
        assert_ne!(other, whole);
        assert_eq!(i.resolve(other), "dut.qq");
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut i = Interner::new();
        assert_eq!(i.lookup("x"), None);
        let s = i.intern("x");
        assert_eq!(i.lookup("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn clone_keeps_symbols_valid_while_appending() {
        let mut base = Interner::new();
        let a = base.intern("a");
        let mut cont = base.clone();
        let b = cont.intern("b");
        assert_eq!(cont.resolve(a), "a");
        assert_eq!(cont.resolve(b), "b");
        // The original is untouched.
        assert_eq!(base.len(), 1);
    }

    #[test]
    fn arena_digest_tracks_content() {
        let mut a = Interner::new();
        a.intern("x");
        a.intern("y");
        let mut b = Interner::new();
        b.intern("x");
        b.intern("y");
        assert_eq!(a.arena_digest(), b.arena_digest());
        b.intern("z");
        assert_ne!(a.arena_digest(), b.arena_digest());
    }
}
