//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! This crate is the decision-procedure substrate of the FVEval
//! reproduction: the assertion-equivalence checker and the BMC /
//! k-induction engines in `fv-core` reduce their queries to CNF and
//! discharge them here.
//!
//! The solver implements the standard modern architecture:
//! two-watched-literal propagation, first-UIP conflict analysis with
//! clause minimization, VSIDS-style activity decision heuristics with
//! phase saving, Luby restarts, and learned-clause database reduction.
//!
//! # Examples
//!
//! ```
//! use fv_sat::{Solver, Lit};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a)]);
//! assert!(s.solve().is_sat());
//! assert_eq!(s.value(b), Some(true));
//! ```

#![deny(missing_docs)]

mod clause;
mod dimacs;
mod heap;
mod luby;
mod solver;

pub use clause::{Clause, ClauseRef};
pub use dimacs::{parse_dimacs, solver_from_dimacs, to_dimacs, ParseDimacsError};
pub use solver::{SolveResult, Solver, SolverStats};

/// A boolean variable, identified by a dense non-negative index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Returns the dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `2 * var + sign` so that literals can index dense arrays
/// (the watch lists) directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = negated).
    #[inline]
    pub fn new(v: Var, negated: bool) -> Lit {
        Lit((v.0 << 1) | negated as u32)
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Dense index usable for watch lists (`2 * var + sign`).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::index`].
    #[inline]
    pub fn from_index(i: usize) -> Lit {
        Lit(i as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_neg() {
            write!(f, "!{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// Ternary assignment value used internally and in models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

impl LBool {
    /// Converts to `Option<bool>` (`Undef` becomes `None`).
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// XORs the value with a sign; `Undef` is preserved.
    #[inline]
    pub fn xor(self, sign: bool) -> LBool {
        match (self, sign) {
            (LBool::Undef, _) => LBool::Undef,
            (v, false) => v,
            (LBool::True, true) => LBool::False,
            (LBool::False, true) => LBool::True,
        }
    }
}

impl From<bool> for LBool {
    fn from(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding_round_trips() {
        let v = Var(17);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(!Lit::pos(v).is_neg());
        assert!(Lit::neg(v).is_neg());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(!!Lit::pos(v), Lit::pos(v));
        assert_eq!(Lit::from_index(Lit::neg(v).index()), Lit::neg(v));
    }

    #[test]
    fn lbool_xor() {
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::False.xor(true), LBool::True);
        assert_eq!(LBool::Undef.xor(true), LBool::Undef);
        assert_eq!(LBool::True.xor(false), LBool::True);
    }

    #[test]
    fn display_forms() {
        let v = Var(3);
        assert_eq!(Lit::pos(v).to_string(), "x3");
        assert_eq!(Lit::neg(v).to_string(), "!x3");
    }
}
