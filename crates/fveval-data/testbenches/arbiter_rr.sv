// NL2SVA-Human collateral: 4-client round-robin arbiter.
//
// A rotating pointer gives each client a turn at top priority. hold
// freezes the previous grant (continued grant); busy suppresses all
// grants.
module arbiter_rr_tb (
    input clk,
    input reset_,
    input [3:0] tb_req,
    input busy,
    input hold
);
  parameter N_CLIENTS = 4;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  reg [1:0] rr_ptr;
  reg [3:0] gnt_q;

  // Continued grant: hold re-issues last cycle's (non-zero) grant.
  wire cont_gnt;
  assign cont_gnt = hold && (gnt_q != 4'd0) && !busy;

  // Fixed-priority pick for each of the four pointer positions.
  wire [3:0] pri0;
  wire [3:0] pri1;
  wire [3:0] pri2;
  wire [3:0] pri3;
  assign pri0 = tb_req[0] ? 4'b0001
              : tb_req[1] ? 4'b0010
              : tb_req[2] ? 4'b0100
              : tb_req[3] ? 4'b1000
              : 4'b0000;
  assign pri1 = tb_req[1] ? 4'b0010
              : tb_req[2] ? 4'b0100
              : tb_req[3] ? 4'b1000
              : tb_req[0] ? 4'b0001
              : 4'b0000;
  assign pri2 = tb_req[2] ? 4'b0100
              : tb_req[3] ? 4'b1000
              : tb_req[0] ? 4'b0001
              : tb_req[1] ? 4'b0010
              : 4'b0000;
  assign pri3 = tb_req[3] ? 4'b1000
              : tb_req[0] ? 4'b0001
              : tb_req[1] ? 4'b0010
              : tb_req[2] ? 4'b0100
              : 4'b0000;

  wire [3:0] rr_pick;
  assign rr_pick = (rr_ptr == 2'd0) ? pri0
                 : (rr_ptr == 2'd1) ? pri1
                 : (rr_ptr == 2'd2) ? pri2
                 : pri3;

  wire [3:0] tb_gnt;
  assign tb_gnt = busy ? 4'b0000 : (cont_gnt ? gnt_q : rr_pick);

  always_ff @(posedge clk or negedge reset_) begin
    if (!reset_) begin
      rr_ptr <= 2'd0;
      gnt_q <= 4'd0;
    end else begin
      gnt_q <= tb_gnt;
      if (!cont_gnt) begin
        if (tb_gnt[0]) rr_ptr <= 2'd1;
        if (tb_gnt[1]) rr_ptr <= 2'd2;
        if (tb_gnt[2]) rr_ptr <= 2'd3;
        if (tb_gnt[3]) rr_ptr <= 2'd0;
      end
    end
  end
endmodule
