//! BLEU score over code tokens (the paper's lexical-similarity metric).

use crate::tokenize::code_tokens;
use std::collections::HashMap;

/// Computes smoothed BLEU-4 between a candidate and a single reference.
///
/// Uses +1 smoothing on n-gram precisions (Lin & Och) and the standard
/// brevity penalty, over the lexical code tokens of both strings.
///
/// # Examples
///
/// ```
/// use fveval_core::bleu;
/// let reference = "assert property (@(posedge clk) a |-> b);";
/// assert!((bleu(reference, reference) - 1.0).abs() < 1e-9);
/// assert!(bleu(reference, "assert property (@(posedge clk) !a);") < 0.8);
/// ```
pub fn bleu(reference: &str, candidate: &str) -> f64 {
    let r = code_tokens(reference);
    let c = code_tokens(candidate);
    if c.is_empty() || r.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for n in 1..=4usize {
        let p = modified_precision(&r, &c, n);
        log_sum += p.ln() * 0.25;
    }
    let bp = if c.len() >= r.len() {
        1.0
    } else {
        (1.0 - r.len() as f64 / c.len() as f64).exp()
    };
    bp * log_sum.exp()
}

fn ngram_counts(tokens: &[String], n: usize) -> HashMap<&[String], usize> {
    let mut m: HashMap<&[String], usize> = HashMap::new();
    if tokens.len() >= n {
        for w in tokens.windows(n) {
            *m.entry(w).or_insert(0) += 1;
        }
    }
    m
}

fn modified_precision(reference: &[String], candidate: &[String], n: usize) -> f64 {
    let ref_counts = ngram_counts(reference, n);
    let cand_counts = ngram_counts(candidate, n);
    let total: usize = cand_counts.values().sum();
    let clipped: usize = cand_counts
        .iter()
        .map(|(g, &c)| c.min(ref_counts.get(g).copied().unwrap_or(0)))
        .sum();
    // +1 smoothing keeps zero-overlap candidates comparable.
    (clipped as f64 + 1.0) / (total as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_one() {
        let s = "asrt: assert property (@(posedge clk) a |-> ##2 b);";
        assert!((bleu(s, s) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_candidate_is_zero() {
        assert_eq!(bleu("a b c", ""), 0.0);
        assert_eq!(bleu("", "a"), 0.0);
    }

    #[test]
    fn partial_overlap_is_between() {
        let r = "assert property (@(posedge clk) (a && b) |-> c);";
        let c = "assert property (@(posedge clk) (a || b) |-> c);";
        let s = bleu(r, c);
        assert!(s > 0.5 && s < 1.0, "got {s}");
    }

    #[test]
    fn order_matters() {
        let r = "a b c d e f g h";
        let shuffled = "h g f e d c b a";
        assert!(bleu(r, shuffled) < bleu(r, "a b c d e f g x"));
    }

    #[test]
    fn brevity_penalty_applies() {
        let r = "a b c d e f g h i j";
        let short = "a b c";
        let long = "a b c d e f g h i j";
        assert!(bleu(r, short) < bleu(r, long));
    }

    #[test]
    fn symmetric_in_range() {
        let r = "assert property (x |-> y);";
        let c = "property assert (y |-> x);";
        let s = bleu(r, c);
        assert!((0.0..=1.0).contains(&s));
    }
}
