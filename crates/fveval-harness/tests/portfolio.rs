//! Portfolio determinism at the reporting surface: every table and
//! note the harness emits must be byte-identical whether candidates
//! are scored by the bounded BMC + k-induction schedule alone or by
//! the racing portfolio, and invariant under the worker count. Racing
//! detail (which engine won, cancellations) is allowed to differ only
//! in `prover_stats`, which is attribution — not results.

use fveval_core::{Design2svaRunner, EvalEngine};
use fveval_gen::SuiteConfig;
use fveval_harness::gen_report;

fn engine_with(prove_engine: fv_core::ProveEngine, jobs: usize) -> EvalEngine {
    let cfg = fv_core::ProveConfig {
        engine: prove_engine,
        ..fv_core::ProveConfig::default()
    };
    EvalEngine::with_jobs(jobs).with_d2s_runner(Design2svaRunner::new().with_prove_config(cfg))
}

/// One full generated-workload report (validation table + notes, which
/// embed the greedy eval summary) rendered to its final text.
fn report_text(prove_engine: fv_core::ProveEngine, jobs: usize) -> String {
    let cfg = SuiteConfig {
        per_family: 1,
        seed: 0x5EED,
        ..SuiteConfig::default()
    };
    let (table, notes, _suite, errors) =
        gen_report(&engine_with(prove_engine, jobs), &cfg, true).expect("suite binds");
    assert_eq!(errors, 0, "golden verdicts must confirm:\n{notes}");
    format!("{}\n{notes}", table.to_markdown())
}

#[test]
fn reported_tables_are_engine_and_jobs_invariant() {
    use fv_core::ProveEngine::{Bounded, Portfolio};
    let baseline = report_text(Bounded, 1);
    assert_eq!(
        baseline,
        report_text(Portfolio, 1),
        "portfolio racing changed a reported table"
    );
    assert_eq!(
        baseline,
        report_text(Portfolio, 4),
        "worker count changed a reported table under the portfolio"
    );
}
