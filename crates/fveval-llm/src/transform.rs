//! The noisy-channel transform toolbox: turns a reference assertion
//! into exact / equivalent / partial / wrong / malformed responses.

use crate::DetRng;
use fv_core::SignalTable;
use sv_ast::{
    print_assertion, Assertion, BinaryOp, DelayBound, Expr, Literal, PropExpr, SeqExpr, SysFunc,
    UnaryOp,
};

/// Draw result for a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Outcome {
    Exact,
    Equivalent,
    Partial,
    Wrong,
    SyntaxError,
}

/// Either a well-formed assertion or deliberately broken text.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Rendered {
    Ast(Assertion),
    Raw(String),
}

/// Surface style of a simulated model's code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Style {
    /// Assertion label behaviour.
    label: LabelStyle,
    /// Prefers `$countones(x) % 2 == 1` over `^x` in rewrites.
    prefer_countones: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LabelStyle {
    /// No label.
    None,
    /// Keep/emit `asrt:`.
    Asrt,
    /// Emit a descriptive snake_case label.
    Descriptive,
}

impl Style {
    /// Unlabeled minimal output.
    pub fn plain() -> Style {
        Style {
            label: LabelStyle::None,
            prefer_countones: false,
        }
    }

    /// Descriptive labels (`asrt_fifo_output_consistency:` flavour).
    pub fn verbose_label() -> Style {
        Style {
            label: LabelStyle::Descriptive,
            prefer_countones: true,
        }
    }

    /// Short `asrt:` labels.
    pub fn snake_label() -> Style {
        Style {
            label: LabelStyle::Asrt,
            prefer_countones: false,
        }
    }
}

/// Applies the outcome's transform to the reference.
pub(crate) fn transform(
    reference: &Assertion,
    outcome: Outcome,
    table: &SignalTable,
    rng: &mut DetRng,
) -> Rendered {
    match outcome {
        // "Exact" reproductions still carry benign surface rewrites —
        // real models rarely emit token-identical code. This keeps BLEU
        // decorrelated from functional correctness (the Figure 6
        // finding); bodies that match no rewrite pattern pass through
        // verbatim.
        Outcome::Exact => Rendered::Ast(equivalent_rewrite(reference, rng)),
        Outcome::Equivalent => Rendered::Ast(equivalent_rewrite(reference, rng)),
        Outcome::Partial => Rendered::Ast(partial_rewrite(reference, table, rng)),
        Outcome::Wrong => Rendered::Ast(wrong_rewrite(reference, rng)),
        Outcome::SyntaxError => Rendered::Raw(corrupt_text(reference, table, rng)),
    }
}

// ---------------------------------------------------------------------
// Equivalence-preserving rewrites
// ---------------------------------------------------------------------

fn equivalent_rewrite(a: &Assertion, rng: &mut DetRng) -> Assertion {
    let mut out = a.clone();
    let strategy = rng.below(4);
    out.body = match strategy {
        // `(X) !== 1'b1`  <->  `!(X)`
        0 => rewrite_neq_form(&out.body),
        // `a |=> b` <-> `a |-> ##1 b`
        1 => rewrite_nonoverlap(&out.body),
        // Commute a top-level && / ||.
        2 => map_body_expr(&out.body, &commute_expr),
        // `^x` <-> `$countones(x) % 2 == 1`
        _ => map_body_expr(&out.body, &parity_rewrite),
    };
    out
}

fn rewrite_neq_form(p: &PropExpr) -> PropExpr {
    match p {
        PropExpr::Seq(SeqExpr::Expr(Expr::Binary(BinaryOp::CaseNeq, x, one)))
            if is_one_bit_one(one) =>
        {
            PropExpr::expr((**x).clone().lnot())
        }
        PropExpr::Seq(SeqExpr::Expr(Expr::Unary(UnaryOp::LogNot, x))) => PropExpr::expr(Expr::bin(
            BinaryOp::CaseNeq,
            (**x).clone(),
            Expr::Literal(Literal::sized_bin(1, 1)),
        )),
        other => other.clone(),
    }
}

fn is_one_bit_one(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Literal(Literal::Int {
            width: Some(1),
            value: 1,
            ..
        })
    )
}

fn rewrite_nonoverlap(p: &PropExpr) -> PropExpr {
    match p {
        PropExpr::Implication {
            ante,
            non_overlap: true,
            cons,
        } => PropExpr::Implication {
            ante: ante.clone(),
            non_overlap: false,
            cons: Box::new(PropExpr::Seq(SeqExpr::Delay {
                lhs: None,
                lo: 1,
                hi: DelayBound::Finite(1),
                rhs: Box::new(match cons.as_ref() {
                    PropExpr::Seq(s) => s.clone(),
                    other => {
                        return PropExpr::Implication {
                            ante: ante.clone(),
                            non_overlap: true,
                            cons: Box::new(other.clone()),
                        }
                    }
                }),
            })),
        },
        PropExpr::Implication {
            ante,
            non_overlap: false,
            cons,
        } => match cons.as_ref() {
            PropExpr::Seq(SeqExpr::Delay {
                lhs: None,
                lo: 1,
                hi: DelayBound::Finite(1),
                rhs,
            }) => PropExpr::Implication {
                ante: ante.clone(),
                non_overlap: true,
                cons: Box::new(PropExpr::Seq((**rhs).clone())),
            },
            _ => p.clone(),
        },
        other => other.clone(),
    }
}

fn commute_expr(e: &Expr) -> Expr {
    match e {
        Expr::Binary(op @ (BinaryOp::LogAnd | BinaryOp::LogOr), a, b) => {
            Expr::Binary(*op, b.clone(), a.clone())
        }
        Expr::Binary(op, a, b) => {
            Expr::Binary(*op, Box::new(commute_expr(a)), Box::new(commute_expr(b)))
        }
        Expr::Unary(op, i) => Expr::Unary(*op, Box::new(commute_expr(i))),
        other => other.clone(),
    }
}

fn parity_rewrite(e: &Expr) -> Expr {
    match e {
        Expr::Unary(UnaryOp::RedXor, x) => Expr::bin(
            BinaryOp::Eq,
            Expr::bin(
                BinaryOp::Mod,
                Expr::SysCall(SysFunc::Countones, vec![(**x).clone()]),
                Expr::num(2),
            ),
            Expr::num(1),
        ),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(parity_rewrite(a)),
            Box::new(parity_rewrite(b)),
        ),
        Expr::Unary(op, i) => Expr::Unary(*op, Box::new(parity_rewrite(i))),
        other => other.clone(),
    }
}

fn map_body_expr(p: &PropExpr, f: &dyn Fn(&Expr) -> Expr) -> PropExpr {
    fn map_seq(s: &SeqExpr, f: &dyn Fn(&Expr) -> Expr) -> SeqExpr {
        match s {
            SeqExpr::Expr(e) => SeqExpr::Expr(f(e)),
            SeqExpr::Delay { lhs, lo, hi, rhs } => SeqExpr::Delay {
                lhs: lhs.as_ref().map(|l| Box::new(map_seq(l, f))),
                lo: *lo,
                hi: *hi,
                rhs: Box::new(map_seq(rhs, f)),
            },
            SeqExpr::Repeat { seq, lo, hi } => SeqExpr::Repeat {
                seq: Box::new(map_seq(seq, f)),
                lo: *lo,
                hi: *hi,
            },
            SeqExpr::And(a, b) => SeqExpr::And(Box::new(map_seq(a, f)), Box::new(map_seq(b, f))),
            SeqExpr::Or(a, b) => SeqExpr::Or(Box::new(map_seq(a, f)), Box::new(map_seq(b, f))),
            SeqExpr::Throughout(e, s) => SeqExpr::Throughout(f(e), Box::new(map_seq(s, f))),
        }
    }
    match p {
        PropExpr::Seq(s) => PropExpr::Seq(map_seq(s, f)),
        PropExpr::Strong(s) => PropExpr::Strong(map_seq(s, f)),
        PropExpr::Weak(s) => PropExpr::Weak(map_seq(s, f)),
        PropExpr::Not(i) => PropExpr::Not(Box::new(map_body_expr(i, f))),
        PropExpr::And(a, b) => {
            PropExpr::And(Box::new(map_body_expr(a, f)), Box::new(map_body_expr(b, f)))
        }
        PropExpr::Or(a, b) => {
            PropExpr::Or(Box::new(map_body_expr(a, f)), Box::new(map_body_expr(b, f)))
        }
        PropExpr::Implication {
            ante,
            non_overlap,
            cons,
        } => PropExpr::Implication {
            ante: map_seq(ante, f),
            non_overlap: *non_overlap,
            cons: Box::new(map_body_expr(cons, f)),
        },
        PropExpr::SEventually(i) => PropExpr::SEventually(Box::new(map_body_expr(i, f))),
        PropExpr::Always(i) => PropExpr::Always(Box::new(map_body_expr(i, f))),
        PropExpr::Nexttime(i) => PropExpr::Nexttime(Box::new(map_body_expr(i, f))),
        PropExpr::Until { strong, lhs, rhs } => PropExpr::Until {
            strong: *strong,
            lhs: Box::new(map_body_expr(lhs, f)),
            rhs: Box::new(map_body_expr(rhs, f)),
        },
        PropExpr::IfElse { cond, then, alt } => PropExpr::IfElse {
            cond: f(cond),
            then: Box::new(map_body_expr(then, f)),
            alt: alt.as_ref().map(|a| Box::new(map_body_expr(a, f))),
        },
    }
}

// ---------------------------------------------------------------------
// Partial (one-way implication) rewrites
// ---------------------------------------------------------------------

/// Picks a 1-bit "distractor" boolean over a signal not already used.
fn extra_bool(reference: &Assertion, table: &SignalTable, rng: &mut DetRng) -> Expr {
    let used: Vec<String> = collect_idents(&reference.body);
    let mut candidates: Vec<&str> = table
        .names()
        .filter(|n| !used.iter().any(|u| u == n))
        .collect();
    candidates.sort_unstable();
    let name = if candidates.is_empty() {
        table.names().next().unwrap_or("clk").to_string()
    } else {
        (*rng.pick(&candidates)).to_string()
    };
    match table.width(&name) {
        Some(1) | None => Expr::ident(name),
        Some(_) => Expr::Unary(UnaryOp::RedOr, Box::new(Expr::ident(name))),
    }
}

fn collect_idents(p: &PropExpr) -> Vec<String> {
    let out = std::cell::RefCell::new(Vec::new());
    let _ = map_body_expr(p, &|e| {
        for id in e.idents() {
            out.borrow_mut().push(id.to_string());
        }
        e.clone()
    });
    out.into_inner()
}

fn partial_rewrite(a: &Assertion, table: &SignalTable, rng: &mut DetRng) -> Assertion {
    let mut out = a.clone();
    // Preferred: the paper's weak/strong confusion on unbounded delays.
    if let PropExpr::Implication {
        ante,
        non_overlap,
        cons,
    } = &out.body
    {
        if let PropExpr::Strong(s) = cons.as_ref() {
            // Drop strong() -> weak consequent: reference implies candidate.
            out.body = PropExpr::Implication {
                ante: ante.clone(),
                non_overlap: *non_overlap,
                cons: Box::new(PropExpr::Seq(s.clone())),
            };
            return out;
        }
        // Strengthen the antecedent with a distractor: candidate weaker.
        if let SeqExpr::Expr(e) = ante {
            let extra = extra_bool(a, table, rng);
            if rng.below(2) == 0 {
                out.body = PropExpr::Implication {
                    ante: SeqExpr::Expr(e.clone().land(extra)),
                    non_overlap: *non_overlap,
                    cons: cons.clone(),
                };
                return out;
            }
        }
    }
    // Generic: weaken (ref => cand) or strengthen (cand => ref) by a
    // property-level connective with a distractor.
    let extra = PropExpr::expr(extra_bool(a, table, rng));
    out.body = if rng.below(2) == 0 {
        PropExpr::Or(Box::new(a.body.clone()), Box::new(extra))
    } else {
        PropExpr::And(Box::new(a.body.clone()), Box::new(extra))
    };
    out
}

// ---------------------------------------------------------------------
// Plausible-but-wrong rewrites
// ---------------------------------------------------------------------

fn wrong_rewrite(a: &Assertion, rng: &mut DetRng) -> Assertion {
    let mut out = a.clone();
    let strategy = rng.below(3);
    if strategy == 0 {
        // Off-by-one delay anywhere in the body.
        let mut changed = false;
        out.body = bump_first_delay(&out.body, &mut changed);
        if changed {
            return out;
        }
    }
    if strategy <= 1 {
        // Flip the timing operator without adjusting delay.
        if let PropExpr::Implication {
            ante,
            non_overlap,
            cons,
        } = &out.body
        {
            if matches!(cons.as_ref(), PropExpr::Seq(SeqExpr::Expr(_))) {
                out.body = PropExpr::Implication {
                    ante: ante.clone(),
                    non_overlap: !*non_overlap,
                    cons: cons.clone(),
                };
                return out;
            }
        }
    }
    // Polarity flip of the first boolean atom.
    let flipped = std::cell::Cell::new(false);
    out.body = map_body_expr(&out.body, &|e| {
        if flipped.get() {
            return e.clone();
        }
        let mut local = false;
        let mapped = flip_first_ident(e, &mut local);
        if local {
            flipped.set(true);
        }
        mapped
    });
    out
}

fn bump_first_delay(p: &PropExpr, changed: &mut bool) -> PropExpr {
    map_seq_in_prop(p, &mut |s: &SeqExpr| match s {
        SeqExpr::Delay { lhs, lo, hi, rhs } if !*changed => {
            *changed = true;
            let nlo = lo + 1;
            let nhi = match hi {
                DelayBound::Finite(h) => DelayBound::Finite(h + 1),
                DelayBound::Unbounded => DelayBound::Unbounded,
            };
            SeqExpr::Delay {
                lhs: lhs.clone(),
                lo: nlo,
                hi: nhi,
                rhs: rhs.clone(),
            }
        }
        other => other.clone(),
    })
}

fn map_seq_in_prop(p: &PropExpr, f: &mut dyn FnMut(&SeqExpr) -> SeqExpr) -> PropExpr {
    match p {
        PropExpr::Seq(s) => PropExpr::Seq(f(s)),
        PropExpr::Strong(s) => PropExpr::Strong(f(s)),
        PropExpr::Weak(s) => PropExpr::Weak(f(s)),
        PropExpr::Not(i) => PropExpr::Not(Box::new(map_seq_in_prop(i, f))),
        PropExpr::And(a, b) => PropExpr::And(
            Box::new(map_seq_in_prop(a, f)),
            Box::new(map_seq_in_prop(b, f)),
        ),
        PropExpr::Or(a, b) => PropExpr::Or(
            Box::new(map_seq_in_prop(a, f)),
            Box::new(map_seq_in_prop(b, f)),
        ),
        PropExpr::Implication {
            ante,
            non_overlap,
            cons,
        } => PropExpr::Implication {
            ante: f(ante),
            non_overlap: *non_overlap,
            cons: Box::new(map_seq_in_prop(cons, f)),
        },
        PropExpr::SEventually(i) => PropExpr::SEventually(Box::new(map_seq_in_prop(i, f))),
        PropExpr::Always(i) => PropExpr::Always(Box::new(map_seq_in_prop(i, f))),
        PropExpr::Nexttime(i) => PropExpr::Nexttime(Box::new(map_seq_in_prop(i, f))),
        PropExpr::Until { strong, lhs, rhs } => PropExpr::Until {
            strong: *strong,
            lhs: Box::new(map_seq_in_prop(lhs, f)),
            rhs: Box::new(map_seq_in_prop(rhs, f)),
        },
        PropExpr::IfElse { cond, then, alt } => PropExpr::IfElse {
            cond: cond.clone(),
            then: Box::new(map_seq_in_prop(then, f)),
            alt: alt.as_ref().map(|a| Box::new(map_seq_in_prop(a, f))),
        },
    }
}

fn flip_first_ident(e: &Expr, flipped: &mut bool) -> Expr {
    if *flipped {
        return e.clone();
    }
    match e {
        Expr::Ident(_) => {
            *flipped = true;
            e.clone().lnot()
        }
        Expr::Unary(op, i) => Expr::Unary(*op, Box::new(flip_first_ident(i, flipped))),
        Expr::Binary(op, a, b) => {
            let na = flip_first_ident(a, flipped);
            Expr::Binary(*op, Box::new(na), b.clone())
        }
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------
// Syntax hallucinations
// ---------------------------------------------------------------------

fn corrupt_text(a: &Assertion, table: &SignalTable, rng: &mut DetRng) -> String {
    let text = print_assertion(a);
    match rng.below(5) {
        0 if text.contains("s_eventually") => {
            // The paper's flagship hallucination (Figure 7).
            text.replace("s_eventually", "eventually")
        }
        0 | 1 if text.contains("strong(") => text.replace("strong(", "eventually("),
        1 | 2 => {
            // Unbalanced parentheses.
            match text.rfind(')') {
                Some(p) => format!("{}{}", &text[..p], &text[p + 1..]),
                None => format!("{text})"),
            }
        }
        3 => text.replace("|->", "|- >").replace("|=>", "|= >"),
        _ => {
            // Reference an undeclared signal (elaboration failure):
            // rename the first body identifier as a whole word.
            let used = collect_idents(&a.body);
            let target = used
                .iter()
                .find(|n| table.width(n).is_some())
                .or_else(|| used.first());
            match target {
                Some(n) => replace_whole_word(&text, n, &format!("{n}_q")),
                None => format!("{text} ##"),
            }
        }
    }
}

/// Replaces the first whole-identifier occurrence of `word`.
fn replace_whole_word(text: &str, word: &str, with: &str) -> String {
    let bytes = text.as_bytes();
    let mut start = 0;
    while let Some(pos) = text[start..].find(word) {
        let i = start + pos;
        let before_ok = i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        let j = i + word.len();
        let after_ok = j >= bytes.len() || !(bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_');
        if before_ok && after_ok {
            return format!("{}{}{}", &text[..i], with, &text[j..]);
        }
        start = i + 1;
    }
    format!("{text} ##")
}

// ---------------------------------------------------------------------
// Rendering with style
// ---------------------------------------------------------------------

/// Renders a transform result as response text in the model's style.
pub(crate) fn render_with_style(r: &Rendered, style: &Style, rng: &mut DetRng) -> String {
    match r {
        Rendered::Raw(s) => s.clone(),
        Rendered::Ast(a) => {
            let mut a = a.clone();
            a.label = match style.label {
                LabelStyle::None => None,
                LabelStyle::Asrt => Some("asrt".to_string()),
                LabelStyle::Descriptive => Some(descriptive_label(&a, rng)),
            };
            print_assertion(&a)
        }
    }
}

fn descriptive_label(a: &Assertion, rng: &mut DetRng) -> String {
    let idents = collect_idents(&a.body);
    let stem = idents
        .first()
        .map(|s| s.replace(|c: char| !c.is_ascii_alphanumeric(), "_"))
        .unwrap_or_else(|| "prop".to_string());
    let suffixes = ["check", "holds", "valid", "ok"];
    format!("asrt_{stem}_{}", suffixes[rng.below(suffixes.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use fv_core::{check_equivalence, EquivConfig, Equivalence};
    use sv_parser::parse_assertion_str;

    fn table() -> SignalTable {
        [
            ("a", 1u32),
            ("b", 1),
            ("c", 1),
            ("wr_push", 1),
            ("rd_pop", 1),
            ("tb_reset", 1),
            ("sig_H", 4),
        ]
        .into_iter()
        .collect()
    }

    fn rng() -> DetRng {
        DetRng::from_parts(&["test"])
    }

    fn verdict(reference: &str, candidate: &Assertion) -> Equivalence {
        let r = parse_assertion_str(reference).unwrap();
        check_equivalence(&r, candidate, &table(), EquivConfig::default())
            .unwrap()
            .verdict
    }

    #[test]
    fn equivalent_rewrites_stay_equivalent() {
        let srcs = [
            "assert property (@(posedge clk) (a && b) !== 1'b1);",
            "assert property (@(posedge clk) a |=> b);",
            "assert property (@(posedge clk) (^sig_H) == 1'b1);",
            "assert property (@(posedge clk) a |-> ##2 (b || c));",
        ];
        for src in srcs {
            let reference = parse_assertion_str(src).unwrap();
            for i in 0..8 {
                let mut r = DetRng::from_parts(&["eq", src, &i.to_string()]);
                let out = equivalent_rewrite(&reference, &mut r);
                assert_eq!(
                    verdict(src, &out),
                    Equivalence::Equivalent,
                    "{src} -> {}",
                    print_assertion(&out)
                );
            }
        }
    }

    #[test]
    fn partial_rewrites_are_partial_not_equivalent() {
        let srcs = [
            "assert property (@(posedge clk) disable iff (tb_reset) wr_push |-> strong(##[0:$] rd_pop));",
            "assert property (@(posedge clk) a |-> ##2 b);",
            "assert property (@(posedge clk) (a && b) !== 1'b1);",
        ];
        for src in srcs {
            let reference = parse_assertion_str(src).unwrap();
            for i in 0..6 {
                let mut r = DetRng::from_parts(&["pa", src, &i.to_string()]);
                let out = partial_rewrite(&reference, &table(), &mut r);
                let v = verdict(src, &out);
                assert!(
                    v.is_partial() && !v.is_equivalent(),
                    "{src} -> {} gave {v:?}",
                    print_assertion(&out)
                );
            }
        }
    }

    #[test]
    fn wrong_rewrites_change_semantics() {
        let srcs = [
            "assert property (@(posedge clk) a |-> ##2 b);",
            "assert property (@(posedge clk) (a && b) |-> c);",
        ];
        for src in srcs {
            let reference = parse_assertion_str(src).unwrap();
            for i in 0..6 {
                let mut r = DetRng::from_parts(&["wr", src, &i.to_string()]);
                let out = wrong_rewrite(&reference, &mut r);
                let v = verdict(src, &out);
                assert_ne!(
                    v,
                    Equivalence::Equivalent,
                    "{src} -> {}",
                    print_assertion(&out)
                );
            }
        }
    }

    #[test]
    fn corrupted_text_fails_syntax_or_elaboration() {
        let srcs = [
            "assert property (@(posedge clk) a |-> s_eventually (b));",
            "assert property (@(posedge clk) wr_push |-> strong(##[0:$] rd_pop));",
            "assert property (@(posedge clk) (a && b) |-> c);",
        ];
        let t = table();
        for src in srcs {
            let reference = parse_assertion_str(src).unwrap();
            for i in 0..10 {
                let mut r = DetRng::from_parts(&["sx", src, &i.to_string()]);
                let broken = corrupt_text(&reference, &t, &mut r);
                // Either it fails to parse, or it parses but fails to
                // resolve (unknown signal) — both are tool failures.
                match parse_assertion_str(&broken) {
                    Err(_) => {}
                    Ok(parsed) => {
                        let res =
                            check_equivalence(&reference, &parsed, &t, EquivConfig::default());
                        assert!(res.is_err(), "corruption survived: {broken}");
                    }
                }
            }
        }
    }

    #[test]
    fn style_labels_render() {
        let a =
            parse_assertion_str("assert property (@(posedge clk) wr_push |-> rd_pop);").unwrap();
        let mut r = rng();
        let plain = render_with_style(&Rendered::Ast(a.clone()), &Style::plain(), &mut r);
        assert!(plain.starts_with("assert property"));
        let labeled = render_with_style(&Rendered::Ast(a.clone()), &Style::snake_label(), &mut r);
        assert!(labeled.starts_with("asrt:"));
        let descriptive = render_with_style(&Rendered::Ast(a), &Style::verbose_label(), &mut r);
        assert!(descriptive.starts_with("asrt_wr_push_"));
    }
}
