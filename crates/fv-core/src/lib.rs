//! The formal-verification engine of the FVEval reproduction.
//!
//! This crate stands in for the commercial tool backend (Cadence Jasper
//! in the paper) in both roles the benchmark uses it for:
//!
//! - **Assertion-to-assertion equivalence** ([`check_equivalence`]):
//!   the paper's custom Jasper function that proves whether a
//!   model-generated SVA assertion is logically equivalent to the
//!   reference, or one-way implied (the *partial equivalence* metric).
//!   Implemented as H-bounded trace equivalence: both properties are
//!   compiled over a shared symbolic trace of free signals and two SAT
//!   queries decide `A∧¬B` / `B∧¬A`.
//! - **Model checking** ([`prove`]): whether an assertion is *proven*
//!   on a design (the Design2SVA functional metric), via BMC for
//!   counterexamples and k-induction for proofs over the bit-blasted
//!   netlist.
//!
//! Weak/strong finite-trace semantics follow LTLf conventions: weak
//! operators treat obligations pending at the horizon as satisfied,
//! strong ones as violated. For the bounded-delay properties that
//! dominate the benchmark this coincides with exact SVA semantics.
//!
//! # Incremental solving
//!
//! Both provers are layered so the SAT solver is the last resort, not
//! the first: shared structurally-hashed AIGs collapse equal subterms
//! (often deciding a query during construction), ternary and 64-way
//! random simulation kill constant and easily-falsified queries, and
//! whatever remains runs on a single reused [`fv_sat::Solver`] driven
//! by `solve_with` assumptions and selector-guarded clause groups.
//! [`ProverStats`] reports which layer decided each query; the
//! [`EquivOutcome::stats`] field and [`prove_with_stats`] surface it.
//!
//! # Proof sessions
//!
//! Benchmarks score *many* candidate assertions against *one* design
//! or reference (up to 10 samples × 8 models per case). The session
//! APIs keep the shared half of that work alive across the stream:
//! [`ProofSession`] owns one unrolled design formula + solver and
//! checks candidate assertions against it; [`EquivSession`] encodes
//! the reference assertion once and checks candidates against it on a
//! shared trace and solver. The one-shot entry points ([`prove`],
//! [`check_equivalence`]) are thin wrappers that open a session per
//! call, so there is exactly one proving code path.

#![deny(missing_docs)]

mod cex;
mod env;
mod equiv;
mod error;
mod expr;
mod monitor;
mod pdr;
mod portfolio;
mod prove;
mod rng;
mod stats;
mod table;

pub use cex::CexValue;
pub use env::{DesignTraceEnv, FreeTraceEnv, TraceEnv};
pub use equiv::{
    check_equivalence, EquivConfig, EquivOutcome, EquivSession, Equivalence, TraceCex,
};
pub use error::EncodeError;
pub use expr::compile_expr;
pub use monitor::{encode_assertion, encode_prop, encode_seq, SeqEnc};
pub use pdr::prove_pdr;
pub use prove::{
    check_vacuity, prove, prove_with_stats, replay_design_cex, DesignCex, ProofSession,
    ProveConfig, ProveEngine, ProveResult,
};
pub use stats::ProverStats;
pub use table::SignalTable;
