// NL2SVA-Human collateral: dual-write-port FIFO occupancy model
// (depth 8). Two producers can push in the same cycle; one consumer
// pops. push_count is the number of pushes this cycle.
module fifo_multiport_tb (
    input clk,
    input reset_,
    input wr_vld0,
    input wr_ready0,
    input wr_vld1,
    input wr_ready1,
    input rd_vld,
    input rd_ready
);
  parameter FIFO_DEPTH = 8;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  wire wr_push0;
  wire wr_push1;
  wire rd_pop;
  assign wr_push0 = wr_vld0 && wr_ready0;
  assign wr_push1 = wr_vld1 && wr_ready1;
  assign rd_pop = rd_vld && rd_ready;

  wire [1:0] push_count;
  assign push_count = {1'b0, wr_push0} + {1'b0, wr_push1};

  reg [3:0] fifo_count;

  wire fifo_empty;
  wire fifo_full;
  wire fifo_almost_full;
  assign fifo_empty = (fifo_count == 4'd0);
  assign fifo_full = (fifo_count >= 4'd8);
  assign fifo_almost_full = (fifo_count >= 4'd7);

  always_ff @(posedge clk or negedge reset_) begin
    if (!reset_) begin
      fifo_count <= 4'd0;
    end else begin
      if (rd_pop) begin
        fifo_count <= fifo_count + {2'b00, push_count} - 4'd1;
      end else begin
        fifo_count <= fifo_count + {2'b00, push_count};
      end
    end
  end
endmodule
