//! Error type for property compilation.

use std::error::Error;
use std::fmt;

/// Failure while compiling an assertion into a monitor.
///
/// In the evaluation flow these map to the tool's *elaboration failure*
/// verdict (the paper scores them as syntax failures): referencing an
/// unknown signal, exceeding engine limits, or using a construct outside
/// the supported subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The assertion references a signal that does not exist in the
    /// testbench/design scope.
    UnknownSignal(String),
    /// A construct outside the supported subset.
    Unsupported(String),
    /// The property requires a longer horizon than the engine allows.
    HorizonExceeded {
        /// Horizon the property needs.
        needed: u32,
        /// Configured maximum.
        max: u32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::UnknownSignal(s) => write!(f, "unknown signal '{s}'"),
            EncodeError::Unsupported(s) => write!(f, "unsupported construct: {s}"),
            EncodeError::HorizonExceeded { needed, max } => {
                write!(
                    f,
                    "property needs horizon {needed}, engine maximum is {max}"
                )
            }
        }
    }
}

impl Error for EncodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EncodeError::UnknownSignal("ghost".into()).to_string(),
            "unknown signal 'ghost'"
        );
        assert!(EncodeError::HorizonExceeded {
            needed: 99,
            max: 64
        }
        .to_string()
        .contains("99"));
    }
}
