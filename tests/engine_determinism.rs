//! Engine-level integration tests: a parallel run must be
//! byte-identical to a sequential one, and the verdict cache must
//! answer repeated work.

use fveval_harness::{table1, table5, HarnessOptions};
use fveval_repro::prelude::*;

fn quick() -> HarnessOptions {
    HarnessOptions {
        full: false,
        seed: 0xFEED,
    }
}

#[test]
fn table1_parallel_markdown_is_byte_identical_to_sequential() {
    let sequential = table1(&EvalEngine::with_jobs(1), &quick()).to_markdown();
    let parallel = table1(&EvalEngine::with_jobs(4), &quick()).to_markdown();
    assert_eq!(sequential, parallel);
}

#[test]
fn verdict_cache_returns_hits_on_repeated_run() {
    let engine = EvalEngine::with_jobs(4);
    let first = table1(&engine, &quick()).to_markdown();
    let stats = engine.cache_stats();
    assert_eq!(stats.hits, 0, "first run sees a cold cache");
    assert_eq!(stats.misses as usize, stats.entries);
    let second = table1(&engine, &quick()).to_markdown();
    let stats = engine.cache_stats();
    assert_eq!(
        stats.hits, stats.misses,
        "second run replays every (model, case, cfg, sample) from cache"
    );
    assert_eq!(first, second);
}

#[test]
fn design2sva_parallel_matches_sequential() {
    let cases = fsm_sweep(3, 0xFEED);
    let tasks = design_task_specs(&cases);
    let models = profiles();
    let backends: Vec<&dyn Backend> = models
        .iter()
        .filter(|m| m.profile().supports_design2sva)
        .map(|m| m as &dyn Backend)
        .collect();
    let cfg = InferenceConfig::sampling();
    let seq = EvalEngine::with_jobs(1).run_matrix(&backends, &tasks, &cfg, 3);
    let par = EvalEngine::with_jobs(4).run_matrix(&backends, &tasks, &cfg, 3);
    assert_eq!(seq, par);
}

#[test]
fn table5_parallel_markdown_is_byte_identical_to_sequential() {
    let opts = HarnessOptions {
        full: false,
        seed: 3,
    };
    // Shrink via a small seed-specific run: quick mode already bounds
    // the sweep; jobs must not change a single byte.
    let sequential = table5(&EvalEngine::with_jobs(1), &opts).to_markdown();
    let parallel = table5(&EvalEngine::with_jobs(8), &opts).to_markdown();
    assert_eq!(sequential, parallel);
}

#[test]
fn custom_backend_runs_through_the_engine() {
    // The migration path for external users: any object-safe Backend
    // goes through the same pool + cache as the simulated models.
    struct Constant;
    impl Backend for Constant {
        fn name(&self) -> &str {
            "constant"
        }
        fn generate(&self, req: &Request) -> String {
            // Echo the reference for even sample indices.
            if req.sample_idx.is_multiple_of(2) {
                req.task
                    .reference_text()
                    .unwrap_or("assert property (@(posedge clk) 1'b1);")
                    .to_string()
            } else {
                "not even close to SVA".to_string()
            }
        }
    }
    let cases = generate_machine_cases(MachineGenConfig {
        count: 6,
        ..Default::default()
    });
    let tasks = machine_task_specs(&cases, &machine_signal_table());
    let engine = EvalEngine::with_jobs(2);
    let evals = engine.run(&Constant, &tasks, &InferenceConfig::sampling(), 2);
    for case in &evals {
        assert!(case.samples[0].func, "echoed reference scores full");
        assert!(!case.samples[1].syntax, "gibberish fails the tool check");
    }
}
