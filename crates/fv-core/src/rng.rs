//! Deterministic pseudo-random words for simulation patterns.
//!
//! The provers seed these from fixed constants so every run — at any
//! worker count — draws identical patterns and produces byte-identical
//! results.

/// SplitMix64 step: advances `state` and returns the next word.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_non_trivial() {
        let mut a = 7u64;
        let mut b = 7u64;
        let xs: Vec<u64> = (0..4).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..4).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
    }
}
