// NL2SVA-Human collateral: 2-client credit-weighted arbiter.
//
// Each client owns a 2-bit credit counter (cap 3). A grant with
// remaining credit spends one credit; an idle client below the cap
// refills one per cycle. A client with zero credit is starved and
// cannot be granted.
module arbiter_weighted_tb (
    input clk,
    input reset_,
    input [1:0] tb_req,
    input busy
);
  parameter N_CLIENTS = 2;
  parameter CREDIT_CAP = 3;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  reg [1:0] credit0;
  reg [1:0] credit1;

  wire starved0;
  wire starved1;
  assign starved0 = (credit0 == 2'd0);
  assign starved1 = (credit1 == 2'd0);

  wire [1:0] tb_gnt;
  assign tb_gnt = busy ? 2'b00
                : (tb_req[0] && !starved0) ? 2'b01
                : (tb_req[1] && !starved1) ? 2'b10
                : 2'b00;

  always_ff @(posedge clk or negedge reset_) begin
    if (!reset_) begin
      credit0 <= 2'd3;
      credit1 <= 2'd3;
    end else begin
      if (tb_gnt[0] && (credit0 != 2'd0)) credit0 <= credit0 - 2'd1;
      if (!tb_gnt[0] && (credit0 != 2'd3)) credit0 <= credit0 + 2'd1;
      if (tb_gnt[1] && (credit1 != 2'd0)) credit1 <= credit1 - 2'd1;
      if (!tb_gnt[1] && (credit1 != 2'd3)) credit1 <= credit1 + 2'd1;
    end
  end
endmodule
