//! Counterexample trace values and their width-aware rendering.

use fv_aig::{AigLit, BitVec, CnfEmitter};
use fv_sat::Solver;
use std::fmt;

/// One signal observation in a counterexample trace.
///
/// Values carry the signal's declared bit width so traces render in
/// SystemVerilog sized-literal notation instead of raw integers:
/// widths up to 4 bits print in binary (`4'b0101`), wider signals in
/// zero-padded hexadecimal (`12'h0a5`). See [`CexValue::render_value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CexValue {
    /// Signal (testbench net or input) name.
    pub signal: String,
    /// Trace cycle. Negative cycles are the sampled pre-history that
    /// `$past`/`$rose` reference before the anchor.
    pub cycle: i32,
    /// Declared width of the signal in bits.
    pub width: u32,
    /// The observed value (LSB-aligned, masked to `width`).
    pub value: u128,
}

impl CexValue {
    /// Renders the value as a SystemVerilog sized literal at the
    /// signal's declared width: `1'b0`, `4'b0101`, `12'h0a5`, ...
    pub fn render_value(&self) -> String {
        let w = self.width.max(1);
        if w <= 4 {
            format!("{w}'b{:0width$b}", self.value, width = w as usize)
        } else {
            let digits = w.div_ceil(4) as usize;
            format!("{w}'h{:0width$x}", self.value, width = digits)
        }
    }
}

impl fmt::Display for CexValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "  cycle {:>3}: {} = {}",
            self.cycle,
            self.signal,
            self.render_value()
        )
    }
}

/// Renders a trace as one line per observation, sorted by `(cycle,
/// signal)` — the canonical counterexample format shared by
/// [`crate::TraceCex`] and [`crate::DesignCex`]:
///
/// ```text
///   cycle   0: wr_push = 1'b1
///   cycle   2: fifo_cnt = 8'h03
/// ```
pub(crate) fn fmt_trace(values: &[CexValue], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for v in values {
        writeln!(f, "{v}")?;
    }
    Ok(())
}

/// Sorts observations into the canonical `(cycle, signal)` order.
pub(crate) fn sort_trace(values: &mut [CexValue]) {
    values.sort_by(|a, b| (a.cycle, &a.signal).cmp(&(b.cycle, &b.signal)));
}

/// Decodes an environment allocation log into a sorted trace, reading
/// each allocated bit through `read_bit` — the one place both provers'
/// simulation- and solver-model decodings share.
pub(crate) fn decode_trace<'a>(
    entries: impl Iterator<Item = (&'a str, i32, &'a BitVec)>,
    mut read_bit: impl FnMut(AigLit) -> bool,
) -> Vec<CexValue> {
    let mut values = Vec::new();
    for (signal, cycle, bv) in entries {
        let mut value: u128 = 0;
        for (i, &bit) in bv.bits().iter().enumerate() {
            if read_bit(bit) {
                value |= 1 << i;
            }
        }
        values.push(CexValue {
            signal: signal.to_string(),
            cycle,
            width: bv.width() as u32,
            value,
        });
    }
    sort_trace(&mut values);
    values
}

/// Bit reader over a SAT model: resolves the bit's node through the
/// emitter's variable map and the solver's assignment, defaulting
/// unconstrained (never-emitted or search-untouched) bits to 0.
pub(crate) fn solver_bit_reader<'x>(
    em: &'x CnfEmitter,
    solver: &'x Solver,
) -> impl FnMut(AigLit) -> bool + 'x {
    |bit: AigLit| {
        em.lookup(bit.node())
            .and_then(|var| solver.value(var))
            .map(|b| b ^ bit.is_inverted())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_values_render_binary() {
        let v = CexValue {
            signal: "a".into(),
            cycle: 0,
            width: 1,
            value: 1,
        };
        assert_eq!(v.render_value(), "1'b1");
        let v = CexValue {
            signal: "s".into(),
            cycle: 0,
            width: 4,
            value: 0b0101,
        };
        assert_eq!(v.render_value(), "4'b0101");
    }

    #[test]
    fn wide_values_render_zero_padded_hex() {
        let v = CexValue {
            signal: "data".into(),
            cycle: 3,
            width: 12,
            value: 0xA5,
        };
        assert_eq!(v.render_value(), "12'h0a5");
        assert_eq!(v.to_string(), "  cycle   3: data = 12'h0a5");
    }

    #[test]
    fn sort_is_by_cycle_then_signal() {
        let mut vs = vec![
            CexValue {
                signal: "b".into(),
                cycle: 1,
                width: 1,
                value: 0,
            },
            CexValue {
                signal: "a".into(),
                cycle: 1,
                width: 1,
                value: 0,
            },
            CexValue {
                signal: "z".into(),
                cycle: -1,
                width: 1,
                value: 0,
            },
        ];
        sort_trace(&mut vs);
        let order: Vec<(i32, &str)> = vs.iter().map(|v| (v.cycle, v.signal.as_str())).collect();
        assert_eq!(order, vec![(-1, "z"), (1, "a"), (1, "b")]);
    }
}
