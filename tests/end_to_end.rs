//! Cross-crate integration tests: the full FVEval pipeline from dataset
//! to scored metrics.

use fveval_repro::prelude::*;
use std::collections::HashMap;

fn human_tables() -> HashMap<&'static str, SignalTable> {
    testbenches()
        .into_iter()
        .map(|t| (t.name, signal_table_for(&t).expect("testbenches elaborate")))
        .collect()
}

#[test]
fn reference_solutions_score_perfect() {
    // Feeding the expert reference back as the "response" must score a
    // full pass on every one of the 79 human cases — the end-to-end
    // sanity bar for the whole evaluation stack.
    let runner = Nl2svaRunner::new();
    let tables = human_tables();
    for case in human_cases() {
        let table = &tables[case.testbench.as_str()];
        let eval = runner.evaluate_response(&case.reference, &case.reference, table);
        assert!(
            eval.syntax && eval.func && eval.partial,
            "{} reference must self-score",
            case.id
        );
        assert!((eval.bleu - 1.0).abs() < 1e-9, "{}", case.id);
    }
}

#[test]
fn machine_references_score_perfect() {
    let cases = generate_machine_cases(MachineGenConfig {
        count: 50,
        ..Default::default()
    });
    let table = machine_signal_table();
    let runner = Nl2svaRunner::new();
    for case in cases {
        let eval = runner.evaluate_response(&case.reference_text, &case.reference_text, &table);
        assert!(eval.func, "{} reference must self-score", case.id);
    }
}

#[test]
fn evaluation_is_deterministic_per_seed() {
    let cases = generate_machine_cases(MachineGenConfig {
        count: 20,
        ..Default::default()
    });
    let table = machine_signal_table();
    let runner = Nl2svaRunner::new();
    let models = profiles();
    let model = &models[0];
    let cfg = InferenceConfig::sampling();
    let run = || runner.run_machine(model, &cases, &table, &cfg, 3);
    let a = run();
    let b = run();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.samples.len(), y.samples.len());
        for (sx, sy) in x.samples.iter().zip(&y.samples) {
            assert_eq!(sx.syntax, sy.syntax);
            assert_eq!(sx.func, sy.func);
        }
    }
}

#[test]
fn model_ordering_shape_holds_on_machine_set() {
    // The paper's headline: stronger general models do better. Check
    // the two extremes over a moderate slice.
    let cases = generate_machine_cases(MachineGenConfig {
        count: 100,
        ..Default::default()
    });
    let table = machine_signal_table();
    let runner = Nl2svaRunner::new();
    let models = profiles();
    let score = |name: &str| {
        let m = models.iter().find(|m| m.name() == name).unwrap();
        let evals = runner.run_machine(m, &cases, &table, &InferenceConfig::greedy(), 1);
        MetricSummary::from_first_samples(&evals)
    };
    let top = score("gpt-4o");
    let bottom = score("llama-3-8b");
    assert!(top.func > bottom.func, "{top:?} vs {bottom:?}");
    assert!(top.syntax > bottom.syntax);
    // Partial-vs-full gap exists for every model (paper Section 4.2).
    for m in &models {
        let evals = runner.run_machine(m, &cases, &table, &InferenceConfig::greedy(), 1);
        let s = MetricSummary::from_first_samples(&evals);
        assert!(s.partial >= s.func, "{}: {s:?}", m.name());
        assert!(s.syntax >= s.partial, "{}: {s:?}", m.name());
    }
}

#[test]
fn three_shot_helps_weak_zero_shot_models() {
    // Table 3's gemini-1.5-pro story: a large ICL gain.
    let cases = generate_machine_cases(MachineGenConfig {
        count: 100,
        ..Default::default()
    });
    let table = machine_signal_table();
    let runner = Nl2svaRunner::new();
    let models = profiles();
    let m = models
        .iter()
        .find(|m| m.name() == "gemini-1.5-pro")
        .unwrap();
    let s0 = MetricSummary::from_first_samples(&runner.run_machine(
        m,
        &cases,
        &table,
        &InferenceConfig::greedy(),
        1,
    ));
    let s3 = MetricSummary::from_first_samples(&runner.run_machine(
        m,
        &cases,
        &table,
        &InferenceConfig::greedy().with_shots(3),
        1,
    ));
    assert!(
        s3.func > s0.func + 0.15,
        "ICL gain expected: {s0:?} -> {s3:?}"
    );
    assert!(s3.syntax > s0.syntax + 0.2);
}

#[test]
fn pass_at_k_improves_with_sampling() {
    let cases = generate_machine_cases(MachineGenConfig {
        count: 60,
        ..Default::default()
    });
    let table = machine_signal_table();
    let runner = Nl2svaRunner::new();
    let models = profiles();
    let m = models.iter().find(|m| m.name() == "llama-3.1-70b").unwrap();
    let evals = runner.run_machine(
        m,
        &cases,
        &table,
        &InferenceConfig::sampling().with_shots(3),
        6,
    );
    let p1 = MetricSummary::mean_pass_at_k(&evals, 1, |s| s.func);
    let p5 = MetricSummary::mean_pass_at_k(&evals, 5, |s| s.func);
    assert!(p5 >= p1, "pass@5 {p5} >= pass@1 {p1}");
    assert!(p5 > p1 + 0.02, "sampling should lift func: {p1} -> {p5}");
    let syn5 = MetricSummary::mean_pass_at_k(&evals, 5, |s| s.syntax);
    assert!(syn5 > 0.9, "syntax@5 near-perfect: {syn5}");
}
