//! Model profiles, the outcome-sampling machinery, and the inference
//! API: owned [`TaskSpec`]/[`Request`] descriptors and the object-safe
//! [`Backend`] trait every model implements.

use crate::d2s::generate_design_response;
use crate::transform::{render_with_style, transform, Outcome, Style};
use crate::DetRng;
use fv_core::SignalTable;
use fveval_data::{DesignCase, HumanCase, MachineCase};
use std::sync::Arc;

/// Inference-time configuration (decoding strategy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceConfig {
    /// Sampling temperature; 0.0 is greedy decoding.
    pub temperature: f64,
    /// Number of in-context examples (0 or 3 in the paper).
    pub shots: u32,
    /// Global seed mixed into every draw.
    pub seed: u64,
}

impl InferenceConfig {
    /// Greedy decoding, zero-shot.
    pub fn greedy() -> InferenceConfig {
        InferenceConfig {
            temperature: 0.0,
            shots: 0,
            seed: 0,
        }
    }

    /// The paper's sampling setup: top-p 0.95, temperature 0.8.
    pub fn sampling() -> InferenceConfig {
        InferenceConfig {
            temperature: 0.8,
            shots: 0,
            seed: 0,
        }
    }

    /// Sets the shot count.
    pub fn with_shots(mut self, shots: u32) -> InferenceConfig {
        self.shots = shots;
        self
    }

    /// Stable textual fingerprint for cache keys: two configurations
    /// fingerprint equally iff every field is bit-identical.
    pub fn fingerprint(&self) -> String {
        format!(
            "t{:016x}_n{}_s{}",
            self.temperature.to_bits(),
            self.shots,
            self.seed
        )
    }
}

/// One benchmark task, fully owned: the unit the [`Request`] work-list
/// is enumerated over. Shared scope data (signal tables) is `Arc`ed so
/// the `model × case × sample` product stays cheap to materialize.
#[derive(Debug, Clone)]
pub enum TaskSpec {
    /// NL2SVA-Human: testbench + NL spec (the reference hidden inside
    /// the case is the noisy channel's source).
    Nl2svaHuman {
        /// The dataset case.
        case: HumanCase,
        /// Testbench signal scope (shared across the testbench's cases).
        table: Arc<SignalTable>,
    },
    /// NL2SVA-Machine.
    Nl2svaMachine {
        /// The dataset case.
        case: MachineCase,
        /// Machine signal scope (shared across the whole set).
        table: Arc<SignalTable>,
    },
    /// Design2SVA: generate an assertion from RTL alone.
    Design2sva {
        /// The generated design.
        case: DesignCase,
    },
}

impl TaskSpec {
    /// Stable case id (the seed of all deterministic draws).
    pub fn id(&self) -> &str {
        match self {
            TaskSpec::Nl2svaHuman { case, .. } => &case.id,
            TaskSpec::Nl2svaMachine { case, .. } => &case.id,
            TaskSpec::Design2sva { case } => &case.id,
        }
    }

    /// The reference solution text (`None` for Design2SVA, which is
    /// scored by model checking rather than equivalence).
    pub fn reference_text(&self) -> Option<&str> {
        match self {
            TaskSpec::Nl2svaHuman { case, .. } => Some(&case.reference),
            TaskSpec::Nl2svaMachine { case, .. } => Some(&case.reference_text),
            TaskSpec::Design2sva { .. } => None,
        }
    }

    /// The signal scope the response is evaluated in, if any.
    pub fn table(&self) -> Option<&SignalTable> {
        match self {
            TaskSpec::Nl2svaHuman { table, .. } | TaskSpec::Nl2svaMachine { table, .. } => {
                Some(table)
            }
            TaskSpec::Design2sva { .. } => None,
        }
    }

    /// Stable hash of the task's *content* (question, reference,
    /// signal scope, design sources). Ids alone are not collision-free
    /// across differently-seeded dataset generations — e.g. machine
    /// cases are always numbered `nl2sva_machine_0000..` — and the
    /// scope affects both generation and scoring, so caches must key
    /// on `(id, content_digest)` rather than the id alone.
    pub fn content_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            // Field separator so ("ab", "c") != ("a", "bc").
            h ^= 0x1f;
            h = h.wrapping_mul(0x100000001b3);
        };
        match self {
            TaskSpec::Nl2svaHuman { case, table } => {
                eat(b"human");
                eat(case.question.as_bytes());
                eat(case.reference.as_bytes());
                eat(&table.digest().to_le_bytes());
            }
            TaskSpec::Nl2svaMachine { case, table } => {
                eat(b"machine");
                eat(case.question.as_bytes());
                eat(case.reference_text.as_bytes());
                eat(&table.digest().to_le_bytes());
            }
            TaskSpec::Design2sva { case } => {
                eat(b"design");
                eat(case.design_source.as_bytes());
                eat(case.tb_source.as_bytes());
            }
        }
        h
    }
}

/// One unit of inference work: the `sample_idx`-th response to `task`
/// under `cfg`. Requests are self-contained and order-independent, so
/// an engine may execute them in any order, in parallel, or batched.
#[derive(Debug, Clone)]
pub struct Request {
    /// The task to answer.
    pub task: Arc<TaskSpec>,
    /// Decoding configuration.
    pub cfg: InferenceConfig,
    /// Sample index (0 for greedy single-shot runs).
    pub sample_idx: u32,
}

/// Anything that can answer FVEval prompts.
///
/// The trait is object-safe and thread-safe: evaluation engines hold
/// `&dyn Backend` and may call it from worker threads. Implementations
/// must answer each [`Request`] independently of any other request —
/// the same request must always produce the same response, regardless
/// of ordering or batching (the engine's parallel == sequential
/// guarantee is built on this).
///
/// `generate_batch` has a default per-request implementation so local
/// / simulated models stay trivial; backends that talk to real
/// endpoints can override it with one batched round trip.
pub trait Backend: Send + Sync {
    /// Display name (matches the paper's tables).
    fn name(&self) -> &str;

    /// Produces the response for one request: plain text in the
    /// benchmark's answer format (an SVA assertion, optionally preceded
    /// by auxiliary testbench code for Design2SVA).
    fn generate(&self, req: &Request) -> String;

    /// Produces responses for a batch of requests, in order. The
    /// default delegates to [`Backend::generate`] per request.
    fn generate_batch(&self, reqs: &[Request]) -> Vec<String> {
        reqs.iter().map(|r| self.generate(r)).collect()
    }
}

/// Outcome probabilities for an NL2SVA-style task: must sum to <= 1;
/// the remainder is the syntax/hallucination bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeDist {
    /// Exact reproduction of the reference (modulo style).
    pub exact: f64,
    /// Semantics-preserving rewrite (still fully equivalent).
    pub equivalent: f64,
    /// One-way implication variant (partial credit).
    pub partial: f64,
    /// Plausible but inequivalent edit.
    pub wrong: f64,
}

impl OutcomeDist {
    /// Derives a distribution from published (syntax, func, partial)
    /// rates, splitting func into exact/equivalent by `exact_ratio`.
    pub fn from_metrics(syntax: f64, func: f64, partial: f64, exact_ratio: f64) -> OutcomeDist {
        let exact = func * exact_ratio;
        let equivalent = func - exact;
        let partial_only = (partial - func).max(0.0);
        let wrong = (syntax - partial).max(0.0);
        OutcomeDist {
            exact,
            equivalent,
            partial: partial_only,
            wrong,
        }
    }

    /// Redraws a syntax-error outcome into the non-functional zone
    /// (partial/wrong): models that fix their syntax on a retry usually
    /// still miss the semantics (paper Tables 2/4: syntax@5 ≈ 1.0 while
    /// func@5 barely moves on NL2SVA).
    fn recover(&self, x01: f64) -> Outcome {
        let non_func = self.partial + self.wrong;
        if non_func <= 0.0 {
            return Outcome::Wrong;
        }
        if x01 * non_func < self.partial {
            Outcome::Partial
        } else {
            Outcome::Wrong
        }
    }

    /// Maps a unit draw to an outcome by cumulative range.
    fn classify(&self, x: f64) -> Outcome {
        let mut acc = self.exact;
        if x < acc {
            return Outcome::Exact;
        }
        acc += self.equivalent;
        if x < acc {
            return Outcome::Equivalent;
        }
        acc += self.partial;
        if x < acc {
            return Outcome::Partial;
        }
        acc += self.wrong;
        if x < acc {
            return Outcome::Wrong;
        }
        Outcome::SyntaxError
    }
}

/// Design2SVA strategy distribution: remainder after the three listed
/// buckets is the parse/elaboration failure bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignDist {
    /// Correct, provable assertion (possibly with helper code).
    pub provable: f64,
    /// Syntactically fine, semantically unproven (BMC finds a cex or
    /// bounds exhaust).
    pub unprovable: f64,
    /// References design-internal signals (elaboration failure).
    pub internal_signal: f64,
}

impl DesignDist {
    /// Redraws a failed sample over the well-formed zone; Design2SVA
    /// retries do reach provable assertions (the paper's large
    /// func@5/func@1 ratios).
    fn recover(&self, x01: f64) -> crate::d2s::DesignOutcome {
        use crate::d2s::DesignOutcome as O;
        let ok = self.provable + self.unprovable;
        if ok <= 0.0 {
            return O::Unprovable;
        }
        if x01 * ok < self.provable {
            O::Provable
        } else {
            O::Unprovable
        }
    }

    fn classify(&self, x: f64) -> crate::d2s::DesignOutcome {
        use crate::d2s::DesignOutcome as O;
        let mut acc = self.provable;
        if x < acc {
            return O::Provable;
        }
        acc += self.unprovable;
        if x < acc {
            return O::Unprovable;
        }
        acc += self.internal_signal;
        if x < acc {
            return O::InternalSignal;
        }
        O::Malformed
    }
}

/// A calibrated simulated model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Display name.
    pub name: &'static str,
    /// NL2SVA-Human zero-shot outcome distribution.
    pub human: OutcomeDist,
    /// NL2SVA-Machine zero-shot distribution.
    pub machine_0shot: OutcomeDist,
    /// NL2SVA-Machine three-shot distribution.
    pub machine_3shot: OutcomeDist,
    /// Design2SVA distribution for pipelines.
    pub d2s_pipeline: DesignDist,
    /// Design2SVA distribution for FSMs.
    pub d2s_fsm: DesignDist,
    /// Whether the model's context window fits Design2SVA prompts
    /// (the paper drops Llama-3 models here).
    pub supports_design2sva: bool,
    /// Surface style of emitted code.
    pub style: Style,
    /// Sample-to-sample diversity under temperature (latent-difficulty
    /// noise scale per unit temperature).
    pub diversity: f64,
}

/// A profile bound into a usable [`Backend`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedModel {
    profile: ModelProfile,
}

impl SimulatedModel {
    /// Wraps a profile.
    pub fn new(profile: ModelProfile) -> SimulatedModel {
        SimulatedModel { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }
}

impl Backend for SimulatedModel {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn generate(&self, req: &Request) -> String {
        let (task, cfg, sample_idx) = (req.task.as_ref(), &req.cfg, req.sample_idx);
        let p = &self.profile;
        // Latent per-case difficulty: shared across samples so pass@k
        // improves only modestly (the paper's Tables 2/4 behaviour).
        let mut base = DetRng::from_parts(&[
            p.name,
            task.id(),
            &format!("shots{}", cfg.shots),
            &format!("seed{}", cfg.seed),
        ]);
        let u = base.unit();
        let mut noise_rng = DetRng::from_parts(&[
            p.name,
            task.id(),
            &format!("s{sample_idx}"),
            &format!("seed{}", cfg.seed),
        ]);
        // Sample-to-sample diversity is task-dependent: near-stable on
        // the human set, moderate on the machine set, high on
        // Design2SVA — matching the pass@k lifts of Tables 2/4/5.
        let task_factor = match task {
            TaskSpec::Nl2svaHuman { .. } => 0.25,
            TaskSpec::Nl2svaMachine { .. } => 1.0,
            TaskSpec::Design2sva { .. } => 2.5,
        };
        let noise = (noise_rng.unit() - 0.5) * 2.0 * p.diversity * cfg.temperature * task_factor;
        let x = (u + noise).clamp(0.0, 1.0 - 1e-12);
        // Under sampling, a syntax-level failure often clears on retry
        // even when the semantics stay wrong.
        let retry_escape = cfg.temperature > 0.0 && sample_idx > 0 && noise_rng.unit() < 0.65;
        let recovery_draw = noise_rng.unit();

        match task {
            TaskSpec::Nl2svaHuman { case, table } => {
                let mut outcome = p.human.classify(x);
                if outcome == Outcome::SyntaxError && retry_escape {
                    outcome = p.human.recover(recovery_draw);
                }
                let reference = sv_parser::parse_assertion_str(&case.reference)
                    .expect("dataset references parse");
                let mutated = transform(&reference, outcome, table, &mut noise_rng);
                render_with_style(&mutated, &p.style, &mut noise_rng)
            }
            TaskSpec::Nl2svaMachine { case, table } => {
                let dist = if cfg.shots >= 3 {
                    &p.machine_3shot
                } else {
                    &p.machine_0shot
                };
                let mut outcome = dist.classify(x);
                if outcome == Outcome::SyntaxError && retry_escape {
                    outcome = dist.recover(recovery_draw);
                }
                let mutated = transform(&case.reference, outcome, table, &mut noise_rng);
                render_with_style(&mutated, &p.style, &mut noise_rng)
            }
            TaskSpec::Design2sva { case } => {
                let dist = match case.kind {
                    fveval_data::DesignKind::Pipeline { .. } => &p.d2s_pipeline,
                    // Generated scenarios are control-dominated designs;
                    // the FSM calibration is the closer fit.
                    fveval_data::DesignKind::Fsm { .. }
                    | fveval_data::DesignKind::Scenario { .. } => &p.d2s_fsm,
                };
                let mut outcome = dist.classify(x);
                if matches!(
                    outcome,
                    crate::d2s::DesignOutcome::Malformed
                        | crate::d2s::DesignOutcome::InternalSignal
                ) && retry_escape
                {
                    outcome = dist.recover(recovery_draw);
                }
                generate_design_response(case, outcome, &p.style, &mut noise_rng)
            }
        }
    }
}

/// The paper's eight evaluated models, calibrated against Tables 1/3/5.
pub fn profiles() -> Vec<SimulatedModel> {
    let m = |name,
             human: (f64, f64, f64),
             m0: (f64, f64, f64),
             m3: (f64, f64, f64),
             d2s_pipe: (f64, f64),
             d2s_fsm: (f64, f64),
             supports_d2s: bool,
             exact_ratio: f64,
             style: Style,
             diversity: f64| {
        SimulatedModel::new(ModelProfile {
            name,
            human: OutcomeDist::from_metrics(human.0, human.1, human.2, exact_ratio),
            machine_0shot: OutcomeDist::from_metrics(m0.0, m0.1, m0.2, exact_ratio),
            machine_3shot: OutcomeDist::from_metrics(m3.0, m3.1, m3.2, exact_ratio + 0.1),
            d2s_pipeline: DesignDist {
                provable: d2s_pipe.1,
                unprovable: (d2s_pipe.0 - d2s_pipe.1).max(0.0),
                internal_signal: ((1.0 - d2s_pipe.0) * 0.5).max(0.0),
            },
            d2s_fsm: DesignDist {
                provable: d2s_fsm.1,
                unprovable: (d2s_fsm.0 - d2s_fsm.1).max(0.0),
                internal_signal: ((1.0 - d2s_fsm.0) * 0.5).max(0.0),
            },
            supports_design2sva: supports_d2s,
            style,
            diversity,
        })
    };
    vec![
        // name, human(syn,func,part), machine 0-shot, machine 3-shot,
        // d2s pipeline (syn@1, func@1), d2s fsm, supported, exact ratio.
        m(
            "gpt-4o",
            (0.911, 0.456, 0.582),
            (0.927, 0.430, 0.540),
            (0.937, 0.467, 0.570),
            (0.802, 0.104),
            (0.993, 0.373),
            true,
            0.62,
            Style::verbose_label(),
            0.10,
        ),
        m(
            "gemini-1.5-pro",
            (0.810, 0.253, 0.380),
            (0.467, 0.137, 0.203),
            (0.880, 0.417, 0.517),
            (0.665, 0.175),
            (0.950, 0.427),
            true,
            0.55,
            Style::plain(),
            0.12,
        ),
        m(
            "gemini-1.5-flash",
            (0.949, 0.380, 0.557),
            (0.783, 0.377, 0.470),
            (0.837, 0.397, 0.480),
            (0.969, 0.025),
            (0.996, 0.079),
            true,
            0.55,
            Style::plain(),
            0.08,
        ),
        m(
            "mixtral-8x22b",
            (0.823, 0.190, 0.278),
            (0.913, 0.327, 0.500),
            (0.880, 0.430, 0.523),
            (0.867, 0.119),
            (0.974, 0.054),
            true,
            0.50,
            Style::verbose_label(),
            0.12,
        ),
        m(
            "llama-3.1-70b",
            (0.861, 0.291, 0.354),
            (0.887, 0.303, 0.397),
            (0.920, 0.457, 0.567),
            (0.960, 0.167),
            (0.940, 0.231),
            true,
            0.55,
            Style::snake_label(),
            0.15,
        ),
        m(
            "llama-3-70b",
            (0.899, 0.291, 0.506),
            (0.863, 0.330, 0.430),
            (0.860, 0.380, 0.503),
            (0.0, 0.0),
            (0.0, 0.0),
            false,
            0.50,
            Style::snake_label(),
            0.12,
        ),
        m(
            "llama-3.1-8b",
            (0.835, 0.203, 0.304),
            (0.813, 0.320, 0.520),
            (0.840, 0.267, 0.370),
            (0.904, 0.150),
            (0.906, 0.121),
            true,
            0.45,
            Style::plain(),
            0.16,
        ),
        m(
            "llama-3-8b",
            (0.747, 0.063, 0.215),
            (0.673, 0.187, 0.320),
            (0.827, 0.240, 0.397),
            (0.0, 0.0),
            (0.0, 0.0),
            false,
            0.40,
            Style::plain(),
            0.14,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fveval_data::{generate_machine_cases, machine_signal_table, MachineGenConfig};

    #[test]
    fn eight_profiles_with_unique_names() {
        let ps = profiles();
        assert_eq!(ps.len(), 8);
        let mut names: Vec<&str> = ps.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
        assert_eq!(
            ps.iter()
                .filter(|p| p.profile().supports_design2sva)
                .count(),
            6,
            "paper drops the two llama-3 models from Design2SVA"
        );
    }

    #[test]
    fn outcome_dist_from_metrics_sums() {
        let d = OutcomeDist::from_metrics(0.9, 0.4, 0.55, 0.5);
        let total = d.exact + d.equivalent + d.partial + d.wrong;
        assert!((total - 0.9).abs() < 1e-9, "sums to the syntax rate");
    }

    fn machine_request(
        case: &fveval_data::MachineCase,
        table: &Arc<SignalTable>,
        cfg: InferenceConfig,
        sample_idx: u32,
    ) -> Request {
        Request {
            task: Arc::new(TaskSpec::Nl2svaMachine {
                case: case.clone(),
                table: Arc::clone(table),
            }),
            cfg,
            sample_idx,
        }
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let table = Arc::new(machine_signal_table());
        let cases = generate_machine_cases(MachineGenConfig {
            count: 5,
            ..Default::default()
        });
        let model = &profiles()[0];
        for c in &cases {
            let r = machine_request(c, &table, InferenceConfig::greedy(), 0);
            let a = model.generate(&r);
            let b = model.generate(&r);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn batch_matches_per_request_generation() {
        let table = Arc::new(machine_signal_table());
        let cases = generate_machine_cases(MachineGenConfig {
            count: 8,
            ..Default::default()
        });
        let model = &profiles()[0];
        let reqs: Vec<Request> = cases
            .iter()
            .map(|c| machine_request(c, &table, InferenceConfig::sampling(), 2))
            .collect();
        let batched = model.generate_batch(&reqs);
        let single: Vec<String> = reqs.iter().map(|r| model.generate(r)).collect();
        assert_eq!(batched, single);
    }

    #[test]
    fn temperature_creates_sample_diversity() {
        let table = Arc::new(machine_signal_table());
        let cases = generate_machine_cases(MachineGenConfig {
            count: 30,
            ..Default::default()
        });
        let model = &profiles()[0];
        let cfg = InferenceConfig::sampling();
        let mut distinct = 0;
        for c in &cases {
            let s0 = model.generate(&machine_request(c, &table, cfg, 0));
            let s1 = model.generate(&machine_request(c, &table, cfg, 1));
            if s0 != s1 {
                distinct += 1;
            }
        }
        assert!(distinct > 2, "some cases vary across samples: {distinct}");
    }

    #[test]
    fn better_models_emit_more_parseable_output() {
        // gpt-4o should produce (many) more parseable responses than
        // llama-3-8b over the machine set — the headline ordering.
        let table = Arc::new(machine_signal_table());
        let cases = generate_machine_cases(MachineGenConfig {
            count: 150,
            ..Default::default()
        });
        let ps = profiles();
        let rate = |name: &str| {
            let model = ps.iter().find(|p| p.name() == name).unwrap();
            let ok = cases
                .iter()
                .filter(|c| {
                    let r = machine_request(c, &table, InferenceConfig::greedy(), 0);
                    let resp = model.generate(&r);
                    sv_parser::parse_assertion_str(&resp).is_ok()
                })
                .count();
            ok as f64 / cases.len() as f64
        };
        let good = rate("gpt-4o");
        let bad = rate("llama-3-8b");
        assert!(
            good > bad + 0.1,
            "gpt-4o {good:.2} should beat llama-3-8b {bad:.2}"
        );
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = InferenceConfig::greedy();
        let b = InferenceConfig::sampling();
        let c = InferenceConfig::greedy().with_shots(3);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), InferenceConfig::greedy().fingerprint());
    }
}
