//! Golden-verdict validation: every candidate assertion is re-checked
//! against the repository's own formal core.
//!
//! [`validate_scenario`] is the executable form of the golden-verdict
//! contract in `docs/TASK_AUTHORING.md`: provable candidates must come
//! back `Proven`, falsifiable ones `Falsified`, and every
//! counterexample trace must replay to a concrete violation on the
//! cycle-accurate `sv_synth::Simulator`.
//!
//! When a bounded-engine check comes back `Undetermined`, the
//! candidate is retried once through the IC3/PDR engine before a
//! mismatch is declared — this is what lets the deep-inductive
//! `deepcnt` family carry golden verdicts the BMC + k-induction
//! schedule cannot close at its default depth.

use crate::{GoldenVerdict, Scenario, Suite};
use fv_core::SignalTable;
use fv_core::{
    prove_with_stats, replay_design_cex, ProveConfig, ProveEngine, ProveResult, ProverStats,
};
use sv_ast::{Expr, Instance, ModuleItem};
use sv_parser::parse_source;
use sv_synth::{elaborate_with_extras, Netlist};

/// A scenario bound for proving: the elaborated testbench netlist with
/// the DUT instantiated, plus the assertion-visible constants and the
/// signal scope candidate assertions are evaluated in.
#[derive(Debug)]
pub struct BoundScenario {
    /// The elaborated testbench-with-DUT netlist.
    pub netlist: Netlist,
    /// Testbench parameter bindings for the prover.
    pub consts: Vec<(String, u32, u128)>,
    /// The assertion-visible signal scope (nets + constants), for the
    /// NL2SVA task types.
    pub table: SignalTable,
}

/// Parses and elaborates a scenario's collateral exactly the way the
/// evaluation engine binds a Design2SVA case: design + testbench in one
/// source, the DUT instantiated with every port tied to the same-named
/// testbench input.
///
/// # Errors
///
/// Returns the parse/elaboration message if the generated collateral is
/// invalid — a generator bug, covered by tests.
pub fn bind_scenario(scenario: &Scenario) -> Result<BoundScenario, String> {
    let mut src =
        String::with_capacity(scenario.design_source.len() + scenario.tb_source.len() + 1);
    src.push_str(&scenario.design_source);
    src.push('\n');
    src.push_str(&scenario.tb_source);
    let file = parse_source(&src).map_err(|e| e.to_string())?;
    let design = file
        .module(&scenario.top)
        .ok_or_else(|| format!("missing design module {}", scenario.top))?;
    let conns: Vec<(String, Expr)> = design
        .port_order
        .iter()
        .map(|p| (p.clone(), Expr::ident(p.clone())))
        .collect();
    let dut = ModuleItem::Instance(Instance {
        module: scenario.top.clone(),
        name: "dut".into(),
        params: vec![],
        conns,
    });
    let netlist = elaborate_with_extras(&file, &scenario.tb_top, std::slice::from_ref(&dut))
        .map_err(|e| e.to_string())?;
    let consts: Vec<(String, u32, u128)> = netlist
        .params
        .iter()
        .map(|(n, v)| (n.clone(), 32u32, *v))
        .collect();
    let mut table = SignalTable::new();
    for (name, binding) in netlist.net_names() {
        if !name.contains('[') && !name.contains('.') {
            table.insert(name.to_string(), binding.width);
        }
    }
    for (name, value) in &netlist.params {
        table.insert_const(name.clone(), 32, *value);
    }
    Ok(BoundScenario {
        netlist,
        consts,
        table,
    })
}

/// Validation outcome of one scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Scenario id.
    pub id: String,
    /// Candidates whose golden verdict the prover confirmed.
    pub confirmed: u32,
    /// Candidates whose prover verdict *disagreed* with the golden one
    /// (must be zero for a sound generator).
    pub mismatches: u32,
    /// Counterexamples that failed to replay on the simulator (must be
    /// zero).
    pub replay_failures: u32,
    /// How the formal core discharged the queries.
    pub stats: ProverStats,
    /// One line per problem, empty when fully confirmed.
    pub problems: Vec<String>,
}

impl ScenarioReport {
    /// `true` when every candidate verdict was confirmed and every
    /// counterexample replayed.
    pub fn is_clean(&self) -> bool {
        self.mismatches == 0 && self.replay_failures == 0
    }
}

/// Proves every candidate of a scenario and checks the result against
/// its golden verdict; falsified candidates additionally replay their
/// counterexample trace through the reference simulator.
///
/// # Errors
///
/// Returns a message if the collateral fails to bind or a candidate
/// fails to parse — generator bugs, distinct from verdict mismatches
/// (which are *reported*, not errors).
pub fn validate_scenario(scenario: &Scenario, cfg: ProveConfig) -> Result<ScenarioReport, String> {
    let bound = bind_scenario(scenario)?;
    let mut report = ScenarioReport {
        id: scenario.id.clone(),
        ..ScenarioReport::default()
    };
    // Downstream consumers (simulated-model response pools, Design2SVA
    // goldens) index both pools unconditionally, so an empty pool is a
    // contract violation even when every present verdict confirms.
    if scenario.provable().next().is_none() {
        report.mismatches += 1;
        report
            .problems
            .push("scenario has no provable candidate".into());
    }
    if scenario.falsifiable().next().is_none() {
        report.mismatches += 1;
        report
            .problems
            .push("scenario has no falsifiable candidate".into());
    }
    for cand in &scenario.candidates {
        let assertion = sv_parser::parse_assertion_str(&cand.sva)
            .map_err(|e| format!("{}/{}: parse: {e}", scenario.id, cand.name))?;
        let (mut result, stats) = prove_with_stats(&bound.netlist, &assertion, &bound.consts, cfg)
            .map_err(|e| format!("{}/{}: prove: {e}", scenario.id, cand.name))?;
        report.stats.merge(&stats);
        // Deep-inductive families (e.g. `deepcnt`) carry golden
        // verdicts the bounded schedule cannot decide within its
        // depth. Before declaring a mismatch on an Undetermined,
        // retry once with the reachability-aware PDR engine — its
        // verdicts are replay-gated like any other, so a wrong golden
        // verdict is still caught.
        if matches!(result, ProveResult::Undetermined) && cfg.engine == ProveEngine::Bounded {
            let pdr_cfg = ProveConfig {
                engine: ProveEngine::Pdr,
                ..cfg
            };
            let (retry, retry_stats) =
                prove_with_stats(&bound.netlist, &assertion, &bound.consts, pdr_cfg)
                    .map_err(|e| format!("{}/{}: prove (pdr): {e}", scenario.id, cand.name))?;
            report.stats.merge(&retry_stats);
            result = retry;
        }
        match (cand.verdict, &result) {
            (GoldenVerdict::Provable, ProveResult::Proven { .. }) => report.confirmed += 1,
            (GoldenVerdict::Falsifiable, ProveResult::Falsified { cex }) => {
                match replay_design_cex(&bound.netlist, &assertion, &bound.consts, cfg, cex) {
                    Ok(true) => report.confirmed += 1,
                    other if cand.mutation.is_some() => {
                        // A mutant whose counterexample does not replay
                        // is as much a mutation-layer bug as one that
                        // stays provable: fail hard, never skip.
                        return Err(format!(
                            "{}/{}: mutation '{}' (seed {:#x}) produced a counterexample \
                             that does not replay ({other:?})",
                            scenario.id,
                            cand.name,
                            cand.mutation.unwrap().tag(),
                            scenario.params.seed
                        ));
                    }
                    other => {
                        report.replay_failures += 1;
                        report.problems.push(format!(
                            "{}: counterexample does not replay ({other:?})",
                            cand.name
                        ));
                    }
                }
            }
            (want, got) => {
                // A derived mutant carries `Falsifiable` by
                // construction; any other prover outcome means the
                // mutation operator broke its near-miss contract. That
                // is a generator bug, not a benchmark finding — make it
                // a hard error naming the operator and seed so the
                // offending derivation is reproducible, instead of a
                // silently counted mismatch.
                if let Some(op) = cand.mutation {
                    return Err(format!(
                        "{}/{}: mutation '{}' (seed {:#x}) failed to stay falsifiable: \
                         golden {want:?}, prover {got:?}",
                        scenario.id,
                        cand.name,
                        op.tag(),
                        scenario.params.seed
                    ));
                }
                report.mismatches += 1;
                report
                    .problems
                    .push(format!("{}: golden {want:?}, prover {got:?}", cand.name));
            }
        }
    }
    Ok(report)
}

/// [`validate_scenario`] over a whole suite, in suite order.
///
/// # Errors
///
/// Propagates the first binding/parse error (see [`validate_scenario`]).
pub fn validate_suite(suite: &Suite, cfg: ProveConfig) -> Result<Vec<ScenarioReport>, String> {
    suite
        .scenarios
        .iter()
        .map(|s| validate_scenario(s, cfg))
        .collect()
}
