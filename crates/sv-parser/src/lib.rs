//! Parser for the SystemVerilog subset + SVA property layer of FVEval.
//!
//! This crate plays the role of the commercial tool's *syntax check* in
//! the paper's evaluation flow: a model response that fails to parse here
//! (hallucinated operators such as `eventually`, malformed delay ranges,
//! unbalanced parentheses) scores `syntax = fail`, exactly mirroring the
//! Jasper-based metric.
//!
//! Entry points:
//! - [`parse_source`] — full source files (testbenches, designs),
//! - [`parse_assertion_str`] — a single `assert property (...)`,
//! - [`parse_snippet`] — module items without a `module` wrapper
//!   (the Design2SVA response format: extra wires/assigns + assertion),
//! - [`parse_expr_str`] — a bare expression.
//!
//! # Examples
//!
//! ```
//! let a = sv_parser::parse_assertion_str(
//!     "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
//!      wr_push |-> strong(##[0:$] rd_pop));",
//! ).unwrap();
//! assert_eq!(a.label.as_deref(), Some("asrt"));
//! ```

mod lexer;
mod module_parser;
mod parser;
mod preprocess;
mod prop;

use std::error::Error;
use std::fmt;
use sv_ast::{Assertion, Expr, ModuleItem, SourceFile};

pub use preprocess::preprocess;

/// A syntax or early-semantic error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

/// Parses a complete source file (after preprocessing `` `define ``s).
///
/// # Errors
///
/// Returns [`ParseError`] on any lexical or syntactic violation.
pub fn parse_source(text: &str) -> Result<SourceFile, ParseError> {
    let pp = preprocess(text)?;
    let toks = lexer::lex(&pp)?;
    let mut cur = parser::Cursor::new(toks);
    module_parser::parse_source_file(&mut cur)
}

/// Parses a single concurrent assertion statement, with or without label.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed assertions — including SVA
/// operator hallucinations (`eventually(...)`) which fail as unknown
/// identifiers applied as operators.
pub fn parse_assertion_str(text: &str) -> Result<Assertion, ParseError> {
    let pp = preprocess(text)?;
    let toks = lexer::lex(&pp)?;
    let mut cur = parser::Cursor::new(toks);
    let a = prop::parse_assertion(&mut cur)?;
    cur.expect_eof()?;
    Ok(a)
}

/// Parses a sequence of module items without the `module` wrapper —
/// the shape of Design2SVA model responses (declarations, assigns,
/// always blocks, and assertions).
///
/// # Errors
///
/// Returns [`ParseError`] on the first malformed item.
pub fn parse_snippet(text: &str) -> Result<Vec<ModuleItem>, ParseError> {
    let pp = preprocess(text)?;
    let toks = lexer::lex(&pp)?;
    let mut cur = parser::Cursor::new(toks);
    let mut items = Vec::new();
    while !cur.at_eof() {
        items.extend(module_parser::parse_module_item_multi(&mut cur)?);
    }
    Ok(items)
}

/// Parses a bare expression.
///
/// # Errors
///
/// Returns [`ParseError`] if the text is not exactly one expression.
pub fn parse_expr_str(text: &str) -> Result<Expr, ParseError> {
    let pp = preprocess(text)?;
    let toks = lexer::lex(&pp)?;
    let mut cur = parser::Cursor::new(toks);
    let e = parser::parse_expr(&mut cur)?;
    cur.expect_eof()?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hallucinated_operator_fails_syntax() {
        // The paper's Figure 7 failure mode: `eventually` is not SVA.
        let r = parse_assertion_str(
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             wr_push |-> eventually(rd_pop));",
        );
        assert!(r.is_err());
    }

    #[test]
    fn s_eventually_is_accepted() {
        let r = parse_assertion_str("assert property (@(posedge clk) a |-> s_eventually (b));");
        assert!(r.is_ok());
    }

    #[test]
    fn unbalanced_parens_fail() {
        assert!(parse_assertion_str("assert property (@(posedge clk) (a && b);").is_err());
    }
}
