//! Expression-level AST shared by RTL and assertion contexts.

/// A SystemVerilog integer literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// A (possibly sized, possibly based) integer literal such as
    /// `32`, `'d0`, `2'b10`, `8'hFF`. `width == None` means unsized.
    Int {
        /// Explicit bit width, if written (`2'b10` → `Some(2)`).
        width: Option<u32>,
        /// The numeric value (2-state; x/z digits are not supported).
        value: u128,
        /// The base character as written (`b`, `o`, `d`, `h`), if based.
        base: Option<char>,
    },
    /// Unbased unsized literal `'0` or `'1` (fills the context width).
    Fill(bool),
}

impl Literal {
    /// Convenience constructor for plain decimal literals.
    pub fn dec(value: u128) -> Literal {
        Literal::Int {
            width: None,
            value,
            base: None,
        }
    }

    /// Convenience constructor for `'d<value>` literals.
    pub fn tick_d(value: u128) -> Literal {
        Literal::Int {
            width: None,
            value,
            base: Some('d'),
        }
    }

    /// Convenience constructor for sized binary literals.
    pub fn sized_bin(width: u32, value: u128) -> Literal {
        Literal::Int {
            width: Some(width),
            value,
            base: Some('b'),
        }
    }

    /// The numeric value, with `Fill` mapped to 0/all-ones at `width`.
    pub fn value_at_width(&self, width: u32) -> u128 {
        match *self {
            Literal::Int { value, .. } => value,
            Literal::Fill(false) => 0,
            Literal::Fill(true) => {
                if width >= 128 {
                    u128::MAX
                } else {
                    (1u128 << width) - 1
                }
            }
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical negation `!`.
    LogNot,
    /// Bitwise complement `~`.
    BitNot,
    /// Arithmetic negation `-`.
    Neg,
    /// Unary plus `+` (identity).
    Pos,
    /// Reduction and `&`.
    RedAnd,
    /// Reduction or `|`.
    RedOr,
    /// Reduction xor `^`.
    RedXor,
    /// Reduction nand `~&`.
    RedNand,
    /// Reduction nor `~|`.
    RedNor,
    /// Reduction xnor `~^`.
    RedXnor,
}

/// Binary operators, in SystemVerilog notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `~^` / `^~`
    BitXnor,
    /// `==`
    Eq,
    /// `!=`
    Neq,
    /// `===` (2-state: same as `==`)
    CaseEq,
    /// `!==` (2-state: same as `!=`)
    CaseNeq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<<<`
    AShl,
    /// `>>>`
    AShr,
}

impl BinaryOp {
    /// `true` for operators whose result is a single bit.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::CaseEq
                | BinaryOp::CaseNeq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogAnd
                | BinaryOp::LogOr
        )
    }
}

/// System functions accepted in assertion and RTL expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysFunc {
    /// `$countones(x)` — population count.
    Countones,
    /// `$onehot(x)` — exactly one bit set.
    Onehot,
    /// `$onehot0(x)` — at most one bit set.
    Onehot0,
    /// `$bits(x)` — elaboration-time width of the operand.
    Bits,
    /// `$clog2(x)` — ceiling log2 (elaboration-time).
    Clog2,
    /// `$past(x)` (sampled-value; assertion contexts only).
    Past,
    /// `$rose(x)`.
    Rose,
    /// `$fell(x)`.
    Fell,
    /// `$stable(x)`.
    Stable,
    /// `$changed(x)`.
    Changed,
}

impl SysFunc {
    /// Parses a `$name`, returning `None` for unknown functions
    /// (which the caller reports as a syntax/elaboration error —
    /// the paper's "hallucinated operator" failure mode).
    pub fn from_name(name: &str) -> Option<SysFunc> {
        Some(match name {
            "countones" => SysFunc::Countones,
            "onehot" => SysFunc::Onehot,
            "onehot0" => SysFunc::Onehot0,
            "bits" => SysFunc::Bits,
            "clog2" => SysFunc::Clog2,
            "past" => SysFunc::Past,
            "rose" => SysFunc::Rose,
            "fell" => SysFunc::Fell,
            "stable" => SysFunc::Stable,
            "changed" => SysFunc::Changed,
            _ => return None,
        })
    }

    /// The source-level name, without the `$`.
    pub fn name(self) -> &'static str {
        match self {
            SysFunc::Countones => "countones",
            SysFunc::Onehot => "onehot",
            SysFunc::Onehot0 => "onehot0",
            SysFunc::Bits => "bits",
            SysFunc::Clog2 => "clog2",
            SysFunc::Past => "past",
            SysFunc::Rose => "rose",
            SysFunc::Fell => "fell",
            SysFunc::Stable => "stable",
            SysFunc::Changed => "changed",
        }
    }

    /// `true` if the function samples previous-cycle values.
    pub fn is_sampled(self) -> bool {
        matches!(
            self,
            SysFunc::Past | SysFunc::Rose | SysFunc::Fell | SysFunc::Stable | SysFunc::Changed
        )
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Identifier reference.
    Ident(String),
    /// Integer literal.
    Literal(Literal),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Conditional `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Concatenation `{a, b, ...}` (first element is most significant).
    Concat(Vec<Expr>),
    /// Replication `{n{x}}`.
    Replicate(Box<Expr>, Box<Expr>),
    /// Bit select `x[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// Part select `x[hi:lo]`.
    Slice(Box<Expr>, Box<Expr>, Box<Expr>),
    /// System function call.
    SysCall(SysFunc, Vec<Expr>),
}

impl Expr {
    /// Identifier expression.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Decimal literal expression.
    pub fn num(value: u128) -> Expr {
        Expr::Literal(Literal::dec(value))
    }

    /// `a && b`.
    pub fn land(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::LogAnd, Box::new(self), Box::new(rhs))
    }

    /// `a || b`.
    pub fn lor(self, rhs: Expr) -> Expr {
        Expr::Binary(BinaryOp::LogOr, Box::new(self), Box::new(rhs))
    }

    /// `!a`.
    pub fn lnot(self) -> Expr {
        Expr::Unary(UnaryOp::LogNot, Box::new(self))
    }

    /// Generic binary helper.
    pub fn bin(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Collects every identifier referenced in the expression.
    pub fn idents(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit_idents(&mut |s| out.push(s));
        out
    }

    fn visit_idents<'a>(&'a self, f: &mut impl FnMut(&'a str)) {
        match self {
            Expr::Ident(s) => f(s),
            Expr::Literal(_) => {}
            Expr::Unary(_, e) => e.visit_idents(f),
            Expr::Binary(_, a, b) => {
                a.visit_idents(f);
                b.visit_idents(f);
            }
            Expr::Ternary(c, t, e) => {
                c.visit_idents(f);
                t.visit_idents(f);
                e.visit_idents(f);
            }
            Expr::Concat(es) | Expr::SysCall(_, es) => {
                for e in es {
                    e.visit_idents(f);
                }
            }
            Expr::Replicate(n, e) => {
                n.visit_idents(f);
                e.visit_idents(f);
            }
            Expr::Index(b, i) => {
                b.visit_idents(f);
                i.visit_idents(f);
            }
            Expr::Slice(b, h, l) => {
                b.visit_idents(f);
                h.visit_idents(f);
                l.visit_idents(f);
            }
        }
    }

    /// Maximum `$past`-style temporal look-back used by the expression
    /// (0 for purely combinational expressions).
    pub fn sampled_depth(&self) -> u32 {
        match self {
            Expr::SysCall(f, args) => {
                let inner = args.iter().map(|a| a.sampled_depth()).max().unwrap_or(0);
                if f.is_sampled() {
                    inner + 1
                } else {
                    inner
                }
            }
            Expr::Ident(_) | Expr::Literal(_) => 0,
            Expr::Unary(_, e) => e.sampled_depth(),
            Expr::Binary(_, a, b) => a.sampled_depth().max(b.sampled_depth()),
            Expr::Ternary(c, t, e) => c
                .sampled_depth()
                .max(t.sampled_depth())
                .max(e.sampled_depth()),
            Expr::Concat(es) => es.iter().map(|e| e.sampled_depth()).max().unwrap_or(0),
            Expr::Replicate(n, e) => n.sampled_depth().max(e.sampled_depth()),
            Expr::Index(b, i) => b.sampled_depth().max(i.sampled_depth()),
            Expr::Slice(b, h, l) => b
                .sampled_depth()
                .max(h.sampled_depth())
                .max(l.sampled_depth()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = Expr::ident("a").land(Expr::ident("b").lnot());
        assert_eq!(e.idents(), vec!["a", "b"]);
    }

    #[test]
    fn fill_literal_value() {
        assert_eq!(Literal::Fill(true).value_at_width(4), 0xF);
        assert_eq!(Literal::Fill(false).value_at_width(4), 0);
        assert_eq!(Literal::dec(42).value_at_width(8), 42);
    }

    #[test]
    fn sysfunc_names_round_trip() {
        for f in [
            SysFunc::Countones,
            SysFunc::Onehot,
            SysFunc::Onehot0,
            SysFunc::Bits,
            SysFunc::Clog2,
            SysFunc::Past,
            SysFunc::Rose,
            SysFunc::Fell,
            SysFunc::Stable,
            SysFunc::Changed,
        ] {
            assert_eq!(SysFunc::from_name(f.name()), Some(f));
        }
        assert_eq!(SysFunc::from_name("eventually"), None, "hallucinated op");
    }

    #[test]
    fn sampled_depth_counts_nesting() {
        let e = Expr::SysCall(
            SysFunc::Rose,
            vec![Expr::SysCall(SysFunc::Past, vec![Expr::ident("x")])],
        );
        assert_eq!(e.sampled_depth(), 2);
        assert_eq!(Expr::ident("x").sampled_depth(), 0);
    }
}
