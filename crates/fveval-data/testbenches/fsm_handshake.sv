// NL2SVA-Human collateral: request/acknowledge handshake FSM.
//
// IDLE -> BUSY on a request, BUSY -> DONE on the acknowledge, and DONE
// always returns to IDLE after one cycle. State encodings are exported
// as parameters so assertions can name them.
module fsm_handshake_tb (
    input clk,
    input reset_,
    input req_in,
    input ack_in
);
  parameter IDLE = 0;
  parameter BUSY = 1;
  parameter DONE = 2;

  wire tb_reset;
  assign tb_reset = (reset_ == 1'b0);

  reg [1:0] state;

  always_ff @(posedge clk or negedge reset_) begin
    if (!reset_) begin
      state <= 2'd0;
    end else begin
      if (state == 2'd0) begin
        if (req_in) state <= 2'd1;
      end else if (state == 2'd1) begin
        if (ack_in) state <= 2'd2;
      end else begin
        state <= 2'd0;
      end
    end
  end
endmodule
