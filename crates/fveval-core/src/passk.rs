//! The unbiased pass@k estimator (Chen et al., 2021), as used by the
//! paper's Tables 2, 4, and 5.

/// Unbiased pass@k: the probability that at least one of `k` samples
/// drawn (without replacement) from `n` attempts with `c` successes
/// passes: `1 - C(n-c, k) / C(n, k)`.
///
/// Returns 1.0 when `n - c < k` (a success is guaranteed in any draw).
///
/// # Panics
///
/// Panics if `c > n` or `k == 0` or `k > n`.
///
/// # Examples
///
/// ```
/// use fveval_core::pass_at_k;
/// assert_eq!(pass_at_k(10, 0, 5), 0.0);
/// assert_eq!(pass_at_k(10, 10, 1), 1.0);
/// assert!((pass_at_k(2, 1, 1) - 0.5).abs() < 1e-12);
/// ```
pub fn pass_at_k(n: u32, c: u32, k: u32) -> f64 {
    assert!(c <= n, "successes cannot exceed attempts");
    assert!(k >= 1 && k <= n, "k must be in 1..=n");
    if n - c < k {
        return 1.0;
    }
    // 1 - prod_{i=0}^{k-1} (n - c - i) / (n - i), numerically stable.
    let mut prod = 1.0f64;
    for i in 0..k {
        prod *= f64::from(n - c - i) / f64::from(n - i);
    }
    1.0 - prod
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_small_cases() {
        // n=3, c=1, k=2: 1 - C(2,2)/C(3,2) = 1 - 1/3.
        assert!((pass_at_k(3, 1, 2) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        // n=5, c=2, k=3: 1 - C(3,3)/C(5,3) = 1 - 1/10.
        assert!((pass_at_k(5, 2, 3) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n_is_indicator() {
        assert_eq!(pass_at_k(7, 0, 7), 0.0);
        for c in 1..=7 {
            assert_eq!(pass_at_k(7, c, 7), 1.0);
        }
    }

    #[test]
    fn monotone_in_k_and_c() {
        for c in 0..=6u32 {
            for k in 1..6u32 {
                assert!(pass_at_k(6, c, k + 1) >= pass_at_k(6, c, k) - 1e-12);
            }
        }
        for k in 1..=6u32 {
            for c in 0..6u32 {
                assert!(pass_at_k(6, c + 1, k) >= pass_at_k(6, c, k) - 1e-12);
            }
        }
    }

    #[test]
    fn matches_monte_carlo() {
        // Compare against a brute-force enumeration for n=6, k=3.
        let n = 6u32;
        let k = 3u32;
        for c in 0..=n {
            // Enumerate all C(6,3) index triples; success if any index < c.
            let mut hits = 0u32;
            let mut total = 0u32;
            for i in 0..n {
                for j in (i + 1)..n {
                    for l in (j + 1)..n {
                        total += 1;
                        if i < c || j < c || l < c {
                            hits += 1;
                        }
                    }
                }
            }
            let exact = f64::from(hits) / f64::from(total);
            assert!(
                (pass_at_k(n, c, k) - exact).abs() < 1e-12,
                "c={c}: {} vs {exact}",
                pass_at_k(n, c, k)
            );
        }
    }

    #[test]
    #[should_panic(expected = "successes cannot exceed attempts")]
    fn rejects_bad_counts() {
        pass_at_k(3, 4, 1);
    }
}
