//! Module-level AST: declarations, processes, instances, generate blocks.

use crate::expr::Expr;
use crate::property::Assertion;

/// A parsed source file (one or more modules plus `\`define` text handled
/// by the preprocessor before parsing).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceFile {
    /// Modules in source order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout` (parsed, not synthesized)
    Inout,
}

/// A packed range `[msb:lsb]` (expressions resolved at elaboration).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Range {
    /// MSB expression.
    pub msb: Expr,
    /// LSB expression.
    pub lsb: Expr,
}

impl Range {
    /// Builds `[msb:lsb]`.
    pub fn new(msb: Expr, lsb: Expr) -> Range {
        Range { msb, lsb }
    }

    /// `[width-1:0]` with a literal width.
    pub fn width(w: u32) -> Range {
        Range {
            msb: Expr::num(u128::from(w) - 1),
            lsb: Expr::num(0),
        }
    }
}

/// A port declaration (either header-style or in-body `input [W-1:0] x;`).
#[derive(Debug, Clone, PartialEq)]
pub struct PortDecl {
    /// Direction.
    pub dir: PortDir,
    /// Optional packed range.
    pub range: Option<Range>,
    /// Declared `reg` (affects nothing in our 2-state model).
    pub is_reg: bool,
    /// Port name.
    pub name: String,
}

/// `parameter` / `localparam` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// `true` for `localparam`.
    pub local: bool,
    /// Name.
    pub name: String,
    /// Default / value expression.
    pub value: Expr,
}

/// Net kinds in declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// `wire`
    Wire,
    /// `reg`
    Reg,
    /// `logic`
    Logic,
    /// `genvar`
    Genvar,
}

/// A net/variable declaration, possibly with packed and unpacked dims.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDecl {
    /// Kind keyword.
    pub kind: NetKind,
    /// Packed range(s); multiple packed dims are flattened MSB-first.
    pub packed: Vec<Range>,
    /// Name.
    pub name: String,
    /// Unpacked (array) dimensions, e.g. memories.
    pub unpacked: Vec<Range>,
    /// Optional initializer (`wire x = expr;` form becomes an assign).
    pub init: Option<Expr>,
}

/// A continuous assignment (`assign lhs = rhs;`).
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Left-hand side.
    pub lhs: LValue,
    /// Right-hand side expression.
    pub rhs: Expr,
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LValue {
    /// Whole identifier.
    Ident(String),
    /// Single element `x[i]`.
    Index(String, Expr),
    /// Part select `x[hi:lo]`.
    Slice(String, Expr, Expr),
    /// Concatenation target `{a, b}`.
    Concat(Vec<LValue>),
}

impl LValue {
    /// Base identifiers written by this lvalue.
    pub fn idents(&self) -> Vec<&str> {
        match self {
            LValue::Ident(s) | LValue::Index(s, _) | LValue::Slice(s, _, _) => vec![s],
            LValue::Concat(ls) => ls.iter().flat_map(|l| l.idents()).collect(),
        }
    }
}

/// Sensitivity-list entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EventExpr {
    /// Edge kind.
    pub edge: EdgeKind,
    /// Signal name.
    pub signal: String,
}

/// Edge of an event control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `posedge`
    Pos,
    /// `negedge`
    Neg,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin ... end`, possibly labeled.
    Block(Vec<Stmt>),
    /// `if (c) s [else s]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Box<Stmt>,
        /// Optional else-branch.
        alt: Option<Box<Stmt>>,
    },
    /// `case (subject) ... endcase`.
    Case {
        /// Case subject expression.
        subject: Expr,
        /// Arms: label expressions and body.
        arms: Vec<(Vec<Expr>, Stmt)>,
        /// Optional `default:` arm.
        default: Option<Box<Stmt>>,
    },
    /// Non-blocking assignment `lhs <= rhs;`.
    NonBlocking(LValue, Expr),
    /// Blocking assignment `lhs = rhs;`.
    Blocking(LValue, Expr),
    /// Empty statement `;`.
    Empty,
}

/// Module instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instantiated module name.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Parameter overrides `#(.P(expr), ...)`.
    pub params: Vec<(String, Expr)>,
    /// Port connections `.port(expr)`.
    pub conns: Vec<(String, Expr)>,
}

/// Items inside a module body.
#[derive(Debug, Clone, PartialEq)]
pub enum ModuleItem {
    /// Parameter or localparam.
    Param(ParamDecl),
    /// In-body port declaration.
    Port(PortDecl),
    /// Net/variable declaration.
    Net(NetDecl),
    /// Continuous assignment.
    ContAssign(Assign),
    /// `always_ff @(...)` process.
    AlwaysFf {
        /// Sensitivity edges.
        events: Vec<EventExpr>,
        /// Body.
        body: Stmt,
    },
    /// `always_comb` process.
    AlwaysComb(Stmt),
    /// Classic `always @(...)` (treated as FF when edge-sensitive).
    AlwaysAt {
        /// Sensitivity edges.
        events: Vec<EventExpr>,
        /// Body.
        body: Stmt,
    },
    /// Module instance.
    Instance(Instance),
    /// `for (genvar i = ...; ...; ...) begin : label ... end`
    /// (either `generate`-wrapped or bare).
    GenerateFor {
        /// Loop genvar name.
        var: String,
        /// Initializer value expression.
        init: Expr,
        /// Loop condition.
        cond: Expr,
        /// Step expression (new value of the genvar).
        step: Expr,
        /// Optional block label.
        label: Option<String>,
        /// Replicated items.
        body: Vec<ModuleItem>,
    },
    /// A concurrent assertion.
    Assertion(Assertion),
}

/// A module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Header parameter declarations (`#(parameter ...)`) plus body params.
    pub params: Vec<ParamDecl>,
    /// Header port name order.
    pub port_order: Vec<String>,
    /// Port declarations (from header or body).
    pub ports: Vec<PortDecl>,
    /// Body items in source order.
    pub items: Vec<ModuleItem>,
}

impl Module {
    /// Finds a port declaration by name.
    pub fn port(&self, name: &str) -> Option<&PortDecl> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// All assertions declared in the module body (not inside generates).
    pub fn assertions(&self) -> impl Iterator<Item = &Assertion> {
        self.items.iter().filter_map(|i| match i {
            ModuleItem::Assertion(a) => Some(a),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lvalue_idents() {
        let lv = LValue::Concat(vec![
            LValue::Ident("a".into()),
            LValue::Index("b".into(), Expr::num(0)),
        ]);
        assert_eq!(lv.idents(), vec!["a", "b"]);
    }

    #[test]
    fn range_width_helper() {
        let r = Range::width(8);
        assert_eq!(r.msb, Expr::num(7));
        assert_eq!(r.lsb, Expr::num(0));
    }

    #[test]
    fn module_port_lookup() {
        let m = Module {
            name: "m".into(),
            params: vec![],
            port_order: vec!["clk".into()],
            ports: vec![PortDecl {
                dir: PortDir::Input,
                range: None,
                is_reg: false,
                name: "clk".into(),
            }],
            items: vec![],
        };
        assert!(m.port("clk").is_some());
        assert!(m.port("nope").is_none());
    }
}
