//! First-answer-wins racing of the bounded schedule against PDR.
//!
//! One portfolio check uses two engines on two threads:
//!
//! - the **bounded** BMC + k-induction schedule runs on the calling
//!   thread, against the session's shared unrolling and warmed solver
//!   (all its incremental reuse is preserved);
//! - **PDR** runs on a scoped thread with its own solver and
//!   single-step encoding.
//!
//! Cancellation is cooperative: both solvers poll one shared
//! [`AtomicBool`] from their search loops ([`fv_sat::Solver`]'s
//! interrupt token), so the loser stops within one conflict of the
//! winner's claim.
//!
//! # Deterministic arbitration
//!
//! Raw racing would make the reported result depend on thread timing.
//! The claim protocol removes that:
//!
//! - PDR claims the race **only for `Proven`** — the one verdict the
//!   bounded schedule may be structurally unable to reach. A PDR
//!   falsification never interrupts the bounded engine.
//! - If the bounded schedule concludes (`Proven` or `Falsified`), its
//!   result is reported verbatim; in particular every reported
//!   counterexample trace is the bounded engine's canonical trace.
//! - If the bounded schedule is `Undetermined` (bounds exhausted), the
//!   fully-joined PDR result is used: a deep proof, or a
//!   replay-validated deep counterexample.
//!
//! Both engines are sound and the bounded engine is never interrupted
//! unless PDR has *proven* the property, so the reported verdict kind —
//! and any reported trace — is independent of which thread runs faster.
//! Racing-dependent details (who won, how often engines were cut)
//! surface only through the [`ProverStats`] attribution counters.

use crate::error::EncodeError;
use crate::prove::{ProofSession, ProveEngine, ProveResult};
use crate::stats::ProverStats;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use sv_ast::Assertion;

/// Nobody has claimed the race yet.
const OPEN: u8 = 0;
/// The bounded schedule concluded first.
const BASE: u8 = 1;
/// PDR proved the property first.
const PDR: u8 = 2;

/// Runs one portfolio check on `session`. Called from
/// [`ProofSession::check`] when [`ProveEngine::Portfolio`] is selected;
/// the unbounded-operator early-out has already happened.
pub(crate) fn race(
    session: &mut ProofSession<'_>,
    assertion: &Assertion,
    horizon: u32,
) -> Result<ProveResult, EncodeError> {
    let mut span = fv_trace::span!("portfolio.race");
    let cancel = Arc::new(AtomicBool::new(false));
    let winner = Arc::new(AtomicU8::new(OPEN));
    let netlist = session.netlist;
    let consts = session.consts.clone();
    let pdr_cfg = crate::prove::ProveConfig {
        engine: ProveEngine::Pdr,
        ..session.cfg
    };

    let (base, pdr) = std::thread::scope(|scope| {
        let pdr_handle = {
            let cancel = Arc::clone(&cancel);
            let winner = Arc::clone(&winner);
            let consts = &consts;
            scope.spawn(move || {
                let mut stats = ProverStats::default();
                let out = crate::pdr::run_pdr(
                    netlist,
                    assertion,
                    consts,
                    pdr_cfg,
                    Some(&cancel),
                    &mut stats,
                );
                if matches!(&out, Ok(o) if o.result.is_proven())
                    && winner
                        .compare_exchange(OPEN, PDR, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    cancel.store(true, Ordering::SeqCst);
                }
                (out, stats)
            })
        };

        session.solver.set_interrupt(Some(Arc::clone(&cancel)));
        let base = session.check_bounded(assertion, horizon);
        session.solver.set_interrupt(None);
        let base_definite = matches!(
            &base,
            Ok(ProveResult::Proven { .. } | ProveResult::Falsified { .. })
        );
        if (base_definite || base.is_err())
            && winner
                .compare_exchange(OPEN, BASE, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            cancel.store(true, Ordering::SeqCst);
        }
        let pdr = pdr_handle.join().expect("PDR engine thread panicked");
        (base, pdr)
    });

    let (pdr_out, pdr_stats) = pdr;
    session.stats.merge(&pdr_stats);
    if span.is_active() {
        span.attr(
            "winner",
            match winner.load(Ordering::SeqCst) {
                PDR => "pdr",
                BASE => "bounded",
                _ => "fallback",
            },
        );
    }
    match winner.load(Ordering::SeqCst) {
        PDR => {
            // PDR proved it and interrupted the bounded schedule (whose
            // interrupted run can only have fallen through to
            // Undetermined or an encode error PDR did not hit).
            session.stats.pdr_wins += 1;
            session.stats.engine_cancellations += 1;
            Ok(pdr_out?.result)
        }
        BASE => {
            if matches!(&pdr_out, Ok(o) if o.interrupted) {
                session.stats.engine_cancellations += 1;
            }
            if base.is_ok() {
                session.stats.bounded_wins += 1;
            }
            base
        }
        _ => {
            // Bounded schedule exhausted its bounds without a claim;
            // fall back to whatever PDR concluded on its own. A PDR
            // error here is demoted to Undetermined — the bounded
            // engine already encoded the same monitor successfully, so
            // the check itself is well-formed.
            debug_assert!(matches!(&base, Ok(ProveResult::Undetermined)));
            match pdr_out {
                Ok(out) => {
                    if out.interrupted {
                        session.stats.engine_cancellations += 1;
                    }
                    if !matches!(out.result, ProveResult::Undetermined) {
                        session.stats.pdr_wins += 1;
                    }
                    Ok(out.result)
                }
                Err(_) => base,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prove::{prove, replay_design_cex, ProofSession, ProveConfig, ProveResult};
    use crate::prove_with_stats;
    use crate::ProveEngine;
    use sv_parser::{parse_assertion_str, parse_source};
    use sv_synth::{elaborate, Netlist};

    fn wrapping_counter() -> Netlist {
        let src = "module m (clk, reset_, en, q);\n\
            input clk; input reset_; input en;\n\
            output [2:0] q;\n\
            reg [2:0] cnt;\n\
            always @(posedge clk) begin\n\
            if (!reset_) cnt <= 3'd0;\n\
            else if (en) cnt <= (cnt == 3'd5) ? 3'd0 : cnt + 3'd1;\nend\n\
            assign q = cnt;\nendmodule\n";
        let f = parse_source(src).unwrap();
        elaborate(&f, "m").unwrap()
    }

    fn portfolio_cfg() -> ProveConfig {
        ProveConfig {
            engine: ProveEngine::Portfolio,
            ..ProveConfig::default()
        }
    }

    #[test]
    fn portfolio_rescues_deep_proof() {
        // Bounded alone gives up on `q != 7`; the portfolio proves it
        // via PDR and attributes the win.
        let nl = wrapping_counter();
        let a = parse_assertion_str("assert property (@(posedge clk) q != 3'd7);").unwrap();
        assert_eq!(
            prove(&nl, &a, &[], ProveConfig::default()).unwrap(),
            ProveResult::Undetermined
        );
        let (r, stats) = prove_with_stats(&nl, &a, &[], portfolio_cfg()).unwrap();
        assert!(r.is_proven(), "got {r:?}");
        assert_eq!(stats.pdr_wins, 1, "{stats:?}");
        assert!(stats.pdr_clauses_learned >= 1, "{stats:?}");
    }

    #[test]
    fn portfolio_verdicts_and_traces_match_bounded() {
        // For every candidate the bounded engine can decide, the
        // portfolio must report the same verdict kind — and for
        // falsified candidates the *identical* trace (the bounded
        // engine's canonical one), rendered byte-for-byte the same.
        let nl = wrapping_counter();
        let candidates = [
            "assert property (@(posedge clk) en || !en);",
            "assert property (@(posedge clk) q != 3'd2);",
            "assert property (@(posedge clk) (en && q == 3'd1) |-> ##1 q == 3'd2);",
            "assert property (@(posedge clk) (en && q == 3'd1) |-> ##1 q == 3'd4);",
            "assert property (@(posedge clk) en |-> strong(##[0:$] q == 3'd5));",
        ];
        let mut bounded = ProofSession::open(&nl, &[], ProveConfig::default()).unwrap();
        let mut racing = ProofSession::open(&nl, &[], portfolio_cfg()).unwrap();
        for src in candidates {
            let a = parse_assertion_str(src).unwrap();
            let (b, _) = bounded.check(&a).unwrap();
            let (p, _) = racing.check(&a).unwrap();
            match (&b, &p) {
                (ProveResult::Falsified { cex: c1 }, ProveResult::Falsified { cex: c2 }) => {
                    assert_eq!(c1.to_string(), c2.to_string(), "{src}");
                }
                (ProveResult::Proven { .. }, ProveResult::Proven { .. }) => {}
                (ProveResult::Undetermined, ProveResult::Undetermined) => {}
                (b, p) => panic!("{src}: bounded {b:?} vs portfolio {p:?}"),
            }
        }
        assert!(racing.stats().bounded_wins >= 1, "{:?}", racing.stats());
    }

    #[test]
    fn portfolio_deep_falsification_replays() {
        // A violation beyond max_bmc anchors: bounded is undetermined,
        // PDR finds the deep counterexample and it replays.
        let nl = wrapping_counter();
        let cfg = ProveConfig {
            max_bmc: 2,
            max_induction: 2,
            ..portfolio_cfg()
        };
        let a = parse_assertion_str("assert property (@(posedge clk) q != 3'd4);").unwrap();
        let bounded_cfg = ProveConfig {
            engine: ProveEngine::Bounded,
            ..cfg
        };
        assert_eq!(
            prove(&nl, &a, &[], bounded_cfg).unwrap(),
            ProveResult::Undetermined
        );
        let (r, stats) = prove_with_stats(&nl, &a, &[], cfg).unwrap();
        match r {
            ProveResult::Falsified { cex } => {
                assert!(cex.anchor >= 4);
                assert_eq!(replay_design_cex(&nl, &a, &[], cfg, &cex), Ok(true));
            }
            other => panic!("expected falsified, got {other:?}"),
        }
        assert_eq!(stats.pdr_wins, 1, "{stats:?}");
    }

    #[test]
    fn portfolio_session_stays_usable_after_errors() {
        let nl = wrapping_counter();
        let mut session = ProofSession::open(&nl, &[], portfolio_cfg()).unwrap();
        let bad = parse_assertion_str("assert property (@(posedge clk) ghost == 1'b0);").unwrap();
        assert!(session.check(&bad).is_err());
        let good = parse_assertion_str("assert property (@(posedge clk) q != 3'd7);").unwrap();
        let (r, _) = session.check(&good).unwrap();
        assert!(r.is_proven(), "got {r:?}");
    }
}
