//! The SVA property / sequence layer.

use crate::expr::Expr;

/// Clocking event of a concurrent assertion (`@(posedge clk)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClockSpec {
    /// Clock signal name.
    pub signal: String,
    /// `true` for `posedge` (the only edge used by the benchmarks,
    /// but `negedge` parses too).
    pub posedge: bool,
}

impl ClockSpec {
    /// `@(posedge clk)`.
    pub fn posedge(signal: impl Into<String>) -> ClockSpec {
        ClockSpec {
            signal: signal.into(),
            posedge: true,
        }
    }
}

/// Upper bound of a `##[lo:hi]` delay or `[*lo:hi]` repetition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DelayBound {
    /// A finite bound.
    Finite(u32),
    /// `$` — unbounded.
    Unbounded,
}

impl DelayBound {
    /// The finite value, if any.
    pub fn finite(self) -> Option<u32> {
        match self {
            DelayBound::Finite(n) => Some(n),
            DelayBound::Unbounded => None,
        }
    }
}

/// A sequence expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SeqExpr {
    /// A boolean expression evaluated in a single cycle.
    Expr(Expr),
    /// `lhs ##[lo:hi] rhs`; `lhs == None` encodes a leading delay
    /// (`##2 e`).
    Delay {
        /// Left operand, absent for a leading delay.
        lhs: Option<Box<SeqExpr>>,
        /// Minimum delay.
        lo: u32,
        /// Maximum delay (`$` allowed).
        hi: DelayBound,
        /// Right operand.
        rhs: Box<SeqExpr>,
    },
    /// Consecutive repetition `seq[*lo:hi]`.
    Repeat {
        /// The repeated sequence.
        seq: Box<SeqExpr>,
        /// Minimum repetition count.
        lo: u32,
        /// Maximum repetition count (`$` allowed).
        hi: DelayBound,
    },
    /// Sequence conjunction `a and b` (both match, same start; ends may
    /// differ — we use the "both hold" reading over the joint window).
    And(Box<SeqExpr>, Box<SeqExpr>),
    /// Sequence disjunction `a or b`.
    Or(Box<SeqExpr>, Box<SeqExpr>),
    /// `expr throughout seq`.
    Throughout(Expr, Box<SeqExpr>),
}

impl SeqExpr {
    /// Wraps a boolean expression.
    pub fn expr(e: Expr) -> SeqExpr {
        SeqExpr::Expr(e)
    }

    /// `lhs ##n rhs` with an exact delay.
    pub fn then(self, n: u32, rhs: SeqExpr) -> SeqExpr {
        SeqExpr::Delay {
            lhs: Some(Box::new(self)),
            lo: n,
            hi: DelayBound::Finite(n),
            rhs: Box::new(rhs),
        }
    }

    /// Minimum number of cycles a match can span (0 = single cycle).
    pub fn min_length(&self) -> u32 {
        match self {
            SeqExpr::Expr(_) => 0,
            SeqExpr::Delay { lhs, lo, rhs, .. } => {
                lhs.as_ref().map_or(0, |l| l.min_length()) + lo + rhs.min_length()
            }
            SeqExpr::Repeat { seq, lo, .. } => {
                if *lo == 0 {
                    0
                } else {
                    (seq.min_length() + 1) * lo - 1
                }
            }
            SeqExpr::And(a, b) => a.min_length().max(b.min_length()),
            SeqExpr::Or(a, b) => a.min_length().min(b.min_length()),
            SeqExpr::Throughout(_, s) => s.min_length(),
        }
    }

    /// Maximum span of a match in cycles, `None` if unbounded.
    pub fn max_length(&self) -> Option<u32> {
        match self {
            SeqExpr::Expr(_) => Some(0),
            SeqExpr::Delay { lhs, hi, rhs, .. } => {
                let l = lhs.as_ref().map_or(Some(0), |l| l.max_length())?;
                let h = hi.finite()?;
                let r = rhs.max_length()?;
                Some(l + h + r)
            }
            SeqExpr::Repeat { seq, hi, .. } => {
                let h = hi.finite()?;
                let s = seq.max_length()?;
                if h == 0 {
                    Some(0)
                } else {
                    Some((s + 1) * h - 1)
                }
            }
            SeqExpr::And(a, b) => Some(a.max_length()?.max(b.max_length()?)),
            SeqExpr::Or(a, b) => Some(a.max_length()?.max(b.max_length()?)),
            SeqExpr::Throughout(_, s) => s.max_length(),
        }
    }

    /// Maximum sampled-value look-back within the sequence's booleans.
    pub fn sampled_depth(&self) -> u32 {
        match self {
            SeqExpr::Expr(e) => e.sampled_depth(),
            SeqExpr::Delay { lhs, rhs, .. } => lhs
                .as_ref()
                .map_or(0, |l| l.sampled_depth())
                .max(rhs.sampled_depth()),
            SeqExpr::Repeat { seq, .. } => seq.sampled_depth(),
            SeqExpr::And(a, b) | SeqExpr::Or(a, b) => a.sampled_depth().max(b.sampled_depth()),
            SeqExpr::Throughout(e, s) => e.sampled_depth().max(s.sampled_depth()),
        }
    }
}

/// A property expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PropExpr {
    /// A sequence used as a property (weak by default in assert context).
    Seq(SeqExpr),
    /// `strong(seq)` — pending matches at trace end count as failures.
    Strong(SeqExpr),
    /// `weak(seq)` — explicit weak marker.
    Weak(SeqExpr),
    /// Property negation `not p`.
    Not(Box<PropExpr>),
    /// Property conjunction `p and q`.
    And(Box<PropExpr>, Box<PropExpr>),
    /// Property disjunction `p or q`.
    Or(Box<PropExpr>, Box<PropExpr>),
    /// Suffix implication `seq |-> p` (overlapping) or `seq |=> p`
    /// (non-overlapping).
    Implication {
        /// Antecedent sequence.
        ante: SeqExpr,
        /// `true` for `|=>`.
        non_overlap: bool,
        /// Consequent property.
        cons: Box<PropExpr>,
    },
    /// `s_eventually p`.
    SEventually(Box<PropExpr>),
    /// `always p`.
    Always(Box<PropExpr>),
    /// `nexttime p`.
    Nexttime(Box<PropExpr>),
    /// `p until q` (weak) / `p s_until q` (strong).
    Until {
        /// `true` for `s_until`.
        strong: bool,
        /// Left property (must hold until...).
        lhs: Box<PropExpr>,
        /// Right property (...this one holds).
        rhs: Box<PropExpr>,
    },
    /// `if (cond) p else q` property conditional.
    IfElse {
        /// Condition expression.
        cond: Expr,
        /// Then-branch.
        then: Box<PropExpr>,
        /// Optional else-branch.
        alt: Option<Box<PropExpr>>,
    },
}

impl PropExpr {
    /// Boolean expression as a property.
    pub fn expr(e: Expr) -> PropExpr {
        PropExpr::Seq(SeqExpr::Expr(e))
    }

    /// `ante |-> cons`.
    pub fn implies(ante: SeqExpr, cons: PropExpr) -> PropExpr {
        PropExpr::Implication {
            ante,
            non_overlap: false,
            cons: Box::new(cons),
        }
    }

    /// A safe horizon (in cycles) after which bounded evaluation of this
    /// property is exact for its bounded part; unbounded operators add
    /// the caller-provided slack on top.
    pub fn temporal_depth(&self) -> u32 {
        match self {
            PropExpr::Seq(s) | PropExpr::Strong(s) | PropExpr::Weak(s) => {
                s.max_length().unwrap_or(s.min_length())
            }
            PropExpr::Not(p) | PropExpr::SEventually(p) | PropExpr::Always(p) => p.temporal_depth(),
            PropExpr::Nexttime(p) => 1 + p.temporal_depth(),
            PropExpr::And(a, b) | PropExpr::Or(a, b) => a.temporal_depth().max(b.temporal_depth()),
            PropExpr::Implication {
                ante,
                non_overlap,
                cons,
            } => {
                let a = ante.max_length().unwrap_or(ante.min_length());
                a + u32::from(*non_overlap) + cons.temporal_depth()
            }
            PropExpr::Until { lhs, rhs, .. } => lhs.temporal_depth().max(rhs.temporal_depth()),
            PropExpr::IfElse { then, alt, .. } => then
                .temporal_depth()
                .max(alt.as_ref().map_or(0, |p| p.temporal_depth())),
        }
    }

    /// `true` if the property contains an unbounded operator
    /// (`##[m:$]`, `[*m:$]`, `s_eventually`, `until`, `always`).
    pub fn has_unbounded(&self) -> bool {
        fn seq_unbounded(s: &SeqExpr) -> bool {
            match s {
                SeqExpr::Expr(_) => false,
                SeqExpr::Delay { lhs, hi, rhs, .. } => {
                    hi.finite().is_none()
                        || lhs.as_ref().is_some_and(|l| seq_unbounded(l))
                        || seq_unbounded(rhs)
                }
                SeqExpr::Repeat { seq, hi, .. } => hi.finite().is_none() || seq_unbounded(seq),
                SeqExpr::And(a, b) | SeqExpr::Or(a, b) => seq_unbounded(a) || seq_unbounded(b),
                SeqExpr::Throughout(_, s) => seq_unbounded(s),
            }
        }
        match self {
            PropExpr::Seq(s) | PropExpr::Strong(s) | PropExpr::Weak(s) => seq_unbounded(s),
            PropExpr::Not(p) | PropExpr::Nexttime(p) => p.has_unbounded(),
            PropExpr::SEventually(_) | PropExpr::Always(_) | PropExpr::Until { .. } => true,
            PropExpr::And(a, b) | PropExpr::Or(a, b) => a.has_unbounded() || b.has_unbounded(),
            PropExpr::Implication { ante, cons, .. } => seq_unbounded(ante) || cons.has_unbounded(),
            PropExpr::IfElse { then, alt, .. } => {
                then.has_unbounded() || alt.as_ref().is_some_and(|p| p.has_unbounded())
            }
        }
    }

    /// Maximum sampled-value look-back in the property's booleans.
    pub fn sampled_depth(&self) -> u32 {
        match self {
            PropExpr::Seq(s) | PropExpr::Strong(s) | PropExpr::Weak(s) => s.sampled_depth(),
            PropExpr::Not(p)
            | PropExpr::SEventually(p)
            | PropExpr::Always(p)
            | PropExpr::Nexttime(p) => p.sampled_depth(),
            PropExpr::And(a, b) | PropExpr::Or(a, b) => a.sampled_depth().max(b.sampled_depth()),
            PropExpr::Implication { ante, cons, .. } => {
                ante.sampled_depth().max(cons.sampled_depth())
            }
            PropExpr::Until { lhs, rhs, .. } => lhs.sampled_depth().max(rhs.sampled_depth()),
            PropExpr::IfElse { cond, then, alt } => cond
                .sampled_depth()
                .max(then.sampled_depth())
                .max(alt.as_ref().map_or(0, |p| p.sampled_depth())),
        }
    }
}

/// A complete concurrent assertion
/// (`label: assert property (@(posedge clk) disable iff (d) body);`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Assertion {
    /// Optional label.
    pub label: Option<String>,
    /// Clocking event.
    pub clock: ClockSpec,
    /// Optional `disable iff` expression.
    pub disable: Option<Expr>,
    /// The property body.
    pub body: PropExpr,
}

impl Assertion {
    /// Builds an unlabeled assertion on `posedge clk` with no disable.
    pub fn new(clock: ClockSpec, body: PropExpr) -> Assertion {
        Assertion {
            label: None,
            clock,
            disable: None,
            body,
        }
    }

    /// Sets the `disable iff` expression.
    pub fn with_disable(mut self, e: Expr) -> Assertion {
        self.disable = Some(e);
        self
    }

    /// Sets the label.
    pub fn with_label(mut self, label: impl Into<String>) -> Assertion {
        self.label = Some(label.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn e(name: &str) -> SeqExpr {
        SeqExpr::Expr(Expr::ident(name))
    }

    #[test]
    fn lengths_of_delays() {
        // a ##2 b
        let s = e("a").then(2, e("b"));
        assert_eq!(s.min_length(), 2);
        assert_eq!(s.max_length(), Some(2));
        // a ##[1:$] b
        let s = SeqExpr::Delay {
            lhs: Some(Box::new(e("a"))),
            lo: 1,
            hi: DelayBound::Unbounded,
            rhs: Box::new(e("b")),
        };
        assert_eq!(s.min_length(), 1);
        assert_eq!(s.max_length(), None);
    }

    #[test]
    fn temporal_depth_of_implication() {
        // a |=> ##3 b : depth 4
        let p = PropExpr::Implication {
            ante: e("a"),
            non_overlap: true,
            cons: Box::new(PropExpr::Seq(SeqExpr::Delay {
                lhs: None,
                lo: 3,
                hi: DelayBound::Finite(3),
                rhs: Box::new(e("b")),
            })),
        };
        assert_eq!(p.temporal_depth(), 4);
        assert!(!p.has_unbounded());
    }

    #[test]
    fn unbounded_detection() {
        let p = PropExpr::Implication {
            ante: e("a"),
            non_overlap: false,
            cons: Box::new(PropExpr::Strong(SeqExpr::Delay {
                lhs: None,
                lo: 0,
                hi: DelayBound::Unbounded,
                rhs: Box::new(e("b")),
            })),
        };
        assert!(p.has_unbounded());
        assert!(PropExpr::SEventually(Box::new(PropExpr::expr(Expr::ident("x")))).has_unbounded());
    }

    #[test]
    fn repeat_lengths() {
        // a[*3]: spans 2 cycles (3 consecutive matches of a 1-cycle seq)
        let s = SeqExpr::Repeat {
            seq: Box::new(e("a")),
            lo: 3,
            hi: DelayBound::Finite(3),
        };
        assert_eq!(s.min_length(), 2);
        assert_eq!(s.max_length(), Some(2));
    }

    #[test]
    fn assertion_builder() {
        let a = Assertion::new(ClockSpec::posedge("clk"), PropExpr::expr(Expr::ident("x")))
            .with_disable(Expr::ident("tb_reset"))
            .with_label("asrt");
        assert_eq!(a.label.as_deref(), Some("asrt"));
        assert!(a.disable.is_some());
    }
}
