//! Assertion-to-assertion formal equivalence — the reproduction of the
//! paper's custom Jasper equivalence-checking function.

use crate::env::FreeTraceEnv;
use crate::error::EncodeError;
use crate::monitor::{encode_assertion, horizon_for};
use crate::table::SignalTable;
use fv_aig::{Aig, CnfEmitter};
use fv_sat::Solver;
use sv_ast::Assertion;

/// Configuration for the bounded equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivConfig {
    /// Extra cycles granted beyond the assertions' bounded depth when
    /// unbounded operators are present.
    pub slack: u32,
    /// Hard cap on the trace horizon.
    pub max_horizon: u32,
}

impl Default for EquivConfig {
    fn default() -> EquivConfig {
        EquivConfig {
            slack: 4,
            max_horizon: 64,
        }
    }
}

/// The four-way verdict of the equivalence prover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Equivalence {
    /// Logically equivalent on all traces (full functional match).
    Equivalent,
    /// The reference implies the candidate (candidate is weaker).
    RefImpliesCand,
    /// The candidate implies the reference (candidate is stronger).
    CandImpliesRef,
    /// Neither direction holds.
    Inequivalent,
}

impl Equivalence {
    /// The paper's strict *functional* metric.
    pub fn is_equivalent(self) -> bool {
        self == Equivalence::Equivalent
    }

    /// The paper's relaxed *partial functional* metric: full equivalence
    /// or a one-way implication.
    pub fn is_partial(self) -> bool {
        !matches!(self, Equivalence::Inequivalent)
    }
}

/// A distinguishing trace: per-cycle signal valuations where the two
/// assertions disagree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCex {
    /// `(signal, cycle, value)` triples, sorted by cycle then name.
    pub values: Vec<(String, i32, u128)>,
}

impl std::fmt::Display for TraceCex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, cycle, v) in &self.values {
            writeln!(f, "  cycle {cycle:>3}: {name} = {v:#x}")?;
        }
        Ok(())
    }
}

/// Outcome of [`check_equivalence`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivOutcome {
    /// The verdict.
    pub verdict: Equivalence,
    /// Horizon (trace length in cycles) used for the check.
    pub horizon: u32,
    /// A distinguishing trace when the verdict is not `Equivalent`
    /// (a trace where exactly one assertion holds).
    pub cex: Option<TraceCex>,
}

/// Proves bounded-trace equivalence between a `reference` and a
/// `candidate` assertion over free signals declared in `table`.
///
/// Mirrors the paper's evaluation exactly: two SAT queries decide
/// `ref ∧ ¬cand` and `cand ∧ ¬ref`; both UNSAT means [`Equivalence::Equivalent`],
/// one UNSAT means one-way implication (the *partial* metric), both SAT
/// means [`Equivalence::Inequivalent`].
///
/// # Errors
///
/// [`EncodeError`] when either assertion references unknown signals or
/// unsupported constructs — the harness scores these as tool/elaboration
/// failures, like Jasper would.
pub fn check_equivalence(
    reference: &Assertion,
    candidate: &Assertion,
    table: &SignalTable,
    cfg: EquivConfig,
) -> Result<EquivOutcome, EncodeError> {
    // Different clocking events cannot be reconciled by the bounded
    // single-clock encoding; treat as inequivalent outright.
    if reference.clock != candidate.clock {
        return Ok(EquivOutcome {
            verdict: Equivalence::Inequivalent,
            horizon: 0,
            cex: None,
        });
    }
    let horizon = horizon_for(reference, Some(candidate), cfg.slack);
    if horizon > cfg.max_horizon {
        return Err(EncodeError::HorizonExceeded {
            needed: horizon,
            max: cfg.max_horizon,
        });
    }
    let mut g = Aig::new();
    let mut env = FreeTraceEnv::new(table);
    let ref_holds = encode_assertion(&mut g, reference, horizon, &mut env)?;
    let cand_holds = encode_assertion(&mut g, candidate, horizon, &mut env)?;

    let mut solver = Solver::new();
    let mut em = CnfEmitter::new();
    let lr = em.emit(&g, ref_holds, &mut solver);
    let lc = em.emit(&g, cand_holds, &mut solver);

    // ref ∧ ¬cand : SAT means ref does NOT imply cand.
    let ref_not_cand = solver.solve_with(&[lr, !lc]).is_sat();
    let cex1 = if ref_not_cand {
        Some(extract_cex(&env, &em, &solver))
    } else {
        None
    };
    let cand_not_ref = solver.solve_with(&[lc, !lr]).is_sat();
    let cex2 = if cand_not_ref {
        Some(extract_cex(&env, &em, &solver))
    } else {
        None
    };

    let verdict = match (ref_not_cand, cand_not_ref) {
        (false, false) => Equivalence::Equivalent,
        // UNSAT(ref ∧ ¬cand) proves ref ⇒ cand.
        (false, true) => Equivalence::RefImpliesCand,
        (true, false) => Equivalence::CandImpliesRef,
        (true, true) => Equivalence::Inequivalent,
    };
    Ok(EquivOutcome {
        verdict,
        horizon,
        cex: cex1.or(cex2),
    })
}

fn extract_cex(env: &FreeTraceEnv, em: &CnfEmitter, solver: &Solver) -> TraceCex {
    let mut values = Vec::new();
    for (name, cycle, bv) in env.log() {
        let mut v: u128 = 0;
        for (i, &bit) in bv.bits().iter().enumerate() {
            let val = em
                .lookup(bit.node())
                .and_then(|var| solver.value(var))
                .map(|b| b ^ bit.is_inverted())
                .unwrap_or(false);
            if val {
                v |= 1 << i;
            }
        }
        values.push((name.clone(), *cycle, v));
    }
    values.sort_by_key(|a| (a.1, a.0.clone()));
    TraceCex { values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sv_parser::parse_assertion_str;

    fn table() -> SignalTable {
        let mut t: SignalTable = [
            ("a", 1u32),
            ("b", 1),
            ("c", 1),
            ("tb_reset", 1),
            ("wr_push", 1),
            ("rd_pop", 1),
            ("busy", 1),
            ("hold", 1),
            ("cont_gnt", 1),
            ("sig_D", 1),
            ("sig_F", 1),
            ("sig_G", 1),
            ("sig_H", 4),
            ("sig_J", 1),
        ]
        .into_iter()
        .collect();
        t.insert_const("S0", 2, 0);
        t
    }

    fn check(reference: &str, candidate: &str) -> Equivalence {
        let r = parse_assertion_str(reference).unwrap();
        let c = parse_assertion_str(candidate).unwrap();
        check_equivalence(&r, &c, &table(), EquivConfig::default())
            .unwrap()
            .verdict
    }

    #[test]
    fn identical_assertions_are_equivalent() {
        let src = "assert property (@(posedge clk) disable iff (tb_reset) \
                   wr_push |-> strong(##[0:$] rd_pop));";
        assert_eq!(check(src, src), Equivalence::Equivalent);
    }

    #[test]
    fn semantically_equal_spellings_are_equivalent() {
        assert_eq!(
            check(
                "assert property (@(posedge clk) (a && b) !== 1'b1);",
                "assert property (@(posedge clk) !(a && b));"
            ),
            Equivalence::Equivalent
        );
        assert_eq!(
            check(
                "assert property (@(posedge clk) a |=> b);",
                "assert property (@(posedge clk) a |-> ##1 b);"
            ),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn paper_fifo_partial_example() {
        // Figure 7: reference strong(##[0:$]) vs candidate weak ##[1:$]:
        // the reference implies the (weak, hence unfalsifiable) candidate.
        let verdict = check(
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             wr_push |-> strong(##[0:$] rd_pop));",
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             wr_push |-> ##[1:$] rd_pop);",
        );
        assert_eq!(verdict, Equivalence::RefImpliesCand);
        assert!(verdict.is_partial());
        assert!(!verdict.is_equivalent());
    }

    #[test]
    fn paper_arbiter_partial_example() {
        // Figure 7: $onehot0 reference vs "not all three" candidate.
        let verdict = check(
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             !$onehot0({hold,busy,cont_gnt}) !== 1'b1);",
            "asrt: assert property (@(posedge clk) disable iff (tb_reset) \
             !(busy && hold && cont_gnt));",
        );
        assert_eq!(verdict, Equivalence::RefImpliesCand);
    }

    #[test]
    fn paper_machine_countones_example() {
        // Figure 8: reference conjunction vs candidate implication form.
        let verdict = check(
            "assert property(@(posedge clk) ((sig_D || ^sig_H) && sig_F));",
            "assert property (@(posedge clk) \
             (sig_D || ($countones(sig_H) % 2 == 1)) |-> sig_F);",
        );
        assert_eq!(verdict, Equivalence::RefImpliesCand);
        // And the exact rewrite is fully equivalent.
        assert_eq!(
            check(
                "assert property(@(posedge clk) ((sig_D || ^sig_H) && sig_F));",
                "assert property(@(posedge clk) \
                 ((sig_D || ($countones(sig_H) % 2 == 1)) && sig_F));"
            ),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn inequivalent_pair_with_cex() {
        let r = parse_assertion_str("assert property (@(posedge clk) a |-> ##2 b);").unwrap();
        let c = parse_assertion_str("assert property (@(posedge clk) a |-> ##1 b);").unwrap();
        let out = check_equivalence(&r, &c, &table(), EquivConfig::default()).unwrap();
        assert_eq!(out.verdict, Equivalence::Inequivalent);
        assert!(out.cex.is_some(), "distinguishing trace expected");
    }

    #[test]
    fn stronger_candidate_detected() {
        // Candidate `a |-> b && c` is stronger than `a |-> b`.
        assert_eq!(
            check(
                "assert property (@(posedge clk) a |-> b);",
                "assert property (@(posedge clk) a |-> (b && c));"
            ),
            Equivalence::CandImpliesRef
        );
    }

    #[test]
    fn dropping_disable_iff_is_detected() {
        // With free tb_reset, dropping the disable changes semantics:
        // the undisabled assertion is stronger.
        let verdict = check(
            "assert property (@(posedge clk) disable iff (tb_reset) a |-> ##1 b);",
            "assert property (@(posedge clk) a |-> ##1 b);",
        );
        assert_eq!(verdict, Equivalence::CandImpliesRef);
    }

    #[test]
    fn unknown_signal_is_encode_error() {
        let r = parse_assertion_str("assert property (@(posedge clk) a);").unwrap();
        let c = parse_assertion_str("assert property (@(posedge clk) ghost);").unwrap();
        let err = check_equivalence(&r, &c, &table(), EquivConfig::default()).unwrap_err();
        assert_eq!(err, EncodeError::UnknownSignal("ghost".into()));
    }

    #[test]
    fn different_clocks_are_inequivalent() {
        let verdict = check(
            "assert property (@(posedge clk) a);",
            "assert property (@(negedge clk) a);",
        );
        assert_eq!(verdict, Equivalence::Inequivalent);
    }

    #[test]
    fn symmetry_of_verdicts() {
        // Swapping arguments mirrors the implication direction.
        let r = "assert property (@(posedge clk) a |-> b);";
        let c = "assert property (@(posedge clk) a |-> (b && c));";
        assert_eq!(check(r, c), Equivalence::CandImpliesRef);
        assert_eq!(check(c, r), Equivalence::RefImpliesCand);
    }
}
