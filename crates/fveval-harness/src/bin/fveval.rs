//! The `fveval` command-line interface.
//!
//! ```text
//! fveval <command> [--full] [--seed N] [--out DIR]
//!
//! Commands:
//!   table1 table2 table3 table4 table5 table6
//!   figure2 figure3 figure4 figure6
//!   showcase        qualitative failure-mode examples (Figs. 7-9)
//!   validate        end-to-end dataset self-check
//!   run-all         everything above
//! ```
//!
//! Results are printed to stdout and written under `--out`
//! (default `results/`) as markdown and CSV.

use fveval_harness::HarnessOptions;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    command: String,
    opts: HarnessOptions,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut opts = HarnessOptions::default();
    let mut out_dir = PathBuf::from("results");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => opts.full = true,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| "bad seed".to_string())?;
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(Args {
        command,
        opts,
        out_dir,
    })
}

fn usage() -> String {
    "usage: fveval <table1|table2|table3|table4|table5|table6|validate|figure2|figure3|figure4|figure6|showcase|run-all> [--full] [--seed N] [--out DIR]".to_string()
}

fn write_out(dir: &Path, name: &str, markdown: &str, csv: Option<&str>) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let md_path = dir.join(format!("{name}.md"));
    if let Err(e) = std::fs::write(&md_path, markdown) {
        eprintln!("warning: cannot write {}: {e}", md_path.display());
    }
    if let Some(csv) = csv {
        let csv_path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&csv_path, csv) {
            eprintln!("warning: cannot write {}: {e}", csv_path.display());
        }
    }
}

fn run_one(cmd: &str, opts: &HarnessOptions, out_dir: &Path) -> Result<(), String> {
    let started = std::time::Instant::now();
    match cmd {
        "table1" => {
            let t = fveval_harness::table1(opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table1", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table2" => {
            let t = fveval_harness::table2(opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table2", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table3" => {
            let t = fveval_harness::table3(opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table3", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table4" => {
            let t = fveval_harness::table4(opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table4", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table5" => {
            let t = fveval_harness::table5(opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table5", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table6" => {
            let t = fveval_harness::table6();
            println!("{}", t.to_markdown());
            write_out(out_dir, "table6", &t.to_markdown(), Some(&t.to_csv()));
        }
        "figure2" => {
            let s = fveval_harness::figure2();
            println!("{s}");
            write_out(out_dir, "figure2", &s, None);
        }
        "figure3" => {
            let s = fveval_harness::figure3(opts);
            println!("{s}");
            write_out(out_dir, "figure3", &s, None);
        }
        "figure4" => {
            let s = fveval_harness::figure4(opts);
            println!("{s}");
            write_out(out_dir, "figure4", &s, None);
        }
        "figure6" => {
            let (t, notes) = fveval_harness::figure6(opts);
            println!("{}", t.to_markdown());
            println!("{notes}");
            let md = format!("{}\n{notes}", t.to_markdown());
            write_out(out_dir, "figure6", &md, Some(&t.to_csv()));
        }
        "showcase" => {
            let s = fveval_harness::showcase(opts);
            println!("{s}");
            write_out(out_dir, "showcase", &s, None);
        }
        "validate" => {
            let (report, errors) = fveval_harness::validate(opts);
            println!("{report}");
            write_out(out_dir, "validate", &report, None);
            if errors > 0 {
                return Err(format!("{errors} validation error(s)"));
            }
        }
        other => return Err(format!("unknown command '{other}'\n{}", usage())),
    }
    eprintln!("[{cmd} finished in {:.1?}]", started.elapsed());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let commands: Vec<&str> = if args.command == "run-all" {
        vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "figure2",
            "figure3", "figure4", "figure6", "showcase",
        ]
    } else {
        vec![args.command.as_str()]
    };
    for cmd in commands {
        if let Err(e) = run_one(cmd, &args.opts, &args.out_dir) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
