//! The `fveval` command-line interface.
//!
//! ```text
//! fveval <command> [--full] [--seed N] [--jobs N] [--out DIR]
//!                  [--cache-dir DIR] [--no-persist] [--trace-out FILE]
//!                  [--engine bounded|pdr|portfolio] [--prove-budget-ms N]
//! fveval gen [--family NAME]... [--count N] [--depth N] [--width N]
//!            [--seed N] [--eval] [--out DIR]
//! fveval serve [--addr HOST:PORT] [--jobs N] [--shards N]
//!              [--queue-depth N] [--retain N] [--cache-dir DIR]
//!              [--no-persist]
//! fveval submit [--addr HOST:PORT] [--set suite|human|machine]
//!               [--family NAME]... [--count N] [--depth N] [--width N]
//!               [--seed N] [--samples N] [--model NAME]... [--wait]
//!               [--out DIR]
//! fveval poll --job ID [--addr HOST:PORT] [--wait] [--out DIR]
//! fveval stats [--addr HOST:PORT]
//! fveval stop  [--addr HOST:PORT]
//!
//! Commands:
//!   table1 table2 table3 table4 table5 table6
//!   figure2 figure3 figure4 figure6
//!   gen             generate scenario suites (fveval-gen) with golden
//!                   verdicts re-proven by the formal core
//!   serve           run the persistent evaluation service (fveval-serve)
//!   submit          submit an evaluation job to a running server
//!   poll            check (or wait for) a submitted job
//!   stats           print a running server's /v1/stats as key=value
//!   stop            ask a running server to drain and stop
//!   showcase        qualitative failure-mode examples (Figs. 7-9)
//!   validate        end-to-end dataset self-check
//!   list            available tables/figures with descriptions
//!   run-all         every table and figure above
//!
//! Flags:
//!   --full          paper-scale datasets (quick mode is the default)
//!   --seed N        dataset-generation seed (machine set, design
//!                   sweeps, and `gen`/`submit` suites; the fixed human
//!                   set and the models' deterministic draws are
//!                   unaffected)
//!   --jobs N        evaluation worker threads (default: all CPUs;
//!                   results are byte-identical for any value)
//!   --out DIR       output directory (default: results/)
//!   --cache-dir DIR persistent verdict-store directory (default:
//!                   `<out>/cache`, i.e. results/cache/). Every run
//!                   preloads it and flushes newly computed verdicts
//!                   back, so repeated runs skip settled formal
//!                   queries across processes.
//!   --no-persist    disable the persistent verdict store for this run
//!   --trace-out FILE
//!                   record hierarchical spans for the whole run and
//!                   write them as a Chrome-trace JSON file (open in
//!                   chrome://tracing or Perfetto). Tracing is a side
//!                   channel: every results/ table stays byte-identical
//!                   with or without it. Also writes the run's slowest
//!                   prover checks to `--out/slow_checks.md`.
//!   --engine E      Design2SVA proving engine: bounded (BMC +
//!                   k-induction, the default), pdr (IC3/PDR), or
//!                   portfolio (both raced, first answer wins; verdicts
//!                   and traces stay byte-identical to bounded — only
//!                   otherwise-Undetermined checks can improve). Also
//!                   accepted by `serve` for its shared engine.
//!   --prove-budget-ms N
//!                   wall-clock budget per PDR proof attempt in
//!                   milliseconds (default 10000; 0 disables the
//!                   deadline). Only the engines above consult it.
//!
//! `gen`/`submit`-only flags:
//!   --family NAME   restrict to one family (repeatable; default: all
//!                   of fifo, arbiter, handshake, gray, shift, crc)
//!   --count N       scenarios per family (default: 4, or 16 with
//!                   --full); for `submit --set machine`, the case count
//!   --depth N       pin the family-size knob instead of sweeping it
//!   --width N       pin the data width instead of sweeping it
//!   --eval          (`gen` only) also run all simulated models over
//!                   the generated task set through the shared engine
//!
//! Service flags:
//!   --addr A        server address (default 127.0.0.1:8642)
//!   --shards N      (`serve`) engine shards, one worker thread each;
//!                   jobs route by task-content digest (default 2)
//!   --queue-depth N (`serve`) per-shard bound on queued + in-flight
//!                   jobs; beyond it submits answer 429 with a
//!                   Retry-After hint (default 32)
//!   --retain N      (`serve`) finished-job results kept addressable
//!                   (default 64; older results answer 404; 0 rejected)
//!   --set NAME      (`submit`) task set: suite (default, built from
//!                   the gen flags), human, or machine
//!   --samples N     (`submit`) samples per (model, case) (default 1)
//!   --model NAME    (`submit`) roster entry (repeatable; default all)
//!   --wait          (`submit`/`poll`) poll until done and render the
//!                   evaluation summary table
//!   --job ID        (`poll`) the job to poll
//! ```
//!
//! Results are printed to stdout and written under `--out` as markdown
//! and CSV; every file is written to a `*.tmp` sibling and atomically
//! renamed, so concurrent runs (or a killed process) never leave torn
//! tables. All commands of one invocation share a single `EvalEngine`,
//! so `run-all` scores the overlap between experiments (e.g. the human
//! set in Tables 1/2 and Figure 6) only once — and with the persistent
//! verdict store (see `docs/SERVICE.md`), across invocations too.
//!
//! After the tables, the run's formal-core work summary is written to
//! `--out/prover_stats.{md,csv}` (and echoed to stderr): how many
//! prover queries went to SAT versus being killed by random or ternary
//! simulation, how often SAT calls reused an already-warmed solver,
//! how many proof sessions were opened versus candidate assertions
//! streamed through them (compile-once / score-many reuse), and how
//! many verdicts came from the in-memory cache versus the persistent
//! store. See `ARCHITECTURE.md` for what each column means.

use fveval_core::EvalEngine;
use fveval_harness::HarnessOptions;
use fveval_serve::{Client, EvalRequest, Server, ServerConfig, TaskSetRef, VerdictStore};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const DEFAULT_ADDR: &str = "127.0.0.1:8642";
const WAIT_TIMEOUT: Duration = Duration::from_secs(3600);

struct Args {
    command: String,
    opts: HarnessOptions,
    jobs: usize,
    out_dir: PathBuf,
    cache_dir: PathBuf,
    no_persist: bool,
    engine: Option<fv_core::ProveEngine>,
    prove_budget_ms: Option<u64>,
    trace_out: Option<PathBuf>,
    gen: GenArgs,
    serve: ServeArgs,
}

impl Args {
    /// The Design2SVA proving configuration the `--engine` /
    /// `--prove-budget-ms` flags select (defaults when absent).
    fn prove_config(&self) -> fv_core::ProveConfig {
        let mut cfg = fv_core::ProveConfig::default();
        if let Some(engine) = self.engine {
            cfg.engine = engine;
        }
        if let Some(budget) = self.prove_budget_ms {
            cfg.prove_budget_ms = budget;
        }
        cfg
    }
}

/// Flags only the `gen` and `submit` subcommands read.
#[derive(Default)]
struct GenArgs {
    families: Vec<String>,
    count: Option<usize>,
    depth: Option<u32>,
    width: Option<u32>,
    mutations: Option<usize>,
    stratify: bool,
    eval: bool,
}

/// Flags only the service subcommands read.
#[derive(Default)]
struct ServeArgs {
    addr: Option<String>,
    shards: Option<usize>,
    queue_depth: Option<usize>,
    retain: Option<usize>,
    set: Option<String>,
    samples: Option<u32>,
    models: Vec<String>,
    wait: bool,
    job: Option<u64>,
}

const COMMANDS: &[(&str, &str)] = &[
    ("table1", "NL2SVA-Human, zero-shot greedy, all 8 models"),
    ("table2", "NL2SVA-Human pass@k under sampling (top models)"),
    (
        "table3",
        "NL2SVA-Machine, zero-shot and 3-shot, all 8 models",
    ),
    ("table4", "NL2SVA-Machine pass@k under sampling, 3-shot"),
    ("table5", "Design2SVA pass@1/pass@5 per design category"),
    ("table6", "NL2SVA-Human dataset composition"),
    ("figure2", "human-set NL/SVA token-length distributions"),
    ("figure3", "machine-set NL/SVA token-length distributions"),
    ("figure4", "design-sweep generated-logic token lengths"),
    ("figure6", "BLEU vs functional-equivalence correlation"),
    (
        "gen",
        "generate scenario suites with prover-confirmed golden verdicts",
    ),
    ("serve", "run the persistent evaluation service"),
    ("submit", "submit an evaluation job to a running server"),
    ("poll", "check (or wait for) a submitted job"),
    ("stats", "print a running server's /v1/stats as key=value"),
    ("stop", "ask a running server to drain and stop"),
    ("showcase", "qualitative failure-mode examples (Figs. 7-9)"),
    ("validate", "end-to-end dataset self-check"),
    ("list", "this command list"),
    ("run-all", "every table and figure above"),
];

const SERVICE_COMMANDS: &[&str] = &["serve", "submit", "poll", "stats", "stop"];

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or_else(usage)?;
    let mut opts = HarnessOptions::default();
    let mut jobs = 0usize;
    let mut out_dir = PathBuf::from("results");
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_persist = false;
    let mut engine: Option<fv_core::ProveEngine> = None;
    let mut prove_budget_ms: Option<u64> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut gen = GenArgs::default();
    let mut serve = ServeArgs::default();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => opts.full = true,
            "--engine" => {
                let v = args.next().ok_or("--engine needs a value")?;
                engine = Some(match v.as_str() {
                    "bounded" => fv_core::ProveEngine::Bounded,
                    "pdr" => fv_core::ProveEngine::Pdr,
                    "portfolio" => fv_core::ProveEngine::Portfolio,
                    other => {
                        return Err(format!(
                            "unknown engine '{other}' (known: bounded, pdr, portfolio)"
                        ))
                    }
                });
            }
            "--prove-budget-ms" => {
                let v = args.next().ok_or("--prove-budget-ms needs a value")?;
                prove_budget_ms = Some(v.parse().map_err(|_| "bad budget".to_string())?);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| "bad seed".to_string())?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                jobs = v.parse().map_err(|_| "bad job count".to_string())?;
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--cache-dir" => {
                cache_dir = Some(PathBuf::from(
                    args.next().ok_or("--cache-dir needs a value")?,
                ));
            }
            "--no-persist" => no_persist = true,
            "--trace-out" => {
                trace_out = Some(PathBuf::from(
                    args.next().ok_or("--trace-out needs a value")?,
                ));
            }
            "--family" => {
                let v = args.next().ok_or("--family needs a value")?;
                if fveval_gen::generator(&v).is_none() {
                    let known: Vec<&str> = fveval_gen::generators()
                        .iter()
                        .map(|g| g.family())
                        .collect();
                    return Err(format!(
                        "unknown family '{v}' (known: {})",
                        known.join(", ")
                    ));
                }
                gen.families.push(v);
            }
            "--count" => {
                let v = args.next().ok_or("--count needs a value")?;
                gen.count = Some(v.parse().map_err(|_| "bad count".to_string())?);
            }
            "--depth" => {
                let v = args.next().ok_or("--depth needs a value")?;
                gen.depth = Some(v.parse().map_err(|_| "bad depth".to_string())?);
            }
            "--width" => {
                let v = args.next().ok_or("--width needs a value")?;
                gen.width = Some(v.parse().map_err(|_| "bad width".to_string())?);
            }
            "--mutations" => {
                let v = args.next().ok_or("--mutations needs a value")?;
                gen.mutations = Some(v.parse().map_err(|_| "bad mutation count".to_string())?);
            }
            "--stratify" => gen.stratify = true,
            "--eval" => gen.eval = true,
            "--addr" => serve.addr = Some(args.next().ok_or("--addr needs a value")?),
            "--shards" => {
                let v = args.next().ok_or("--shards needs a value")?;
                let n: usize = v.parse().map_err(|_| "bad shard count".to_string())?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
                serve.shards = Some(n);
            }
            "--queue-depth" => {
                let v = args.next().ok_or("--queue-depth needs a value")?;
                let n: usize = v.parse().map_err(|_| "bad queue depth".to_string())?;
                if n == 0 {
                    return Err("--queue-depth must be at least 1 (a server that can \
                                accept no jobs serves nothing)"
                        .to_string());
                }
                serve.queue_depth = Some(n);
            }
            "--retain" => {
                let v = args.next().ok_or("--retain needs a value")?;
                let n: usize = v.parse().map_err(|_| "bad retention bound".to_string())?;
                if n == 0 {
                    return Err("--retain must be at least 1 (a server retaining no \
                                finished jobs could never deliver a result)"
                        .to_string());
                }
                serve.retain = Some(n);
            }
            "--set" => {
                let v = args.next().ok_or("--set needs a value")?;
                if !["suite", "human", "machine"].contains(&v.as_str()) {
                    return Err(format!(
                        "unknown task set '{v}' (known: suite, human, machine)"
                    ));
                }
                serve.set = Some(v);
            }
            "--samples" => {
                let v = args.next().ok_or("--samples needs a value")?;
                serve.samples = Some(v.parse().map_err(|_| "bad sample count".to_string())?);
            }
            "--model" => serve
                .models
                .push(args.next().ok_or("--model needs a value")?),
            "--wait" => serve.wait = true,
            "--job" => {
                let v = args.next().ok_or("--job needs a value")?;
                serve.job = Some(v.parse().map_err(|_| "bad job id".to_string())?);
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    // Subcommand-specific flags must not be silently dropped elsewhere.
    let cmd = command.as_str();
    let stray = [
        (
            !gen.families.is_empty() && !["gen", "submit"].contains(&cmd),
            "--family",
        ),
        (
            gen.count.is_some() && !["gen", "submit"].contains(&cmd),
            "--count",
        ),
        (
            gen.depth.is_some() && !["gen", "submit"].contains(&cmd),
            "--depth",
        ),
        (
            gen.width.is_some() && !["gen", "submit"].contains(&cmd),
            "--width",
        ),
        (
            gen.mutations.is_some() && !["gen", "submit"].contains(&cmd),
            "--mutations",
        ),
        (gen.stratify && cmd != "gen", "--stratify"),
        (gen.eval && cmd != "gen", "--eval"),
        (
            serve.addr.is_some() && !SERVICE_COMMANDS.contains(&cmd),
            "--addr",
        ),
        (serve.shards.is_some() && cmd != "serve", "--shards"),
        (
            serve.queue_depth.is_some() && cmd != "serve",
            "--queue-depth",
        ),
        (serve.retain.is_some() && cmd != "serve", "--retain"),
        (serve.set.is_some() && cmd != "submit", "--set"),
        (serve.samples.is_some() && cmd != "submit", "--samples"),
        (!serve.models.is_empty() && cmd != "submit", "--model"),
        (serve.wait && !["submit", "poll"].contains(&cmd), "--wait"),
        (serve.job.is_some() && cmd != "poll", "--job"),
        // Engine selection configures a *local* engine: every
        // evaluation command plus `serve`; the thin service clients
        // never prove anything themselves.
        (
            engine.is_some() && SERVICE_COMMANDS.contains(&cmd) && cmd != "serve",
            "--engine",
        ),
        (
            prove_budget_ms.is_some() && SERVICE_COMMANDS.contains(&cmd) && cmd != "serve",
            "--prove-budget-ms",
        ),
        // Tracing instruments the *local* process: every evaluation
        // command, but not the thin service clients (the server has
        // its own `/metrics` surface).
        (
            trace_out.is_some() && SERVICE_COMMANDS.contains(&cmd),
            "--trace-out",
        ),
    ]
    .into_iter()
    .filter_map(|(is_stray, name)| is_stray.then_some(name))
    .collect::<Vec<_>>();
    if !stray.is_empty() {
        return Err(format!(
            "{} does not apply to the '{cmd}' command\n{}",
            stray.join(", "),
            usage()
        ));
    }
    Ok(Args {
        command,
        opts,
        jobs,
        out_dir: out_dir.clone(),
        cache_dir: cache_dir.unwrap_or_else(|| out_dir.join("cache")),
        no_persist,
        engine,
        prove_budget_ms,
        trace_out,
        gen,
        serve,
    })
}

/// Runs the `gen` subcommand: generate, validate through the prover,
/// export, optionally evaluate.
fn run_gen(args: &Args, engine: &EvalEngine) -> Result<(), String> {
    let started = std::time::Instant::now();
    let cfg = fveval_data::SuiteConfig {
        families: args.gen.families.clone(),
        // --full scales the suite like it scales every other command.
        per_family: args
            .gen
            .count
            .unwrap_or(if args.opts.full { 16 } else { 4 }),
        seed: args.opts.seed,
        depth: args.gen.depth,
        width: args.gen.width,
        mutations: args.gen.mutations.unwrap_or(0),
    };
    let (table, notes, suite, errors) = fveval_harness::gen_report(engine, &cfg, args.gen.eval)?;
    println!("{}", table.to_markdown());
    println!("{notes}");
    let md = format!("{}\n{notes}", table.to_markdown());
    write_out(&args.out_dir, "gen", &md, Some(&table.to_csv()));
    if args.gen.stratify || cfg.mutations > 0 {
        let strata = fveval_harness::difficulty_table(&suite);
        println!("{}", strata.to_markdown());
        write_out(
            &args.out_dir,
            "gen_difficulty",
            &strata.to_markdown(),
            Some(&strata.to_csv()),
        );
    }
    let suite_dir = args.out_dir.join("generated");
    let files = fveval_gen::write_suite(&suite_dir, &suite)
        .map_err(|e| format!("cannot write suite under {}: {e}", suite_dir.display()))?;
    eprintln!(
        "[gen: {} scenarios, {} files under {} in {:.1?}]",
        suite.scenarios.len(),
        files,
        suite_dir.display(),
        started.elapsed()
    );
    if errors > 0 {
        return Err(format!("{errors} golden-verdict mismatch(es)"));
    }
    Ok(())
}

fn addr(args: &Args) -> String {
    args.serve
        .addr
        .clone()
        .unwrap_or_else(|| DEFAULT_ADDR.to_string())
}

/// Runs the persistent evaluation service (blocks until `fveval stop`
/// or `POST /v1/shutdown`).
fn run_serve(args: &Args) -> Result<(), String> {
    let config = ServerConfig {
        addr: addr(args),
        shards: args.serve.shards.unwrap_or(2),
        queue_depth: args.serve.queue_depth.unwrap_or(32),
        engine_jobs: args.jobs,
        cache_dir: (!args.no_persist).then(|| args.cache_dir.clone()),
        retain_finished: args
            .serve
            .retain
            .unwrap_or(fveval_serve::DEFAULT_RETAINED_FINISHED),
        prove_cfg: args.prove_config(),
    };
    let shards = config.shards;
    let server = Server::bind(config)?;
    eprintln!(
        "[serve] listening on {} ({shards} shard(s), {} verdicts preloaded from {})",
        server.local_addr(),
        server.preloaded(),
        if args.no_persist {
            "nowhere; persistence disabled".to_string()
        } else {
            args.cache_dir.display().to_string()
        }
    );
    server.run()?;
    eprintln!("[serve] stopped");
    Ok(())
}

/// Builds the `submit` request from the CLI flags.
fn submit_request(args: &Args) -> EvalRequest {
    let tasks = match args.serve.set.as_deref() {
        Some("human") => TaskSetRef::Human,
        Some("machine") => TaskSetRef::Machine {
            count: args.gen.count.unwrap_or(120),
            seed: args.opts.seed,
        },
        _ => TaskSetRef::Suite {
            families: args.gen.families.clone(),
            per_family: args
                .gen
                .count
                .unwrap_or(if args.opts.full { 16 } else { 4 }),
            seed: args.opts.seed,
            depth: args.gen.depth,
            width: args.gen.width,
            mutations: args.gen.mutations.unwrap_or(0),
        },
    };
    EvalRequest {
        tasks,
        models: args.serve.models.clone(),
        cfg: fveval_llm::InferenceConfig::greedy(),
        samples: args.serve.samples.unwrap_or(1),
    }
}

/// Renders and writes a finished job's evaluation summary.
fn report_result(args: &Args, result: &fveval_serve::EvalResult) {
    let n_tasks = result.models.first().map_or(0, |(_, cases)| cases.len());
    let table = fveval_harness::eval_summary_table(&result.models, n_tasks);
    println!("{}", table.to_markdown());
    write_out(
        &args.out_dir,
        "serve_eval",
        &table.to_markdown(),
        Some(&table.to_csv()),
    );
}

fn run_submit(args: &Args) -> Result<(), String> {
    let client = Client::new(addr(args));
    let request = submit_request(args);
    let id = client.submit(&request)?;
    println!("job {id}");
    if args.serve.wait {
        let view = client.wait(id, WAIT_TIMEOUT)?;
        let result = view
            .result
            .ok_or_else(|| format!("job {id} is done but has no result"))?;
        report_result(args, &result);
    } else {
        eprintln!(
            "[submit] poll with: fveval poll --job {id} --addr {}",
            addr(args)
        );
    }
    Ok(())
}

fn run_poll(args: &Args) -> Result<(), String> {
    let id = args.serve.job.ok_or("poll needs --job ID")?;
    let client = Client::new(addr(args));
    let view = if args.serve.wait {
        client.wait(id, WAIT_TIMEOUT)?
    } else {
        client.job(id)?
    };
    match view.position {
        Some(position) => println!("job {id}: {} (position {position})", view.state.as_str()),
        None => println!("job {id}: {}", view.state.as_str()),
    }
    if let Some(error) = &view.error {
        return Err(format!("job {id} failed: {error}"));
    }
    if let Some(result) = &view.result {
        report_result(args, result);
    }
    Ok(())
}

/// Prints `/v1/stats` as flat `key=value` lines, sorted by key — the
/// output is greppable *and* diffable from CI regardless of how the
/// server happens to order its JSON members.
fn run_stats(args: &Args) -> Result<(), String> {
    let stats = Client::new(addr(args)).stats()?;
    for line in stats.flatten_sorted() {
        println!("{line}");
    }
    Ok(())
}

fn run_stop(args: &Args) -> Result<(), String> {
    Client::new(addr(args)).shutdown()?;
    eprintln!("[stop] server at {} is draining", addr(args));
    Ok(())
}

fn usage() -> String {
    let names: Vec<&str> = COMMANDS.iter().map(|(n, _)| *n).collect();
    format!(
        "usage: fveval <{}> [--full] [--seed N] [--jobs N] [--out DIR] \
         [--cache-dir DIR] [--no-persist] [--trace-out FILE] \
         [--engine bounded|pdr|portfolio] [--prove-budget-ms N]\n\
         \x20      fveval gen [--family NAME]... [--count N] [--depth N] \
         [--width N] [--seed N] [--mutations N] [--stratify] [--eval] \
         [--out DIR]\n\
         \x20      fveval serve [--addr A] [--shards N] [--queue-depth N] \
         [--retain N]\n\
         \x20      fveval submit [--addr A] [--set suite|human|machine] \
         [--model NAME]... [--samples N] [--wait]\n\
         \x20      fveval poll --job ID [--addr A] [--wait]\n\
         \x20      fveval stats|stop [--addr A]",
        names.join("|")
    )
}

fn list_commands() -> String {
    let mut out = String::from("Available commands:\n");
    for (name, description) in COMMANDS {
        out.push_str(&format!("  {name:<10} {description}\n"));
    }
    out
}

fn write_out(dir: &Path, name: &str, markdown: &str, csv: Option<&str>) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let md_path = dir.join(format!("{name}.md"));
    if let Err(e) = fveval_gen::write_atomic(&md_path, markdown) {
        eprintln!("warning: cannot write {}: {e}", md_path.display());
    }
    if let Some(csv) = csv {
        let csv_path = dir.join(format!("{name}.csv"));
        if let Err(e) = fveval_gen::write_atomic(&csv_path, csv) {
            eprintln!("warning: cannot write {}: {e}", csv_path.display());
        }
    }
}

fn run_one(
    cmd: &str,
    engine: &EvalEngine,
    opts: &HarnessOptions,
    out_dir: &Path,
) -> Result<(), String> {
    let started = std::time::Instant::now();
    match cmd {
        "table1" => {
            let t = fveval_harness::table1(engine, opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table1", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table2" => {
            let t = fveval_harness::table2(engine, opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table2", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table3" => {
            let t = fveval_harness::table3(engine, opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table3", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table4" => {
            let t = fveval_harness::table4(engine, opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table4", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table5" => {
            let t = fveval_harness::table5(engine, opts);
            println!("{}", t.to_markdown());
            write_out(out_dir, "table5", &t.to_markdown(), Some(&t.to_csv()));
        }
        "table6" => {
            let t = fveval_harness::table6();
            println!("{}", t.to_markdown());
            write_out(out_dir, "table6", &t.to_markdown(), Some(&t.to_csv()));
        }
        "figure2" => {
            let s = fveval_harness::figure2();
            println!("{s}");
            write_out(out_dir, "figure2", &s, None);
        }
        "figure3" => {
            let s = fveval_harness::figure3(opts);
            println!("{s}");
            write_out(out_dir, "figure3", &s, None);
        }
        "figure4" => {
            let s = fveval_harness::figure4(opts);
            println!("{s}");
            write_out(out_dir, "figure4", &s, None);
        }
        "figure6" => {
            let (t, notes) = fveval_harness::figure6(engine, opts);
            println!("{}", t.to_markdown());
            println!("{notes}");
            let md = format!("{}\n{notes}", t.to_markdown());
            write_out(out_dir, "figure6", &md, Some(&t.to_csv()));
        }
        "showcase" => {
            let s = fveval_harness::showcase(engine, opts);
            println!("{s}");
            write_out(out_dir, "showcase", &s, None);
        }
        "validate" => {
            let (report, errors) = fveval_harness::validate(opts);
            println!("{report}");
            write_out(out_dir, "validate", &report, None);
            if errors > 0 {
                return Err(format!("{errors} validation error(s)"));
            }
        }
        "list" => {
            println!("{}", list_commands());
            return Ok(());
        }
        other => return Err(format!("unknown command '{other}'\n{}", usage())),
    }
    eprintln!("[{cmd} finished in {:.1?}]", started.elapsed());
    Ok(())
}

/// Opens the persistent verdict store and preloads the engine from it;
/// `None` when persistence is disabled or the store is unreadable
/// (warn, don't fail — a broken cache must never break a run).
fn open_store(args: &Args, engine: &EvalEngine) -> Option<VerdictStore> {
    if args.no_persist {
        return None;
    }
    match VerdictStore::open(&args.cache_dir) {
        Ok(store) => {
            let loaded = engine.load_verdicts(store.records());
            if loaded > 0 {
                eprintln!(
                    "[cache: {} verdicts preloaded from {}]",
                    loaded,
                    args.cache_dir.display()
                );
            }
            Some(store)
        }
        Err(e) => {
            eprintln!(
                "warning: persistent cache disabled ({}: {e})",
                args.cache_dir.display()
            );
            None
        }
    }
}

/// Flushes newly computed verdicts to the store and bounds its
/// fragmentation.
fn flush_store(store: &mut VerdictStore, engine: &EvalEngine) {
    let fresh = engine.take_unpersisted();
    let _span = fv_trace::span!("store.flush", records = fresh.len());
    if let Err(e) = store.append(&fresh) {
        eprintln!("warning: cannot flush verdict store: {e}");
        return;
    }
    if store.segment_count() > 8 {
        if let Err(e) = store.compact() {
            eprintln!("warning: cannot compact verdict store: {e}");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if args.trace_out.is_some() {
        // Spans (for the Chrome export) and timing histograms are pure
        // side channels: enabling them must never change a byte of any
        // results/ table — only add the trace artifact.
        fv_trace::set_spans_enabled(true);
        fv_trace::set_timing_enabled(true);
    }
    if SERVICE_COMMANDS.contains(&args.command.as_str()) {
        let outcome = match args.command.as_str() {
            "serve" => run_serve(&args),
            "submit" => run_submit(&args),
            "poll" => run_poll(&args),
            "stats" => run_stats(&args),
            _ => run_stop(&args),
        };
        return match outcome {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let engine = EvalEngine::with_jobs(args.jobs).with_d2s_runner(
        fveval_core::Design2svaRunner::new().with_prove_config(args.prove_config()),
    );
    let mut store = if args.command == "list" {
        None
    } else {
        open_store(&args, &engine)
    };
    let commands: Vec<&str> = if args.command == "run-all" {
        vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "figure2", "figure3",
            "figure4", "figure6", "showcase",
        ]
    } else {
        vec![args.command.as_str()]
    };
    let mut failed = false;
    for cmd in commands {
        let outcome = if cmd == "gen" {
            run_gen(&args, &engine)
        } else {
            run_one(cmd, &engine, &args.opts, &args.out_dir)
        };
        if let Err(e) = outcome {
            eprintln!("{e}");
            failed = true;
            break;
        }
    }
    // Settled verdicts are persisted even when a later command failed:
    // they are valid, and the next run should not redo the work.
    if let Some(store) = store.as_mut() {
        flush_store(store, &engine);
    }
    // The trace is written even for failed runs — that is when the
    // span tree is most useful.
    if let Some(path) = &args.trace_out {
        write_trace(path);
    }
    if failed {
        return ExitCode::FAILURE;
    }
    write_slow_checks(&args.out_dir, &engine);
    let stats = engine.cache_stats();
    if stats.hits + stats.persisted_hits + stats.misses > 0 {
        eprintln!(
            "[engine: {} jobs | verdict cache: {} hits, {} persisted hits, \
             {} misses, {} entries]",
            engine.jobs(),
            stats.hits,
            stats.persisted_hits,
            stats.misses,
            stats.entries
        );
    }
    let prover = engine.prover_stats();
    if prover.queries() > 0 {
        eprintln!(
            "[prover: {} queries | {} SAT calls ({} on a reused solver), \
             {} sim kills, {} ternary kills]",
            prover.queries(),
            prover.sat_calls,
            prover.solver_reuse_hits,
            prover.sim_kills,
            prover.ternary_kills,
        );
        eprintln!(
            "[sessions: {} opened, {} assertions checked, {} unrollings reused, \
             {} compiles served by digest]",
            prover.sessions_opened,
            prover.session_checks,
            prover.unroll_reuse_hits,
            prover.digest_reuse,
        );
        let engine_work = prover.pdr_wins
            + prover.bounded_wins
            + prover.engine_cancellations
            + prover.pdr_frames
            + prover.pdr_clauses_learned;
        if engine_work > 0 {
            eprintln!(
                "[engines: {} pdr wins, {} bounded wins, {} cancellations | \
                 pdr: {} frames opened, {} clauses learned]",
                prover.pdr_wins,
                prover.bounded_wins,
                prover.engine_cancellations,
                prover.pdr_frames,
                prover.pdr_clauses_learned,
            );
        }
    }
    if prover.queries() > 0 || stats.hits + stats.persisted_hits + stats.misses > 0 {
        let t = prover_stats_table(&prover, &stats);
        write_out(
            &args.out_dir,
            "prover_stats",
            &t.to_markdown(),
            Some(&t.to_csv()),
        );
    }
    ExitCode::SUCCESS
}

/// Writes the collected span tree as a Chrome-trace JSON file (loads
/// in `chrome://tracing` and Perfetto) — the `--trace-out` artifact.
fn write_trace(path: &Path) {
    let spans = fv_trace::take_spans();
    let json = fv_trace::chrome::render(&spans);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match fveval_gen::write_atomic(path, &json) {
        Ok(()) => eprintln!(
            "[trace: {} spans written to {}]",
            spans.len(),
            path.display()
        ),
        Err(e) => eprintln!("warning: cannot write trace {}: {e}", path.display()),
    }
}

/// Writes `slow_checks.md`: the run's slowest prover-backed checks
/// with task-kind and mutation-tag attribution. This is a timing side
/// channel — ranks and milliseconds vary run to run, so the file is
/// never part of the byte-compared result tables.
fn write_slow_checks(dir: &Path, engine: &EvalEngine) {
    let slow = engine.slow_checks();
    if slow.is_empty() {
        return;
    }
    let mut md = String::from(
        "# Slowest prover checks (this run)\n\n\
         Timing attribution for the scored cache-miss checks; see the\n\
         Observability section of ARCHITECTURE.md. Not byte-stable.\n\n\
         | Rank | Case | Task | Mutation | ms |\n\
         |---:|---|---|---|---:|\n",
    );
    for (rank, check) in slow.iter().enumerate() {
        md.push_str(&format!(
            "| {} | {} | {} | {} | {:.1} |\n",
            rank + 1,
            check.id,
            check.kind,
            check.mutation.as_deref().unwrap_or("—"),
            check.micros as f64 / 1000.0
        ));
    }
    write_out(dir, "slow_checks", &md, None);
}

/// Renders the run's formal-core work summary: one row of counters
/// describing how verdicts were produced (see `ARCHITECTURE.md`).
fn prover_stats_table(
    prover: &fveval_core::ProverStats,
    cache: &fveval_core::CacheStats,
) -> fveval_core::Table {
    let mut t = fveval_core::Table::new(
        "Prover statistics (this run)",
        &[
            "Queries",
            "SAT calls",
            "Solver reuse hits",
            "Sim kills",
            "Ternary kills",
            "Sessions opened",
            "Assertions checked",
            "Unroll reuse hits",
            "Digest reuse",
            "Verdict-cache hits",
            "Persisted hits",
            "Cache misses",
            "PDR frames",
            "PDR clauses",
            "PDR wins",
            "Bounded wins",
            "Engine cancellations",
        ],
    );
    t.push_row([
        prover.queries().to_string().into(),
        prover.sat_calls.to_string().into(),
        prover.solver_reuse_hits.to_string().into(),
        prover.sim_kills.to_string().into(),
        prover.ternary_kills.to_string().into(),
        prover.sessions_opened.to_string().into(),
        prover.session_checks.to_string().into(),
        prover.unroll_reuse_hits.to_string().into(),
        prover.digest_reuse.to_string().into(),
        cache.hits.to_string().into(),
        cache.persisted_hits.to_string().into(),
        cache.misses.to_string().into(),
        prover.pdr_frames.to_string().into(),
        prover.pdr_clauses_learned.to_string().into(),
        prover.pdr_wins.to_string().into(),
        prover.bounded_wins.to_string().into(),
        prover.engine_cancellations.to_string().into(),
    ]);
    t
}
