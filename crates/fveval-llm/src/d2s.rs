//! Design2SVA response strategies: a simulated model "reads" the design
//! RTL and proposes an assertion, with failure modes mirroring the
//! paper's Figure 9 / Appendix C observations.

use crate::transform::Style;
use crate::DetRng;
use fveval_data::{DesignCase, DesignKind};

/// Strategy classes for a Design2SVA response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DesignOutcome {
    /// A correct, provable assertion.
    Provable,
    /// Syntactically valid but not provable (mis-read transition,
    /// off-by-one latency, or an over-strong claim).
    Unprovable,
    /// References design-internal signals, violating the prompt rule
    /// (elaboration failure in the testbench scope).
    InternalSignal,
    /// Malformed SVA text.
    Malformed,
}

/// Emits the response text (optional helper items + one assertion).
pub(crate) fn generate_design_response(
    case: &DesignCase,
    outcome: DesignOutcome,
    style: &Style,
    rng: &mut DetRng,
) -> String {
    let _ = style;
    match &case.kind {
        DesignKind::Pipeline { total_depth } => pipeline_response(*total_depth, outcome, rng),
        DesignKind::Fsm {
            n_states,
            transitions,
            state_width,
        } => fsm_response(*n_states, *state_width, transitions, outcome, rng),
        DesignKind::Scenario {
            falsifiable,
            internal_signal,
            ..
        } => scenario_response(case, falsifiable, internal_signal, outcome, rng),
    }
}

/// Responses for generated `fveval-gen` scenarios: the golden and
/// falsifiable candidate pools carried on the case stand in for a
/// model reading the RTL correctly or plausibly-wrongly.
fn scenario_response(
    case: &DesignCase,
    falsifiable: &[String],
    internal_signal: &str,
    outcome: DesignOutcome,
    rng: &mut DetRng,
) -> String {
    let strip_label = |s: &String| s.strip_prefix("asrt:").unwrap_or(s).trim().to_string();
    match outcome {
        DesignOutcome::Provable => strip_label(rng.pick(&case.golden)),
        DesignOutcome::Unprovable => strip_label(rng.pick(falsifiable)),
        DesignOutcome::InternalSignal => format!(
            "assert property (@(posedge clk) disable iff (tb_reset)\n  \
             ({internal_signal} == {internal_signal})\n);"
        ),
        DesignOutcome::Malformed => {
            // Break a golden the way Figure 9 models do: hallucinate an
            // `eventually` operator or drop a closing parenthesis.
            let base = strip_label(rng.pick(&case.golden));
            if rng.below(2) == 0 {
                base.replace("assert property (", "assert property (eventually ")
            } else {
                match base.rfind(')') {
                    Some(i) => format!("{}{}", &base[..i], &base[i + 1..]),
                    None => base,
                }
            }
        }
    }
}

fn pipeline_response(depth: u32, outcome: DesignOutcome, rng: &mut DetRng) -> String {
    match outcome {
        DesignOutcome::Provable => match rng.below(3) {
            0 => format!(
                "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 in_vld |-> ##{depth} out_vld\n);"
            ),
            1 => format!(
                "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 $rose(in_vld) |-> ##{depth} out_vld\n);"
            ),
            _ => format!(
                "logic vld_seen;\nassign vld_seen = in_vld;\n\
                 assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 vld_seen |-> ##{depth} out_vld\n);"
            ),
        },
        DesignOutcome::Unprovable => match rng.below(3) {
            0 => {
                // Off-by-one latency (the gpt-4-turbo Figure 22 mode).
                let wrong = if depth > 1 { depth - 1 } else { depth + 1 };
                format!(
                    "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                     in_vld |-> ##{wrong} out_vld\n);"
                )
            }
            1 => {
                // Misread valid polarity: out_vld is asserted, not low,
                // exactly `depth` cycles after a push.
                format!(
                    "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                     in_vld |-> ##{depth} (!out_vld)\n);"
                )
            }
            _ => {
                // Valid-pulse persistence that the design does not promise.
                "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 out_vld |-> ##1 out_vld\n);"
                    .to_string()
            }
        },
        DesignOutcome::InternalSignal => {
            // `ready`/`data` are internal to the design modules.
            format!(
                "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 in_vld |-> ##{depth} ready[{depth}]\n);"
            )
        }
        DesignOutcome::Malformed => match rng.below(3) {
            0 => "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 in_vld |-> eventually(out_vld)\n);"
                .to_string(),
            1 => format!(
                "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 in_vld |-> ##[{depth}:] out_vld\n);"
            ),
            _ => "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                  in_vld |-> ##1 (out_vld\n);"
                .to_string(),
        },
    }
}

fn fsm_response(
    n_states: u32,
    state_width: u32,
    transitions: &[Vec<u32>],
    outcome: DesignOutcome,
    rng: &mut DetRng,
) -> String {
    let s = rng.below(n_states as usize) as u32;
    let succs = &transitions[s as usize];
    let disj = |list: &[u32]| {
        list.iter()
            .map(|t| format!("(fsm_out == S{t})"))
            .collect::<Vec<_>>()
            .join(" || ")
    };
    match outcome {
        DesignOutcome::Provable => match rng.below(3) {
            0 => format!(
                "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 (fsm_out == S{s}) |-> ##1 ({})\n);",
                disj(succs)
            ),
            1 => {
                // The Figure 9 Attempt-2 shape: mirror the state register
                // in the testbench, then assert over the mirror.
                format!(
                    "logic [FSM_WIDTH-1:0] state_tb;\nassign state_tb = fsm_out;\n\
                     assert property (@(posedge clk) disable iff (tb_reset)\n  \
                     (state_tb == S{s}) |-> ##1 ({})\n);",
                    disj(succs)
                )
            }
            _ => {
                // Successor-set claim over every state via per-state
                // disjunction on the union (still provable: the union of
                // all successor sets over-approximates each transition).
                let all: Vec<u32> = {
                    let mut v: Vec<u32> = transitions.iter().flatten().copied().collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                format!(
                    "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                     (fsm_out == S{s}) |-> ##1 ({})\n);",
                    disj(&all)
                )
            }
        },
        DesignOutcome::Unprovable => {
            if succs.len() >= 2 {
                // Drop one genuine successor: the model mis-read an edge.
                let keep: Vec<u32> = succs[..succs.len() - 1].to_vec();
                format!(
                    "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                     (fsm_out == S{s}) |-> ##1 ({})\n);",
                    disj(&keep)
                )
            } else {
                // Claim a wrong successor.
                let wrong = (succs[0] + 1) % n_states;
                format!(
                    "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                     (fsm_out == S{s}) |-> ##1 (fsm_out == S{wrong})\n);"
                )
            }
        }
        DesignOutcome::InternalSignal => {
            // Using the design's `state`/`next_state` (Figure 27 mode).
            format!(
                "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 (state == S{s}) |-> (next_state == S{})\n);",
                succs[0]
            )
        }
        DesignOutcome::Malformed => match rng.below(3) {
            0 => format!(
                "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 (fsm_out == S{s}) |-> eventually(fsm_out == S{})\n);",
                succs[0]
            ),
            1 => format!(
                "logic [{}:0] next_state_tb\nassert property (@(posedge clk) \
                 (fsm_out == S{s}) |-> ##1 (fsm_out == S{}));",
                state_width.saturating_sub(1),
                succs[0]
            ),
            _ => format!(
                "assert property (@(posedge clk) disable iff (tb_reset)\n  \
                 fsm_out == S{s} |-> ##1 (fsm_out == S{}\n);",
                succs[0]
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fveval_data::{generate_fsm, generate_pipeline, FsmParams, PipelineParams};

    fn fsm_case() -> DesignCase {
        generate_fsm(&FsmParams {
            n_states: 4,
            n_edges: 4,
            width: 16,
            guard_depth: 2,
            seed: 11,
        })
    }

    fn pipe_case() -> DesignCase {
        generate_pipeline(&PipelineParams {
            n_units: 2,
            unit_depths: vec![1, 2],
            width: 8,
            expr_ops: 2,
            seed: 12,
        })
    }

    #[test]
    fn provable_responses_parse_as_snippets() {
        for case in [fsm_case(), pipe_case()] {
            for i in 0..6 {
                let mut rng = DetRng::from_parts(&["p", &case.id, &i.to_string()]);
                let resp = generate_design_response(
                    &case,
                    DesignOutcome::Provable,
                    &Style::plain(),
                    &mut rng,
                );
                sv_parser::parse_snippet(&resp)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{resp}", case.id));
            }
        }
    }

    #[test]
    fn malformed_responses_fail_to_parse() {
        for case in [fsm_case(), pipe_case()] {
            for i in 0..6 {
                let mut rng = DetRng::from_parts(&["m", &case.id, &i.to_string()]);
                let resp = generate_design_response(
                    &case,
                    DesignOutcome::Malformed,
                    &Style::plain(),
                    &mut rng,
                );
                assert!(
                    sv_parser::parse_snippet(&resp).is_err(),
                    "{}: should fail\n{resp}",
                    case.id
                );
            }
        }
    }

    #[test]
    fn internal_signal_responses_parse_but_name_design_nets() {
        let resp = generate_design_response(
            &fsm_case(),
            DesignOutcome::InternalSignal,
            &Style::plain(),
            &mut DetRng::from_parts(&["i"]),
        );
        assert!(sv_parser::parse_snippet(&resp).is_ok());
        assert!(resp.contains("state"));
    }
}
